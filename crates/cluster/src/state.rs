//! Cluster state: the API-server-ish view of nodes and pods.
//!
//! The cluster also owns the node-name intern table: every node gets a small
//! copyable [`NodeId`] (its index in registration order) so the scheduling hot
//! path can pass node identities around without cloning `String`s. Names are
//! resolved back through [`ClusterState::node_name`] only at the edges
//! (manifests, logs, reports).

use crate::node::Node;
use crate::pod::{Pod, PodId, PodPhase, PodSpec};
use serde::{Deserialize, Serialize};
use simcore::SimTime;
use std::collections::BTreeMap;
use std::fmt;

/// Interned node identity: a dense index into the cluster's node table.
///
/// `NodeId`s are assigned in node-registration order and are stable for the
/// lifetime of the cluster (nodes are never removed). They are deliberately
/// tiny and `Copy` so rankings, feature pipelines and scratch buffers can
/// carry node identities without touching the heap. Distinct from
/// [`simnet::NodeId`], which identifies a NIC in the network substrate; the
/// two are linked through [`Node::net_id`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a usize index into the cluster's node table.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a table index.
    pub fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Errors returned by cluster operations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClusterError {
    /// The referenced node does not exist.
    NoSuchNode(String),
    /// The referenced pod does not exist.
    NoSuchPod(u64),
    /// The pod cannot be bound (does not fit, node cordoned, already bound...).
    BindFailed(String),
    /// The operation is invalid for the pod's current phase.
    InvalidPhase(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::NoSuchNode(n) => write!(f, "no such node: {n}"),
            ClusterError::NoSuchPod(id) => write!(f, "no such pod: pod-{id}"),
            ClusterError::BindFailed(msg) => write!(f, "bind failed: {msg}"),
            ClusterError::InvalidPhase(msg) => write!(f, "invalid phase: {msg}"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// A recorded cluster event (a simplified `corev1.Event`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterEvent {
    /// When the event happened.
    pub time: SimTime,
    /// Subject (pod or node name).
    pub subject: String,
    /// Short reason code (`Scheduled`, `Started`, `Completed`, ...).
    pub reason: String,
    /// Free-form message.
    pub message: String,
}

/// The cluster: nodes, pods and an event log.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ClusterState {
    nodes: Vec<Node>,
    /// Name → [`NodeId`] intern index (kept in sync with `nodes`).
    name_index: BTreeMap<String, u32>,
    pods: BTreeMap<u64, Pod>,
    next_pod_id: u64,
    events: Vec<ClusterEvent>,
    /// Monotone mutation counter, bumped by every operation that can change
    /// a node's feasibility (adding nodes, handing out `&mut Node`, binding
    /// or releasing pods through the node lookups). Derived caches such as
    /// [`crate::feasibility::FeasibilityIndex`] compare it to decide whether
    /// they are stale, so bumping is deliberately conservative: any mutable
    /// node access counts as a change.
    generation: u64,
}

impl ClusterState {
    /// Create an empty cluster.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node to the cluster, interning its name. Returns the node's
    /// stable [`NodeId`].
    ///
    /// # Panics
    /// Panics when a node with the same name is already registered — a
    /// silent remap would leave the intern table and resource accounting
    /// pointing at different nodes.
    pub fn add_node(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        let previous = self.name_index.insert(node.name.clone(), id.0);
        assert!(
            previous.is_none(),
            "duplicate node name registered: {}",
            node.name
        );
        self.nodes.push(node);
        self.generation += 1;
        id
    }

    /// The current mutation generation. Bumped whenever the node table is
    /// grown or a mutable node reference is handed out, so callers caching
    /// node-derived state (feasibility indexes) can detect staleness with a
    /// single compare.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// All nodes, indexed by [`NodeId`].
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Mutable access to all nodes (used to inject background load). Node
    /// names must not be changed through this; the intern table would go
    /// stale.
    pub fn nodes_mut(&mut self) -> &mut [Node] {
        self.generation += 1;
        &mut self.nodes
    }

    /// Number of nodes (== the number of interned [`NodeId`]s).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Ids of all nodes in registration order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// Resolve a node name to its interned id.
    pub fn node_id(&self, name: &str) -> Option<NodeId> {
        self.name_index.get(name).copied().map(NodeId)
    }

    /// Resolve an interned id back to the node name.
    ///
    /// # Panics
    /// Panics if `id` was not issued by this cluster.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.nodes[id.index()].name
    }

    /// Look up a node by interned id.
    pub fn node_by_id(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(id.index())
    }

    /// Look up a node by interned id (mutable).
    pub fn node_by_id_mut(&mut self, id: NodeId) -> Option<&mut Node> {
        let node = self.nodes.get_mut(id.index());
        if node.is_some() {
            self.generation += 1;
        }
        node
    }

    /// Find a node by name.
    pub fn node(&self, name: &str) -> Option<&Node> {
        self.node_id(name).and_then(|id| self.nodes.get(id.index()))
    }

    /// Find a node by name (mutable).
    pub fn node_mut(&mut self, name: &str) -> Option<&mut Node> {
        match self.node_id(name) {
            Some(id) => self.node_by_id_mut(id),
            None => None,
        }
    }

    /// Names of all nodes in order.
    pub fn node_names(&self) -> Vec<String> {
        self.nodes.iter().map(|n| n.name.clone()).collect()
    }

    /// True when `names` is exactly this cluster's node-name table in
    /// registration ([`NodeId`]) order — the alignment check shared by
    /// id-indexed views built against the table (telemetry snapshots,
    /// exporter layouts).
    pub fn names_match(&self, names: &[String]) -> bool {
        self.nodes.len() == names.len()
            && self
                .nodes
                .iter()
                .zip(names)
                .all(|(node, name)| node.name == *name)
    }

    /// Create a pod in the `Pending` phase and return its id.
    pub fn create_pod(&mut self, spec: PodSpec, now: SimTime) -> PodId {
        let id = PodId(self.next_pod_id);
        self.next_pod_id += 1;
        let name = spec.name.clone();
        self.pods.insert(id.0, Pod::new(id, spec, now));
        self.record(now, name, "Created", "pod created");
        id
    }

    /// Look up a pod.
    pub fn pod(&self, id: PodId) -> Option<&Pod> {
        self.pods.get(&id.0)
    }

    /// All pods (any phase), in id order.
    pub fn pods(&self) -> impl Iterator<Item = &Pod> {
        self.pods.values()
    }

    /// Pods currently bound to `node_name` and not yet terminal.
    pub fn pods_on_node(&self, node_name: &str) -> Vec<&Pod> {
        self.pods
            .values()
            .filter(|p| p.node.as_deref() == Some(node_name) && !p.is_terminal())
            .collect()
    }

    /// Bind a pending pod to a node, reserving resources.
    pub fn bind_pod(
        &mut self,
        id: PodId,
        node_name: &str,
        now: SimTime,
    ) -> Result<(), ClusterError> {
        let pod = self.pods.get(&id.0).ok_or(ClusterError::NoSuchPod(id.0))?;
        if pod.phase != PodPhase::Pending {
            return Err(ClusterError::InvalidPhase(format!(
                "pod {} is {:?}, expected Pending",
                pod.spec.name, pod.phase
            )));
        }
        let requests = pod.spec.requests;
        let pod_name = pod.spec.name.clone();
        let node = self
            .node_mut(node_name)
            .ok_or_else(|| ClusterError::NoSuchNode(node_name.to_string()))?;
        if !node.bind(id, requests) {
            return Err(ClusterError::BindFailed(format!(
                "pod {pod_name} does not fit on {node_name}"
            )));
        }
        let pod = self.pods.get_mut(&id.0).expect("checked above");
        pod.node = Some(node_name.to_string());
        pod.phase = PodPhase::Running;
        pod.started_at = Some(now);
        let msg = format!("bound to {node_name}");
        let name = pod.spec.name.clone();
        self.record(now, name, "Scheduled", msg);
        Ok(())
    }

    /// Mark a running pod as finished, releasing its resources.
    pub fn complete_pod(
        &mut self,
        id: PodId,
        succeeded: bool,
        now: SimTime,
    ) -> Result<(), ClusterError> {
        let pod = self
            .pods
            .get_mut(&id.0)
            .ok_or(ClusterError::NoSuchPod(id.0))?;
        if pod.phase != PodPhase::Running {
            return Err(ClusterError::InvalidPhase(format!(
                "pod {} is {:?}, expected Running",
                pod.spec.name, pod.phase
            )));
        }
        pod.phase = if succeeded {
            PodPhase::Succeeded
        } else {
            PodPhase::Failed
        };
        pod.finished_at = Some(now);
        let requests = pod.spec.requests;
        let node_name = pod.node.clone().expect("running pod has a node");
        let pod_name = pod.spec.name.clone();
        if let Some(node) = self.node_mut(&node_name) {
            node.release(id, requests);
        }
        self.record(
            now,
            pod_name,
            if succeeded { "Completed" } else { "Failed" },
            format!("released from {node_name}"),
        );
        Ok(())
    }

    /// Delete a pod in any phase, releasing resources if it was running.
    pub fn delete_pod(&mut self, id: PodId, now: SimTime) -> Result<(), ClusterError> {
        let pod = self
            .pods
            .remove(&id.0)
            .ok_or(ClusterError::NoSuchPod(id.0))?;
        if pod.phase == PodPhase::Running {
            if let (Some(node_name), requests) = (pod.node.clone(), pod.spec.requests) {
                if let Some(node) = self.node_mut(&node_name) {
                    node.release(id, requests);
                }
            }
        }
        self.record(now, pod.spec.name, "Deleted", "pod deleted");
        Ok(())
    }

    /// Record an event.
    pub fn record(
        &mut self,
        time: SimTime,
        subject: impl Into<String>,
        reason: impl Into<String>,
        message: impl Into<String>,
    ) {
        self.events.push(ClusterEvent {
            time,
            subject: subject.into(),
            reason: reason.into(),
            message: message.into(),
        });
    }

    /// The event log.
    pub fn events(&self) -> &[ClusterEvent] {
        &self.events
    }

    /// Total allocatable resources across all nodes.
    pub fn total_allocatable(&self) -> crate::resources::Resources {
        self.nodes
            .iter()
            .fold(crate::resources::Resources::ZERO, |acc, n| {
                acc + n.allocatable
            })
    }

    /// Total requested resources across all nodes.
    pub fn total_allocated(&self) -> crate::resources::Resources {
        self.nodes
            .iter()
            .fold(crate::resources::Resources::ZERO, |acc, n| {
                acc + n.allocated()
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::Resources;
    use simnet::NodeId;

    fn cluster() -> ClusterState {
        let mut c = ClusterState::new();
        for i in 0..3 {
            c.add_node(Node::new(
                format!("node-{}", i + 1),
                NodeId(i),
                Resources::from_cores_and_gib(6, 8),
                "SITE",
            ));
        }
        c
    }

    #[test]
    fn create_bind_complete_lifecycle() {
        let mut c = cluster();
        let t0 = SimTime::from_secs(1);
        let id = c.create_pod(
            PodSpec::new("driver", Resources::from_cores_and_gib(2, 2)),
            t0,
        );
        assert_eq!(c.pod(id).unwrap().phase, PodPhase::Pending);
        c.bind_pod(id, "node-2", SimTime::from_secs(2)).unwrap();
        assert_eq!(c.pod(id).unwrap().phase, PodPhase::Running);
        assert_eq!(c.pod(id).unwrap().node.as_deref(), Some("node-2"));
        assert_eq!(
            c.node("node-2").unwrap().allocated(),
            Resources::from_cores_and_gib(2, 2)
        );
        assert_eq!(c.pods_on_node("node-2").len(), 1);
        assert_eq!(c.pods_on_node("node-1").len(), 0);
        c.complete_pod(id, true, SimTime::from_secs(30)).unwrap();
        assert_eq!(c.pod(id).unwrap().phase, PodPhase::Succeeded);
        assert_eq!(c.node("node-2").unwrap().allocated(), Resources::ZERO);
        assert_eq!(c.pods_on_node("node-2").len(), 0);
        assert_eq!(
            c.pod(id).unwrap().run_duration().unwrap().as_secs_f64(),
            28.0
        );
        // Events were recorded in order.
        let reasons: Vec<&str> = c.events().iter().map(|e| e.reason.as_str()).collect();
        assert_eq!(reasons, vec!["Created", "Scheduled", "Completed"]);
    }

    #[test]
    fn bind_errors() {
        let mut c = cluster();
        let t = SimTime::ZERO;
        let id = c.create_pod(PodSpec::new("p", Resources::from_cores_and_gib(2, 2)), t);
        assert!(matches!(
            c.bind_pod(id, "nope", t),
            Err(ClusterError::NoSuchNode(_))
        ));
        let huge = c.create_pod(
            PodSpec::new("huge", Resources::from_cores_and_gib(64, 64)),
            t,
        );
        assert!(matches!(
            c.bind_pod(huge, "node-1", t),
            Err(ClusterError::BindFailed(_))
        ));
        c.bind_pod(id, "node-1", t).unwrap();
        // Binding twice is an invalid phase.
        assert!(matches!(
            c.bind_pod(id, "node-1", t),
            Err(ClusterError::InvalidPhase(_))
        ));
        assert!(matches!(
            c.bind_pod(PodId(999), "node-1", t),
            Err(ClusterError::NoSuchPod(999))
        ));
    }

    #[test]
    fn complete_errors() {
        let mut c = cluster();
        let t = SimTime::ZERO;
        let id = c.create_pod(PodSpec::new("p", Resources::ZERO), t);
        assert!(matches!(
            c.complete_pod(id, true, t),
            Err(ClusterError::InvalidPhase(_))
        ));
        assert!(matches!(
            c.complete_pod(PodId(42), true, t),
            Err(ClusterError::NoSuchPod(42))
        ));
    }

    #[test]
    fn failed_pod_releases_resources() {
        let mut c = cluster();
        let t = SimTime::ZERO;
        let id = c.create_pod(PodSpec::new("p", Resources::from_cores_and_gib(1, 1)), t);
        c.bind_pod(id, "node-1", t).unwrap();
        c.complete_pod(id, false, SimTime::from_secs(5)).unwrap();
        assert_eq!(c.pod(id).unwrap().phase, PodPhase::Failed);
        assert_eq!(c.node("node-1").unwrap().allocated(), Resources::ZERO);
    }

    #[test]
    fn delete_running_pod_releases_resources() {
        let mut c = cluster();
        let t = SimTime::ZERO;
        let id = c.create_pod(PodSpec::new("p", Resources::from_cores_and_gib(1, 1)), t);
        c.bind_pod(id, "node-3", t).unwrap();
        c.delete_pod(id, SimTime::from_secs(1)).unwrap();
        assert!(c.pod(id).is_none());
        assert_eq!(c.node("node-3").unwrap().allocated(), Resources::ZERO);
        assert!(matches!(
            c.delete_pod(id, SimTime::from_secs(2)),
            Err(ClusterError::NoSuchPod(_))
        ));
    }

    #[test]
    fn totals_aggregate_over_nodes() {
        let mut c = cluster();
        assert_eq!(c.total_allocatable(), Resources::from_cores_and_gib(18, 24));
        let t = SimTime::ZERO;
        let id = c.create_pod(PodSpec::new("p", Resources::from_cores_and_gib(2, 2)), t);
        c.bind_pod(id, "node-1", t).unwrap();
        assert_eq!(c.total_allocated(), Resources::from_cores_and_gib(2, 2));
    }

    #[test]
    fn node_lookup_and_names() {
        let c = cluster();
        assert!(c.node("node-2").is_some());
        assert!(c.node("nope").is_none());
        assert_eq!(c.node_names(), vec!["node-1", "node-2", "node-3"]);
    }

    #[test]
    fn node_ids_are_interned_in_registration_order() {
        let mut c = ClusterState::new();
        let ids: Vec<super::NodeId> = (0..3)
            .map(|i| {
                c.add_node(Node::new(
                    format!("node-{}", i + 1),
                    NodeId(i),
                    Resources::from_cores_and_gib(6, 8),
                    "SITE",
                ))
            })
            .collect();
        assert_eq!(
            ids,
            vec![super::NodeId(0), super::NodeId(1), super::NodeId(2)]
        );
        assert_eq!(c.node_count(), 3);
        assert_eq!(c.node_id("node-2"), Some(super::NodeId(1)));
        assert_eq!(c.node_id("nope"), None);
        assert_eq!(c.node_name(super::NodeId(2)), "node-3");
        assert_eq!(c.node_by_id(super::NodeId(0)).unwrap().name, "node-1");
        assert!(c.node_by_id(super::NodeId(9)).is_none());
        assert_eq!(c.node_ids().collect::<Vec<_>>(), ids);
        assert_eq!(format!("{}", super::NodeId(4)), "#4");
        assert_eq!(super::NodeId::from_index(7).index(), 7);
        // Mutable id lookup reaches the same node.
        c.node_by_id_mut(super::NodeId(1)).unwrap().schedulable = false;
        assert!(!c.node("node-2").unwrap().schedulable);
    }

    #[test]
    #[should_panic(expected = "duplicate node name")]
    fn duplicate_node_names_are_rejected() {
        let mut c = cluster();
        c.add_node(Node::new(
            "node-1",
            NodeId(9),
            Resources::from_cores_and_gib(2, 2),
            "SITE",
        ));
    }

    #[test]
    fn generation_tracks_node_mutations() {
        let mut c = ClusterState::new();
        assert_eq!(c.generation(), 0);
        c.add_node(Node::new(
            "node-1",
            NodeId(0),
            Resources::from_cores_and_gib(6, 8),
            "SITE",
        ));
        let after_add = c.generation();
        assert!(after_add > 0);
        // Read-only access does not bump.
        let _ = c.node("node-1");
        let _ = c.nodes();
        let _ = c.node_by_id(super::NodeId(0));
        assert_eq!(c.generation(), after_add);
        // Mutable access bumps, even if the node is not actually changed.
        let _ = c.nodes_mut();
        assert!(c.generation() > after_add);
        let g = c.generation();
        c.node_by_id_mut(super::NodeId(0)).unwrap().schedulable = false;
        assert!(c.generation() > g);
        // A miss hands out no reference and does not bump.
        let g = c.generation();
        assert!(c.node_by_id_mut(super::NodeId(9)).is_none());
        assert!(c.node_mut("nope").is_none());
        assert_eq!(c.generation(), g);
        // Pod binding and release route through node_mut and bump.
        let t = SimTime::ZERO;
        c.node_by_id_mut(super::NodeId(0)).unwrap().schedulable = true;
        let g = c.generation();
        let id = c.create_pod(PodSpec::new("p", Resources::from_cores_and_gib(1, 1)), t);
        c.bind_pod(id, "node-1", t).unwrap();
        assert!(c.generation() > g);
        let g = c.generation();
        c.complete_pod(id, true, t).unwrap();
        assert!(c.generation() > g);
    }

    #[test]
    fn error_display() {
        assert!(format!("{}", ClusterError::NoSuchNode("x".into())).contains("x"));
        assert!(format!("{}", ClusterError::NoSuchPod(3)).contains("pod-3"));
        assert!(format!("{}", ClusterError::BindFailed("m".into())).contains("m"));
        assert!(format!("{}", ClusterError::InvalidPhase("p".into())).contains("p"));
    }
}
