//! The default scheduler: filtering and scoring.
//!
//! This reimplements the behaviour the paper uses as its baseline
//! (Section 3.1): *"filtering, where nodes that do not satisfy basic
//! requirements (e.g., insufficient CPU/memory) are eliminated, and scoring,
//! where remaining nodes are ranked using a set of scoring functions (e.g.,
//! least requested resources, affinity...). The node with the highest score is
//! then selected."* Crucially it is *"blind to runtime factors such as network
//! variability, CPU pressure, or memory contention"* — it only sees declared
//! requests and allocatable capacity, never telemetry. That blindness is what
//! the supervised scheduler in `netsched-core` improves upon.

use crate::affinity::{tolerates_all_no_schedule, untolerated_soft_taints};
use crate::node::Node;
use crate::pod::PodSpec;
use serde::{Deserialize, Serialize};
use simcore::rng::Rng;

/// Why a node was filtered out for a pod.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FilterResult {
    /// The node can host the pod.
    Feasible,
    /// Node is cordoned / marked unschedulable.
    Unschedulable,
    /// Requested CPU or memory does not fit the node's free allocatable.
    InsufficientResources,
    /// The pod's `nodeSelector` does not match the node labels.
    NodeSelectorMismatch,
    /// The pod's required node affinity does not match.
    AffinityMismatch,
    /// The node has an untolerated `NoSchedule` taint.
    UntoleratedTaint,
}

/// A node together with its score (0..=100 per Kubernetes convention).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoredNode {
    /// Node name.
    pub node: String,
    /// Final normalized score.
    pub score: f64,
    /// Breakdown: least-requested component.
    pub least_requested: f64,
    /// Breakdown: balanced-allocation component.
    pub balanced_allocation: f64,
    /// Breakdown: preferred-affinity component.
    pub affinity_preference: f64,
    /// Breakdown: soft-taint penalty subtracted from the score.
    pub taint_penalty: f64,
}

/// Result of asking a scheduler for a placement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScheduleOutcome {
    /// A node was selected; the full ranking is included for analysis.
    Scheduled {
        /// The chosen node.
        node: String,
        /// All feasible nodes with scores, sorted best-first.
        ranking: Vec<ScoredNode>,
    },
    /// No feasible node exists; the per-node filter verdicts are included.
    Unschedulable {
        /// Why each node was rejected.
        reasons: Vec<(String, FilterResult)>,
    },
}

impl ScheduleOutcome {
    /// The selected node name, if any.
    pub fn node(&self) -> Option<&str> {
        match self {
            ScheduleOutcome::Scheduled { node, .. } => Some(node),
            ScheduleOutcome::Unschedulable { .. } => None,
        }
    }
}

/// Anything that can pick a node for a pod.
pub trait Scheduler {
    /// Choose a node for `pod` among `nodes`.
    fn schedule(&mut self, pod: &PodSpec, nodes: &[Node]) -> ScheduleOutcome;

    /// Human-readable name for reports.
    fn name(&self) -> &str;
}

/// Configuration weights for the default scheduler's scoring plugins.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DefaultSchedulerConfig {
    /// Weight of the least-requested priority.
    pub least_requested_weight: f64,
    /// Weight of the balanced-allocation priority.
    pub balanced_allocation_weight: f64,
    /// Weight of the preferred node-affinity priority.
    pub affinity_weight: f64,
    /// Score subtracted per untolerated `PreferNoSchedule` taint.
    pub soft_taint_penalty: f64,
}

impl Default for DefaultSchedulerConfig {
    fn default() -> Self {
        DefaultSchedulerConfig {
            least_requested_weight: 1.0,
            balanced_allocation_weight: 1.0,
            affinity_weight: 1.0,
            soft_taint_penalty: 10.0,
        }
    }
}

/// The default (network-blind) scheduler.
#[derive(Debug, Clone)]
pub struct DefaultScheduler {
    config: DefaultSchedulerConfig,
    rng: Rng,
}

impl DefaultScheduler {
    /// Create a default scheduler. `seed` drives the randomized tie-breaking
    /// among equally scored nodes (kube-scheduler does the same: when several
    /// nodes share the top score one is picked at random).
    pub fn new(seed: u64) -> Self {
        DefaultScheduler {
            config: DefaultSchedulerConfig::default(),
            rng: Rng::seed_from_u64(seed),
        }
    }

    /// Create with explicit plugin weights.
    pub fn with_config(seed: u64, config: DefaultSchedulerConfig) -> Self {
        DefaultScheduler {
            config,
            rng: Rng::seed_from_u64(seed),
        }
    }

    /// Filtering phase for one node.
    pub fn filter(pod: &PodSpec, node: &Node) -> FilterResult {
        if !node.schedulable {
            return FilterResult::Unschedulable;
        }
        if !pod.requests.fits_within(&node.available()) {
            return FilterResult::InsufficientResources;
        }
        if !pod.node_selector_matches(&node.labels) {
            return FilterResult::NodeSelectorMismatch;
        }
        if !pod.affinity.required_matches(&node.labels) {
            return FilterResult::AffinityMismatch;
        }
        if !tolerates_all_no_schedule(&node.taints, &pod.tolerations) {
            return FilterResult::UntoleratedTaint;
        }
        FilterResult::Feasible
    }

    /// Scoring phase for one feasible node.
    pub fn score(&self, pod: &PodSpec, node: &Node) -> ScoredNode {
        // Project the allocation as if the pod were bound.
        let projected = node.allocated() + pod.requests;
        let (cpu_frac, mem_frac) = projected.utilization_of(&node.allocatable);

        // LeastRequestedPriority: free fraction averaged over cpu and memory, scaled to 100.
        let least_requested = ((1.0 - cpu_frac) + (1.0 - mem_frac)) / 2.0 * 100.0;

        // BalancedResourceAllocation: 100 minus the cpu/mem utilization skew.
        let balanced_allocation = (1.0 - (cpu_frac - mem_frac).abs()) * 100.0;

        // Preferred affinity: normalized sum of matching weights.
        let total_pref: u32 = pod
            .affinity
            .preferred_terms
            .iter()
            .map(|t| t.weight.min(100))
            .sum();
        let affinity_preference = if total_pref == 0 {
            0.0
        } else {
            pod.affinity.preferred_score(&node.labels) as f64 / total_pref as f64 * 100.0
        };

        let taint_penalty = untolerated_soft_taints(&node.taints, &pod.tolerations) as f64
            * self.config.soft_taint_penalty;

        let weight_sum = self.config.least_requested_weight
            + self.config.balanced_allocation_weight
            + if total_pref > 0 {
                self.config.affinity_weight
            } else {
                0.0
            };
        let weighted = self.config.least_requested_weight * least_requested
            + self.config.balanced_allocation_weight * balanced_allocation
            + if total_pref > 0 {
                self.config.affinity_weight * affinity_preference
            } else {
                0.0
            };
        let score = (weighted / weight_sum.max(1e-9) - taint_penalty).max(0.0);

        ScoredNode {
            node: node.name.clone(),
            score,
            least_requested,
            balanced_allocation,
            affinity_preference,
            taint_penalty,
        }
    }
}

impl DefaultScheduler {
    /// [`Scheduler::schedule`] over a pre-selected candidate slice of node
    /// references (e.g. the output of a feasibility index or prefilter).
    /// Filtering, scoring, ranking and randomized tie-breaking behave exactly
    /// as they do over the full node table: passing references to every node
    /// in table order produces a byte-identical outcome and consumes the
    /// tie-break RNG identically.
    pub fn schedule_refs(&mut self, pod: &PodSpec, nodes: &[&Node]) -> ScheduleOutcome {
        let mut reasons = Vec::with_capacity(nodes.len());
        let mut feasible: Vec<&Node> = Vec::with_capacity(nodes.len());
        for node in nodes {
            let verdict = Self::filter(pod, node);
            if verdict == FilterResult::Feasible {
                feasible.push(node);
            }
            reasons.push((node.name.clone(), verdict));
        }
        if feasible.is_empty() {
            return ScheduleOutcome::Unschedulable { reasons };
        }
        let mut ranking: Vec<ScoredNode> = feasible.iter().map(|n| self.score(pod, n)).collect();
        // Sort best-first with deterministic secondary ordering by name.
        ranking.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.node.cmp(&b.node))
        });
        // Randomized tie-breaking among the joint top scorers (like upstream).
        let top_score = ranking[0].score;
        let tied: Vec<usize> = ranking
            .iter()
            .enumerate()
            .take_while(|(_, s)| (s.score - top_score).abs() < 1e-9)
            .map(|(i, _)| i)
            .collect();
        let pick = if tied.len() > 1 {
            tied[self.rng.gen_range_usize(0, tied.len())]
        } else {
            0
        };
        let node = ranking[pick].node.clone();
        ScheduleOutcome::Scheduled { node, ranking }
    }
}

impl Scheduler for DefaultScheduler {
    fn schedule(&mut self, pod: &PodSpec, nodes: &[Node]) -> ScheduleOutcome {
        let refs: Vec<&Node> = nodes.iter().collect();
        self.schedule_refs(pod, &refs)
    }

    fn name(&self) -> &str {
        "kubernetes-default"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affinity::{
        NodeAffinity, NodeSelectorTerm, PreferredSchedulingTerm, Taint, TaintEffect, Toleration,
    };
    use crate::resources::Resources;
    use simnet::NodeId;
    use std::collections::BTreeMap;

    fn mk_nodes(n: usize) -> Vec<Node> {
        (0..n)
            .map(|i| {
                Node::new(
                    format!("node-{}", i + 1),
                    NodeId(i),
                    Resources::from_cores_and_gib(6, 8),
                    if i < 2 {
                        "UCSD"
                    } else if i < 4 {
                        "FIU"
                    } else {
                        "SRI"
                    },
                )
            })
            .collect()
    }

    fn pod(cpu: u64, mem_gib: u64) -> PodSpec {
        PodSpec::new("test-pod", Resources::from_cores_and_gib(cpu, mem_gib))
    }

    #[test]
    fn filters_resource_shortfall() {
        let nodes = mk_nodes(2);
        assert_eq!(
            DefaultScheduler::filter(&pod(2, 2), &nodes[0]),
            FilterResult::Feasible
        );
        assert_eq!(
            DefaultScheduler::filter(&pod(8, 2), &nodes[0]),
            FilterResult::InsufficientResources
        );
        assert_eq!(
            DefaultScheduler::filter(&pod(2, 16), &nodes[0]),
            FilterResult::InsufficientResources
        );
    }

    #[test]
    fn filters_selector_affinity_and_taints() {
        let mut nodes = mk_nodes(2);
        nodes[0].labels.insert("disk".into(), "hdd".into());
        let selector_pod = pod(1, 1).with_node_selector("disk", "ssd");
        assert_eq!(
            DefaultScheduler::filter(&selector_pod, &nodes[0]),
            FilterResult::NodeSelectorMismatch
        );

        let pinned = pod(1, 1).pinned_to("node-2");
        assert_eq!(
            DefaultScheduler::filter(&pinned, &nodes[0]),
            FilterResult::AffinityMismatch
        );
        assert_eq!(
            DefaultScheduler::filter(&pinned, &nodes[1]),
            FilterResult::Feasible
        );

        let tainted = Node::new("t", NodeId(5), Resources::from_cores_and_gib(6, 8), "X")
            .with_taint(Taint {
                key: "dedicated".into(),
                value: "infra".into(),
                effect: TaintEffect::NoSchedule,
            });
        assert_eq!(
            DefaultScheduler::filter(&pod(1, 1), &tainted),
            FilterResult::UntoleratedTaint
        );
        let tolerant = pod(1, 1).with_toleration(Toleration::for_key("dedicated"));
        assert_eq!(
            DefaultScheduler::filter(&tolerant, &tainted),
            FilterResult::Feasible
        );

        let mut cordoned = mk_nodes(1).remove(0);
        cordoned.schedulable = false;
        assert_eq!(
            DefaultScheduler::filter(&pod(1, 1), &cordoned),
            FilterResult::Unschedulable
        );
    }

    #[test]
    fn least_requested_prefers_emptier_node() {
        let mut nodes = mk_nodes(2);
        // Load node-1 with a big pod.
        nodes[0].bind(crate::pod::PodId(99), Resources::from_cores_and_gib(4, 4));
        let mut sched = DefaultScheduler::new(7);
        let outcome = sched.schedule(&pod(1, 1), &nodes);
        match outcome {
            ScheduleOutcome::Scheduled { node, ranking } => {
                assert_eq!(node, "node-2");
                assert_eq!(ranking.len(), 2);
                assert!(ranking[0].score > ranking[1].score);
            }
            _ => panic!("expected scheduled"),
        }
    }

    #[test]
    fn unschedulable_reports_reasons() {
        let nodes = mk_nodes(3);
        let mut sched = DefaultScheduler::new(1);
        let outcome = sched.schedule(&pod(32, 1), &nodes);
        match outcome {
            ScheduleOutcome::Unschedulable { reasons } => {
                assert_eq!(reasons.len(), 3);
                assert!(reasons
                    .iter()
                    .all(|(_, r)| *r == FilterResult::InsufficientResources));
            }
            _ => panic!("expected unschedulable"),
        }
        assert_eq!(sched.schedule(&pod(32, 1), &nodes).node(), None);
    }

    #[test]
    fn ties_break_randomly_but_reproducibly() {
        let nodes = mk_nodes(6);
        // Identical empty nodes -> identical scores -> random tie-break.
        let picks_a: Vec<String> = {
            let mut sched = DefaultScheduler::new(42);
            (0..40)
                .map(|_| {
                    sched
                        .schedule(&pod(1, 1), &nodes)
                        .node()
                        .unwrap()
                        .to_string()
                })
                .collect()
        };
        let picks_b: Vec<String> = {
            let mut sched = DefaultScheduler::new(42);
            (0..40)
                .map(|_| {
                    sched
                        .schedule(&pod(1, 1), &nodes)
                        .node()
                        .unwrap()
                        .to_string()
                })
                .collect()
        };
        assert_eq!(picks_a, picks_b, "same seed, same picks");
        let distinct: std::collections::BTreeSet<&String> = picks_a.iter().collect();
        assert!(
            distinct.len() >= 3,
            "tie-breaking should spread across nodes, got {distinct:?}"
        );
    }

    #[test]
    fn preferred_affinity_breaks_symmetry() {
        let nodes = mk_nodes(6);
        let mut spec = pod(1, 1);
        spec.affinity = NodeAffinity {
            required_terms: vec![],
            preferred_terms: vec![PreferredSchedulingTerm {
                weight: 50,
                term: NodeSelectorTerm {
                    requirements: vec![crate::affinity::NodeSelectorRequirement::key_in(
                        "topology.kubernetes.io/zone",
                        vec!["SRI".into()],
                    )],
                },
            }],
        };
        let mut sched = DefaultScheduler::new(3);
        for _ in 0..10 {
            let node = sched.schedule(&spec, &nodes).node().unwrap().to_string();
            assert!(node == "node-5" || node == "node-6", "picked {node}");
        }
    }

    #[test]
    fn soft_taint_penalty_reduces_score() {
        let mut nodes = mk_nodes(2);
        nodes[0].taints.push(Taint {
            key: "flaky".into(),
            value: "true".into(),
            effect: TaintEffect::PreferNoSchedule,
        });
        let mut sched = DefaultScheduler::new(9);
        for _ in 0..10 {
            assert_eq!(sched.schedule(&pod(1, 1), &nodes).node().unwrap(), "node-2");
        }
    }

    #[test]
    fn balanced_allocation_component_is_sane() {
        let sched = DefaultScheduler::new(0);
        let node = &mk_nodes(1)[0];
        let balanced = sched.score(&pod(3, 4), node); // 50% cpu, 50% mem -> perfectly balanced
        assert!((balanced.balanced_allocation - 100.0).abs() < 1e-9);
        let skewed = sched.score(&pod(6, 0), node); // 100% cpu, 0% mem
        assert!(skewed.balanced_allocation < balanced.balanced_allocation);
        assert!(skewed.score < balanced.score);
    }

    #[test]
    fn scoring_ignores_labels_it_does_not_know() {
        // A node with arbitrary extra labels scores the same as one without.
        let sched = DefaultScheduler::new(0);
        let plain = &mk_nodes(1)[0];
        let mut labelled = plain.clone();
        labelled.labels.insert("unrelated".into(), "value".into());
        let p = pod(2, 2);
        assert_eq!(
            sched.score(&p, plain).score,
            sched.score(&p, &labelled).score
        );
        let _ = BTreeMap::<String, String>::new();
    }

    #[test]
    fn scheduler_name() {
        assert_eq!(DefaultScheduler::new(0).name(), "kubernetes-default");
    }
}
