//! Pods: the unit of placement.

use crate::affinity::{NodeAffinity, Toleration};
use crate::resources::Resources;
use serde::{Deserialize, Serialize};
use simcore::SimTime;
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a pod within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PodId(pub u64);

impl fmt::Display for PodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pod-{}", self.0)
    }
}

/// The role a pod plays in a Spark-style application (used by the workload
/// model and for manifest rendering; plain pods use [`PodRole::Standalone`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PodRole {
    /// Application driver.
    Driver,
    /// Application executor.
    Executor,
    /// Background or standalone pod.
    Standalone,
}

/// Desired state of a pod.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PodSpec {
    /// Pod name (unique within the cluster in this model).
    pub name: String,
    /// Namespace (cosmetic; defaults to `default`).
    pub namespace: String,
    /// Labels attached to the pod.
    pub labels: BTreeMap<String, String>,
    /// Requested resources (used by scheduling).
    pub requests: Resources,
    /// Resource limits (not enforced by the simulator but carried in manifests).
    pub limits: Resources,
    /// Simple node selector (`key == value` for every entry).
    pub node_selector: BTreeMap<String, String>,
    /// Node affinity (required + preferred terms).
    pub affinity: NodeAffinity,
    /// Tolerations for node taints.
    pub tolerations: Vec<Toleration>,
    /// Role within an application.
    pub role: PodRole,
}

impl PodSpec {
    /// Create a minimal pod spec with the given name and requests.
    pub fn new(name: impl Into<String>, requests: Resources) -> Self {
        PodSpec {
            name: name.into(),
            namespace: "default".to_string(),
            labels: BTreeMap::new(),
            requests,
            limits: requests,
            node_selector: BTreeMap::new(),
            affinity: NodeAffinity::none(),
            tolerations: Vec::new(),
            role: PodRole::Standalone,
        }
    }

    /// Builder-style: set a label.
    pub fn with_label(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.labels.insert(key.into(), value.into());
        self
    }

    /// Builder-style: set the role.
    pub fn with_role(mut self, role: PodRole) -> Self {
        self.role = role;
        self
    }

    /// Builder-style: set resource limits.
    pub fn with_limits(mut self, limits: Resources) -> Self {
        self.limits = limits;
        self
    }

    /// Builder-style: require placement on a specific hostname via affinity
    /// (this is the paper's Job Builder injection).
    pub fn pinned_to(mut self, hostname: impl Into<String>) -> Self {
        self.affinity = NodeAffinity::require_hostname(hostname);
        self
    }

    /// Builder-style: add a node selector entry.
    pub fn with_node_selector(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.node_selector.insert(key.into(), value.into());
        self
    }

    /// Builder-style: add a toleration.
    pub fn with_toleration(mut self, toleration: Toleration) -> Self {
        self.tolerations.push(toleration);
        self
    }

    /// Set a label in place, reusing the existing value's allocation when
    /// the key is already present (the in-place builders' steady state).
    pub fn set_label(&mut self, key: &str, value: &str) {
        match self.labels.get_mut(key) {
            Some(slot) => {
                slot.clear();
                slot.push_str(value);
            }
            None => {
                self.labels.insert(key.to_string(), value.to_string());
            }
        }
    }

    /// Does the simple node selector match a node's labels?
    pub fn node_selector_matches(&self, labels: &BTreeMap<String, String>) -> bool {
        self.node_selector
            .iter()
            .all(|(k, v)| labels.get(k) == Some(v))
    }
}

/// Lifecycle phase of a pod.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PodPhase {
    /// Submitted but not yet bound to a node.
    Pending,
    /// Bound and running on a node.
    Running,
    /// Finished successfully.
    Succeeded,
    /// Finished with an error.
    Failed,
}

/// A pod: spec plus observed status.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Pod {
    /// Identifier assigned by the cluster.
    pub id: PodId,
    /// The desired state.
    pub spec: PodSpec,
    /// Current phase.
    pub phase: PodPhase,
    /// The node the pod is bound to, if any.
    pub node: Option<String>,
    /// When the pod was created.
    pub created_at: SimTime,
    /// When the pod started running.
    pub started_at: Option<SimTime>,
    /// When the pod finished (succeeded or failed).
    pub finished_at: Option<SimTime>,
}

impl Pod {
    /// Create a pending pod.
    pub fn new(id: PodId, spec: PodSpec, now: SimTime) -> Self {
        Pod {
            id,
            spec,
            phase: PodPhase::Pending,
            node: None,
            created_at: now,
            started_at: None,
            finished_at: None,
        }
    }

    /// True when the pod is in a terminal phase.
    pub fn is_terminal(&self) -> bool {
        matches!(self.phase, PodPhase::Succeeded | PodPhase::Failed)
    }

    /// Wall-clock running duration (or `None` when it never started / hasn't finished).
    pub fn run_duration(&self) -> Option<simcore::SimDuration> {
        match (self.started_at, self.finished_at) {
            (Some(s), Some(f)) => Some(f - s),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain_sets_fields() {
        let spec = PodSpec::new("driver-1", Resources::from_cores_and_gib(1, 2))
            .with_label("app", "spark")
            .with_role(PodRole::Driver)
            .with_limits(Resources::from_cores_and_gib(2, 4))
            .pinned_to("node-5")
            .with_node_selector("tier", "worker")
            .with_toleration(Toleration::any());
        assert_eq!(spec.name, "driver-1");
        assert_eq!(spec.labels.get("app").unwrap(), "spark");
        assert_eq!(spec.role, PodRole::Driver);
        assert_eq!(spec.limits.memory_gib(), 4.0);
        assert!(!spec.affinity.is_empty());
        assert_eq!(spec.tolerations.len(), 1);
        assert_eq!(spec.namespace, "default");
    }

    #[test]
    fn node_selector_matching() {
        let spec = PodSpec::new("p", Resources::ZERO).with_node_selector("zone", "ucsd");
        let mut labels = BTreeMap::new();
        assert!(!spec.node_selector_matches(&labels));
        labels.insert("zone".to_string(), "ucsd".to_string());
        assert!(spec.node_selector_matches(&labels));
        labels.insert("zone".to_string(), "fiu".to_string());
        assert!(!spec.node_selector_matches(&labels));
        // Empty selector matches anything.
        assert!(PodSpec::new("q", Resources::ZERO).node_selector_matches(&labels));
    }

    #[test]
    fn lifecycle_and_duration() {
        let mut pod = Pod::new(
            PodId(1),
            PodSpec::new("p", Resources::ZERO),
            SimTime::from_secs(1),
        );
        assert_eq!(pod.phase, PodPhase::Pending);
        assert!(!pod.is_terminal());
        assert_eq!(pod.run_duration(), None);
        pod.phase = PodPhase::Running;
        pod.started_at = Some(SimTime::from_secs(2));
        assert_eq!(pod.run_duration(), None);
        pod.phase = PodPhase::Succeeded;
        pod.finished_at = Some(SimTime::from_secs(10));
        assert!(pod.is_terminal());
        assert_eq!(pod.run_duration().unwrap().as_secs_f64(), 8.0);
    }

    #[test]
    fn pod_id_display() {
        assert_eq!(format!("{}", PodId(3)), "pod-3");
    }
}
