//! The workload catalogue.
//!
//! Table 2 of the paper characterizes the three evaluated applications:
//!
//! | Application | Rationale |
//! |---|---|
//! | Sort      | High network and CPU usage from large shuffles; moderate memory |
//! | PageRank  | High network and CPU usage from iterative data exchange; moderate memory |
//! | Join      | Skewed network, CPU, and memory usage due to imbalanced joins |
//!
//! Two extra workloads (GroupBy, WordCount) round out the catalogue for the
//! wider experiments the paper lists as future work ("a wider range of
//! workload characteristics"); they are not part of the Table 4 reproduction.

use crate::dag::{JobDag, StageSpec};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Average serialized record size in bytes (key + payload), used to convert
/// the paper's "input size (number of records)" feature into data volume.
pub const BYTES_PER_RECORD: f64 = 100.0;

/// The supported application types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// Distributed sort (TeraSort-style): full-data shuffle.
    Sort,
    /// Iterative PageRank: repeated rank exchange.
    PageRank,
    /// Two-table equi-join with key skew.
    Join,
    /// Group-by with combiner (reduced shuffle volume).
    GroupBy,
    /// WordCount: map-heavy, tiny shuffle.
    WordCount,
}

impl WorkloadKind {
    /// The three workloads evaluated in the paper.
    pub const PAPER_SET: [WorkloadKind; 3] = [
        WorkloadKind::Sort,
        WorkloadKind::PageRank,
        WorkloadKind::Join,
    ];

    /// All supported workloads.
    pub const ALL: [WorkloadKind; 5] = [
        WorkloadKind::Sort,
        WorkloadKind::PageRank,
        WorkloadKind::Join,
        WorkloadKind::GroupBy,
        WorkloadKind::WordCount,
    ];

    /// Lower-case identifier used in job names, manifests and features.
    pub fn as_str(&self) -> &'static str {
        match self {
            WorkloadKind::Sort => "sort",
            WorkloadKind::PageRank => "pagerank",
            WorkloadKind::Join => "join",
            WorkloadKind::GroupBy => "groupby",
            WorkloadKind::WordCount => "wordcount",
        }
    }

    /// Stable integer code used as the categorical feature value.
    pub fn code(&self) -> usize {
        match self {
            WorkloadKind::Sort => 0,
            WorkloadKind::PageRank => 1,
            WorkloadKind::Join => 2,
            WorkloadKind::GroupBy => 3,
            WorkloadKind::WordCount => 4,
        }
    }

    /// Qualitative resource profile (the Table 2 characterization).
    pub fn profile(&self) -> WorkloadProfile {
        match self {
            WorkloadKind::Sort => WorkloadProfile {
                network_intensity: 1.0,
                cpu_intensity: 0.8,
                memory_intensity: 0.5,
                skew: 0.05,
                iterations: 1,
            },
            WorkloadKind::PageRank => WorkloadProfile {
                network_intensity: 0.85,
                cpu_intensity: 0.75,
                memory_intensity: 0.5,
                skew: 0.1,
                iterations: 5,
            },
            WorkloadKind::Join => WorkloadProfile {
                network_intensity: 0.7,
                cpu_intensity: 0.6,
                memory_intensity: 0.9,
                skew: 0.45,
                iterations: 1,
            },
            WorkloadKind::GroupBy => WorkloadProfile {
                network_intensity: 0.35,
                cpu_intensity: 0.5,
                memory_intensity: 0.4,
                skew: 0.15,
                iterations: 1,
            },
            WorkloadKind::WordCount => WorkloadProfile {
                network_intensity: 0.1,
                cpu_intensity: 0.9,
                memory_intensity: 0.25,
                skew: 0.05,
                iterations: 1,
            },
        }
    }
}

impl fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for WorkloadKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "sort" => Ok(WorkloadKind::Sort),
            "pagerank" | "page-rank" => Ok(WorkloadKind::PageRank),
            "join" => Ok(WorkloadKind::Join),
            "groupby" | "group-by" => Ok(WorkloadKind::GroupBy),
            "wordcount" | "word-count" => Ok(WorkloadKind::WordCount),
            other => Err(format!("unknown workload: {other}")),
        }
    }
}

/// Qualitative resource profile of a workload (normalized 0..=1 intensities).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// How much of the input volume crosses the network in shuffles.
    pub network_intensity: f64,
    /// CPU seconds per megabyte of input.
    pub cpu_intensity: f64,
    /// Peak memory per task relative to its data share.
    pub memory_intensity: f64,
    /// Work skew across partitions (0 = balanced).
    pub skew: f64,
    /// Number of iterations (PageRank > 1).
    pub iterations: u32,
}

/// A fully specified workload request: what the client submits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadRequest {
    /// Application type.
    pub kind: WorkloadKind,
    /// Input size in records.
    pub input_records: u64,
    /// Number of executors the application will run.
    pub executor_count: u32,
    /// Memory requested per executor, bytes.
    pub executor_memory_bytes: u64,
    /// Cores per executor.
    pub executor_cores: u32,
    /// Shuffle partition count.
    pub shuffle_partitions: u32,
}

impl WorkloadRequest {
    /// Create a request with common defaults (2 executors, 1 core / 1 GiB each,
    /// 8 shuffle partitions).
    pub fn new(kind: WorkloadKind, input_records: u64) -> Self {
        WorkloadRequest {
            kind,
            input_records,
            executor_count: 2,
            executor_memory_bytes: 1024 * 1024 * 1024,
            executor_cores: 1,
            shuffle_partitions: 8,
        }
    }

    /// Builder-style: executor count.
    pub fn with_executors(mut self, count: u32) -> Self {
        self.executor_count = count.max(1);
        self
    }

    /// Builder-style: executor memory in bytes.
    pub fn with_executor_memory(mut self, bytes: u64) -> Self {
        self.executor_memory_bytes = bytes;
        self
    }

    /// Builder-style: cores per executor.
    pub fn with_executor_cores(mut self, cores: u32) -> Self {
        self.executor_cores = cores.max(1);
        self
    }

    /// Builder-style: shuffle partitions.
    pub fn with_shuffle_partitions(mut self, partitions: u32) -> Self {
        self.shuffle_partitions = partitions.max(1);
        self
    }

    /// Input volume in bytes.
    pub fn input_bytes(&self) -> f64 {
        self.input_records as f64 * BYTES_PER_RECORD
    }

    /// Build the stage DAG for this request.
    pub fn build_dag(&self) -> JobDag {
        let profile = self.kind.profile();
        let input_bytes = self.input_bytes();
        let input_mb = input_bytes / 1e6;
        let partitions = self.shuffle_partitions.max(1);
        let mut stages: Vec<StageSpec> = Vec::new();

        // CPU seconds per task for a stage processing `bytes` across `tasks`.
        let cpu_per_task = |bytes: f64, tasks: u32, intensity: f64| -> f64 {
            let mb = bytes / 1e6;
            (mb * intensity / tasks.max(1) as f64).max(0.05)
        };
        // Memory per task for a stage holding `bytes` across `tasks`.
        let mem_per_task = |bytes: f64, tasks: u32| -> f64 {
            (bytes * profile.memory_intensity / tasks.max(1) as f64).max(16e6)
        };

        match self.kind {
            WorkloadKind::Sort => {
                // Stage 0: read + range-partition the input.
                stages.push(StageSpec {
                    id: 0,
                    name: "sort-map".into(),
                    parents: vec![],
                    tasks: partitions,
                    cpu_seconds_per_task: cpu_per_task(
                        input_bytes,
                        partitions,
                        profile.cpu_intensity * 0.6,
                    ),
                    shuffle_read_bytes: 0.0,
                    shuffle_write_bytes: input_bytes * profile.network_intensity,
                    memory_per_task_bytes: mem_per_task(input_bytes, partitions),
                    skew: profile.skew,
                });
                // Stage 1: fetch all data, sort each partition, write output.
                stages.push(StageSpec {
                    id: 1,
                    name: "sort-reduce".into(),
                    parents: vec![0],
                    tasks: partitions,
                    cpu_seconds_per_task: cpu_per_task(
                        input_bytes,
                        partitions,
                        profile.cpu_intensity,
                    ),
                    shuffle_read_bytes: input_bytes * profile.network_intensity,
                    shuffle_write_bytes: 0.0,
                    memory_per_task_bytes: mem_per_task(input_bytes, partitions),
                    skew: profile.skew,
                });
            }
            WorkloadKind::PageRank => {
                // Stage 0: load the edge list and build adjacency.
                stages.push(StageSpec {
                    id: 0,
                    name: "pagerank-load".into(),
                    parents: vec![],
                    tasks: partitions,
                    cpu_seconds_per_task: cpu_per_task(
                        input_bytes,
                        partitions,
                        profile.cpu_intensity * 0.5,
                    ),
                    shuffle_read_bytes: 0.0,
                    shuffle_write_bytes: input_bytes * 0.5,
                    memory_per_task_bytes: mem_per_task(input_bytes, partitions),
                    skew: profile.skew,
                });
                // Iterations: each exchanges rank contributions (a fraction of
                // the edge data) and updates ranks.
                let per_iter_bytes =
                    input_bytes * profile.network_intensity / profile.iterations as f64 * 1.6;
                for iter in 0..profile.iterations {
                    let id = stages.len();
                    stages.push(StageSpec {
                        id,
                        name: format!("pagerank-iter-{}", iter + 1),
                        parents: vec![id - 1],
                        tasks: partitions,
                        cpu_seconds_per_task: cpu_per_task(
                            input_bytes,
                            partitions,
                            profile.cpu_intensity / profile.iterations as f64 * 1.5,
                        ),
                        shuffle_read_bytes: per_iter_bytes,
                        shuffle_write_bytes: if iter + 1 == profile.iterations {
                            0.0
                        } else {
                            per_iter_bytes
                        },
                        memory_per_task_bytes: mem_per_task(input_bytes, partitions),
                        skew: profile.skew,
                    });
                }
            }
            WorkloadKind::Join => {
                // Stage 0/1: scan the two tables (the build side is ~40% of the input).
                let left_bytes = input_bytes * 0.6;
                let right_bytes = input_bytes * 0.4;
                stages.push(StageSpec {
                    id: 0,
                    name: "join-scan-left".into(),
                    parents: vec![],
                    tasks: partitions,
                    cpu_seconds_per_task: cpu_per_task(
                        left_bytes,
                        partitions,
                        profile.cpu_intensity * 0.5,
                    ),
                    shuffle_read_bytes: 0.0,
                    shuffle_write_bytes: left_bytes * profile.network_intensity,
                    memory_per_task_bytes: mem_per_task(left_bytes, partitions),
                    skew: 0.05,
                });
                stages.push(StageSpec {
                    id: 1,
                    name: "join-scan-right".into(),
                    parents: vec![],
                    tasks: partitions,
                    cpu_seconds_per_task: cpu_per_task(
                        right_bytes,
                        partitions,
                        profile.cpu_intensity * 0.5,
                    ),
                    shuffle_read_bytes: 0.0,
                    shuffle_write_bytes: right_bytes * profile.network_intensity,
                    memory_per_task_bytes: mem_per_task(right_bytes, partitions),
                    skew: 0.05,
                });
                // Stage 2: shuffled hash join with key skew.
                stages.push(StageSpec {
                    id: 2,
                    name: "join-probe".into(),
                    parents: vec![0, 1],
                    tasks: partitions,
                    cpu_seconds_per_task: cpu_per_task(
                        input_bytes,
                        partitions,
                        profile.cpu_intensity,
                    ),
                    shuffle_read_bytes: (left_bytes + right_bytes) * profile.network_intensity,
                    shuffle_write_bytes: 0.0,
                    memory_per_task_bytes: mem_per_task(input_bytes, partitions) * 1.5,
                    skew: profile.skew,
                });
            }
            WorkloadKind::GroupBy => {
                stages.push(StageSpec {
                    id: 0,
                    name: "groupby-map".into(),
                    parents: vec![],
                    tasks: partitions,
                    cpu_seconds_per_task: cpu_per_task(
                        input_bytes,
                        partitions,
                        profile.cpu_intensity * 0.7,
                    ),
                    shuffle_read_bytes: 0.0,
                    shuffle_write_bytes: input_bytes * profile.network_intensity,
                    memory_per_task_bytes: mem_per_task(input_bytes, partitions),
                    skew: profile.skew,
                });
                stages.push(StageSpec {
                    id: 1,
                    name: "groupby-reduce".into(),
                    parents: vec![0],
                    tasks: partitions,
                    cpu_seconds_per_task: cpu_per_task(
                        input_bytes * 0.5,
                        partitions,
                        profile.cpu_intensity,
                    ),
                    shuffle_read_bytes: input_bytes * profile.network_intensity,
                    shuffle_write_bytes: 0.0,
                    memory_per_task_bytes: mem_per_task(input_bytes * 0.5, partitions),
                    skew: profile.skew,
                });
            }
            WorkloadKind::WordCount => {
                stages.push(StageSpec {
                    id: 0,
                    name: "wordcount-map".into(),
                    parents: vec![],
                    tasks: partitions,
                    cpu_seconds_per_task: cpu_per_task(
                        input_bytes,
                        partitions,
                        profile.cpu_intensity,
                    ),
                    shuffle_read_bytes: 0.0,
                    shuffle_write_bytes: input_bytes * profile.network_intensity,
                    memory_per_task_bytes: mem_per_task(input_bytes * 0.3, partitions),
                    skew: profile.skew,
                });
                stages.push(StageSpec {
                    id: 1,
                    name: "wordcount-reduce".into(),
                    parents: vec![0],
                    tasks: partitions.clamp(1, 4),
                    cpu_seconds_per_task: cpu_per_task(
                        input_bytes * 0.1,
                        partitions.clamp(1, 4),
                        profile.cpu_intensity,
                    ),
                    shuffle_read_bytes: input_bytes * profile.network_intensity,
                    shuffle_write_bytes: 0.0,
                    memory_per_task_bytes: 32e6,
                    skew: profile.skew,
                });
            }
        }

        // Driver-side work: query planning, task-result deserialization and
        // final aggregation. Result handling grows with the input volume, so
        // CPU pressure on the driver's host is a real completion-time factor.
        let driver_cpu_seconds = 2.0 + 0.06 * input_mb + 0.3 * stages.len() as f64;
        // Result sizes: the driver collects a material fraction of the output
        // (Spark `collect`/`take` of result samples, job metrics and, for the
        // join, the materialized result partition headed back to the client).
        // This is what makes the driver's network position a first-order
        // factor in completion time, as the paper observes.
        let result_fraction = match self.kind {
            WorkloadKind::Sort => 0.12,
            WorkloadKind::PageRank => 0.06,
            WorkloadKind::Join => 0.20,
            WorkloadKind::GroupBy => 0.03,
            WorkloadKind::WordCount => 0.005,
        };
        JobDag {
            stages,
            result_bytes_to_driver: (input_bytes * result_fraction).max(64_000.0),
            driver_cpu_seconds,
            startup_seconds: 4.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_parsing_roundtrips() {
        for kind in WorkloadKind::ALL {
            let parsed: WorkloadKind = kind.as_str().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert_eq!(
            "PageRank".parse::<WorkloadKind>().unwrap(),
            WorkloadKind::PageRank
        );
        assert_eq!(
            "group-by".parse::<WorkloadKind>().unwrap(),
            WorkloadKind::GroupBy
        );
        assert!("tensor".parse::<WorkloadKind>().is_err());
        assert_eq!(format!("{}", WorkloadKind::Join), "join");
    }

    #[test]
    fn codes_are_distinct() {
        let codes: std::collections::BTreeSet<usize> =
            WorkloadKind::ALL.iter().map(|k| k.code()).collect();
        assert_eq!(codes.len(), WorkloadKind::ALL.len());
        assert_eq!(WorkloadKind::PAPER_SET.len(), 3);
    }

    #[test]
    fn profiles_match_table2_ordering() {
        // Sort and PageRank are the most network-intensive; Join is the most
        // memory-intensive and most skewed — that is the Table 2 story.
        let sort = WorkloadKind::Sort.profile();
        let pagerank = WorkloadKind::PageRank.profile();
        let join = WorkloadKind::Join.profile();
        let wordcount = WorkloadKind::WordCount.profile();
        assert!(sort.network_intensity >= pagerank.network_intensity);
        assert!(pagerank.network_intensity > join.network_intensity);
        assert!(join.memory_intensity > sort.memory_intensity);
        assert!(join.skew > sort.skew);
        assert!(wordcount.network_intensity < 0.2);
        assert!(pagerank.iterations > 1);
    }

    #[test]
    fn request_builders_and_input_bytes() {
        let req = WorkloadRequest::new(WorkloadKind::Sort, 100_000)
            .with_executors(3)
            .with_executor_memory(2 * 1024 * 1024 * 1024)
            .with_executor_cores(2)
            .with_shuffle_partitions(16);
        assert_eq!(req.executor_count, 3);
        assert_eq!(req.executor_cores, 2);
        assert_eq!(req.shuffle_partitions, 16);
        assert_eq!(req.input_bytes(), 10_000_000.0);
        // Zero values clamp to 1.
        let clamped = WorkloadRequest::new(WorkloadKind::Sort, 10)
            .with_executors(0)
            .with_executor_cores(0)
            .with_shuffle_partitions(0);
        assert_eq!(clamped.executor_count, 1);
        assert_eq!(clamped.executor_cores, 1);
        assert_eq!(clamped.shuffle_partitions, 1);
    }

    #[test]
    fn dags_validate_for_all_workloads_and_sizes() {
        for kind in WorkloadKind::ALL {
            for records in [1_000u64, 100_000, 5_000_000] {
                let dag = WorkloadRequest::new(kind, records).build_dag();
                dag.validate().unwrap_or_else(|e| panic!("{kind}: {e}"));
                assert!(dag.total_cpu_seconds() > 0.0);
                assert!(dag.result_bytes_to_driver > 0.0);
                assert!(dag.driver_cpu_seconds > 0.0);
            }
        }
    }

    #[test]
    fn sort_shuffles_roughly_the_input_volume() {
        let req = WorkloadRequest::new(WorkloadKind::Sort, 1_000_000); // 100 MB
        let dag = req.build_dag();
        let shuffle = dag.total_shuffle_bytes();
        assert!(
            shuffle >= 0.9 * req.input_bytes(),
            "sort must shuffle ~all input, got {shuffle}"
        );
        assert_eq!(dag.stage_count(), 2);
    }

    #[test]
    fn pagerank_has_iterative_structure() {
        let dag = WorkloadRequest::new(WorkloadKind::PageRank, 1_000_000).build_dag();
        assert_eq!(dag.stage_count(), 1 + 5);
        // Chain: each iteration depends on the previous stage.
        for (i, stage) in dag.stages.iter().enumerate().skip(1) {
            assert_eq!(stage.parents, vec![i - 1]);
        }
    }

    #[test]
    fn join_is_skewed_and_memory_heavy() {
        let req = WorkloadRequest::new(WorkloadKind::Join, 1_000_000);
        let join_dag = req.build_dag();
        let sort_dag = WorkloadRequest::new(WorkloadKind::Sort, 1_000_000).build_dag();
        assert_eq!(join_dag.stage_count(), 3);
        assert_eq!(join_dag.stages[2].parents, vec![0, 1]);
        assert!(join_dag.stages[2].skew > sort_dag.stages[1].skew);
        assert!(join_dag.peak_memory_per_task() > sort_dag.peak_memory_per_task());
    }

    #[test]
    fn groupby_shuffles_less_than_sort() {
        let groupby = WorkloadRequest::new(WorkloadKind::GroupBy, 1_000_000).build_dag();
        let sort = WorkloadRequest::new(WorkloadKind::Sort, 1_000_000).build_dag();
        assert!(groupby.total_shuffle_bytes() < sort.total_shuffle_bytes());
        let wordcount = WorkloadRequest::new(WorkloadKind::WordCount, 1_000_000).build_dag();
        assert!(wordcount.total_shuffle_bytes() < groupby.total_shuffle_bytes());
    }

    #[test]
    fn larger_inputs_mean_more_work() {
        let small = WorkloadRequest::new(WorkloadKind::Sort, 100_000).build_dag();
        let large = WorkloadRequest::new(WorkloadKind::Sort, 1_000_000).build_dag();
        assert!(large.total_cpu_seconds() > small.total_cpu_seconds());
        assert!(large.total_shuffle_bytes() > small.total_shuffle_bytes());
        assert!(large.result_bytes_to_driver > small.result_bytes_to_driver);
    }
}
