//! # sparksim — a Spark-like data-processing application model
//!
//! The paper evaluates its scheduler with three Spark workloads (Table 2):
//! **Sort** (high network and CPU from large shuffles), **PageRank** (iterative
//! data exchange) and **Join** (skewed network/CPU/memory from imbalanced
//! joins). Each job launches a driver pod on the scheduler-selected node and
//! executor pods placed by the default scheduler; job completion time is the
//! prediction target of the supervised model.
//!
//! This crate models those applications at the stage level:
//!
//! * [`workload`] — the workload catalogue: for a given application type,
//!   input size, shuffle partition count and executor count it produces a
//!   stage DAG with CPU work, shuffle volumes, memory footprints and skew.
//! * [`dag`] — the stage DAG representation ([`dag::JobDag`], [`dag::StageSpec`])
//!   with validation and aggregate statistics.
//! * [`mix`] — workload-mix generators (shuffle-heavy, input-fetch-heavy,
//!   mixed DAG sizes, bursty arrivals) for the scenario-matrix sweep.
//! * [`placement`] — where the driver and each executor run.
//! * [`engine`] — the execution engine: walks the DAG stage by stage, runs
//!   compute on the executors (slowed by host CPU contention), moves shuffle
//!   data and driver-bound results through the `simnet` fluid network (sharing
//!   bandwidth with background traffic), and reports per-stage and end-to-end
//!   completion times.
//!
//! The engine is deliberately driver-placement-sensitive in the same ways a
//! real Spark deployment is: per-wave driver↔executor control round-trips pay
//! the driver's RTT to its executors, results are collected onto the driver's
//! node, the driver's own work is slowed by CPU contention on its host, and
//! memory pressure causes spill — which is exactly the signal the supervised
//! scheduler has to learn from telemetry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dag;
pub mod engine;
pub mod mix;
pub mod placement;
pub mod workload;

pub use dag::{JobDag, StageSpec};
pub use engine::{ContentionDriver, ExecutionConfig, JobRunResult, NoContention, StageResult};
pub use mix::{GeneratedJob, MixKind, WorkloadMixSpec};
pub use placement::Placement;
pub use workload::{WorkloadKind, WorkloadProfile, WorkloadRequest};
