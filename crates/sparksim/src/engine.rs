//! The job execution engine.
//!
//! Walks a [`JobDag`] stage by stage against the fluid network, producing the
//! job completion time that serves as the supervised model's training label.
//!
//! The model is intentionally simple but captures every effect the paper's
//! scheduler must learn:
//!
//! * **Driver control overhead** — each wave of tasks costs a few round trips
//!   between the driver and its executors, so a driver placed behind a
//!   high-RTT or congested path slows every stage down.
//! * **Shuffle transfers** — stage inputs move all-to-all between executor
//!   nodes through `simnet`, sharing bandwidth max-min-fairly with background
//!   traffic; congested or low-bandwidth paths stretch shuffle time.
//! * **CPU contention** — compute time is inflated by the host's load average
//!   (base load + background pods + co-located pods).
//! * **Memory pressure** — when a stage's per-task footprint exceeds the
//!   executor memory slot, the stage spills and pays a time penalty.
//! * **Result collection** — final results flow from the executors to the
//!   driver's node, so an ingress-congested driver node delays completion.
//!
//! Background traffic keeps flowing while the job runs: the engine hands
//! control to a [`ContentionDriver`] before every network advance so the
//! experiment harness can keep injecting the paper's curl-loop transfers.

use crate::dag::JobDag;
use crate::placement::Placement;
use crate::workload::WorkloadRequest;
use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimTime};
use simnet::flow::FlowKind;
use simnet::{FlowId, Network, NodeId};

/// Hook that lets the experiment harness keep background traffic alive while
/// a job executes.
pub trait ContentionDriver {
    /// Inject any transfers due at or before `now` and return the next time
    /// this driver needs to act (or `None` when it has nothing scheduled).
    fn poll(&mut self, network: &mut Network, now: SimTime) -> Option<SimTime>;
}

/// A contention driver that never injects anything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoContention;

impl ContentionDriver for NoContention {
    fn poll(&mut self, _network: &mut Network, _now: SimTime) -> Option<SimTime> {
        None
    }
}

/// Tunable constants of the execution model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecutionConfig {
    /// Compute slowdown per unit of competing host load average.
    pub contention_alpha: f64,
    /// Driver↔executor round trips per task wave.
    pub control_rtts_per_wave: f64,
    /// Round trips paid per executor during startup/registration.
    pub startup_rtts_per_executor: f64,
    /// Multiplicative time penalty when a stage spills to disk.
    pub spill_penalty: f64,
    /// Fraction of a node's cores assumed available to Spark tasks.
    pub usable_core_fraction: f64,
    /// Hard cap on how long a single job may run (guards runaway scenarios).
    pub max_job_duration: SimDuration,
}

impl Default for ExecutionConfig {
    fn default() -> Self {
        ExecutionConfig {
            contention_alpha: 0.12,
            control_rtts_per_wave: 3.0,
            startup_rtts_per_executor: 4.0,
            spill_penalty: 0.5,
            usable_core_fraction: 1.0,
            max_job_duration: SimDuration::from_secs(24 * 3600),
        }
    }
}

/// Timing breakdown of one executed stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageResult {
    /// Stage id.
    pub stage_id: usize,
    /// Stage name.
    pub name: String,
    /// Seconds spent in driver↔executor control traffic.
    pub control_seconds: f64,
    /// Seconds spent fetching shuffle input.
    pub shuffle_seconds: f64,
    /// Seconds spent computing.
    pub compute_seconds: f64,
    /// Whether the stage spilled to disk.
    pub spilled: bool,
}

impl StageResult {
    /// Total stage wall-clock time.
    pub fn total_seconds(&self) -> f64 {
        self.control_seconds + self.shuffle_seconds + self.compute_seconds
    }
}

/// Result of one job execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRunResult {
    /// Wall-clock duration from submission to completion.
    pub completion: SimDuration,
    /// Absolute time at which the job finished.
    pub finished_at: SimTime,
    /// Per-stage breakdown.
    pub stages: Vec<StageResult>,
    /// Seconds spent collecting results onto the driver.
    pub result_collection_seconds: f64,
    /// Seconds of driver-side computation.
    pub driver_compute_seconds: f64,
    /// Seconds of fixed startup overhead (including executor registration).
    pub startup_seconds: f64,
    /// Total bytes shuffled over the network.
    pub shuffle_bytes: f64,
    /// Number of stages that spilled.
    pub spill_count: u32,
}

impl JobRunResult {
    /// Completion time in seconds (the training label of the paper's model).
    pub fn completion_seconds(&self) -> f64 {
        self.completion.as_secs_f64()
    }
}

/// Advance the network to `target` while letting the contention driver keep
/// injecting background transfers.
fn advance_with_contention(
    network: &mut Network,
    contention: &mut dyn ContentionDriver,
    target: SimTime,
) {
    loop {
        let now = network.now();
        if now >= target {
            break;
        }
        let next_bg = contention.poll(network, now);
        let step = match next_bg {
            Some(t) if t > now && t < target => t,
            _ => target,
        };
        network.advance_to(step);
        // Guard against a driver that keeps returning the same past time.
        if network.now() <= now {
            network.advance_to(target);
            break;
        }
    }
    // Let the driver catch up at the target instant as well.
    let now = network.now();
    contention.poll(network, now);
}

/// Advance the network until every flow in `flows` has completed (or the
/// deadline passes), returning the completion instant.
fn wait_for_flows(
    network: &mut Network,
    contention: &mut dyn ContentionDriver,
    flows: &[FlowId],
    deadline: SimTime,
) -> SimTime {
    loop {
        let all_done = flows
            .iter()
            .all(|id| network.flow(*id).map(|f| !f.is_active()).unwrap_or(true));
        if all_done {
            return network.now();
        }
        let now = network.now();
        if now >= deadline {
            return now;
        }
        let next_bg = contention.poll(network, now);
        let next_done = network.next_completion();
        let mut target = deadline;
        if let Some(t) = next_done {
            target = target.min(t);
        }
        if let Some(t) = next_bg {
            if t > now {
                target = target.min(t);
            }
        }
        if target <= now {
            // No progress possible (should not happen); bail out at deadline.
            network.advance_to(deadline);
            return network.now();
        }
        network.advance_to(target);
    }
}

/// Compute-slowdown factor for a node with the given competing load average.
fn slowdown(load: f64, alpha: f64) -> f64 {
    1.0 + alpha * load.max(0.0)
}

/// Mean current RTT (seconds) between the driver node and the executor nodes.
fn mean_driver_rtt(network: &Network, driver: NodeId, executors: &[NodeId]) -> f64 {
    if executors.is_empty() {
        return 0.0005;
    }
    let total: f64 = executors
        .iter()
        .map(|&e| {
            network
                .current_rtt(driver, e, driver.0 as u64 ^ (e.0 as u64).rotate_left(17))
                .as_secs_f64()
        })
        .sum();
    total / executors.len() as f64
}

/// Execute a job and return its timing breakdown.
///
/// * `dag` — the stage DAG (from [`WorkloadRequest::build_dag`]).
/// * `request` — executor sizing (cores, memory) used for waves and spill.
/// * `placement` — driver node + executor nodes.
/// * `node_cpu_load` — competing load average per node at execution time
///   (baseline + background + co-located pods), used for compute slowdown.
/// * `contention` — keeps background traffic flowing during the run.
/// * `start` — submission time; the network is advanced from here.
#[allow(clippy::too_many_arguments)]
pub fn execute_job(
    dag: &JobDag,
    request: &WorkloadRequest,
    placement: &Placement,
    network: &mut Network,
    node_cpu_load: &dyn Fn(NodeId) -> f64,
    contention: &mut dyn ContentionDriver,
    start: SimTime,
    config: &ExecutionConfig,
) -> JobRunResult {
    debug_assert!(dag.validate().is_ok(), "DAG must be valid");
    let deadline = start + config.max_job_duration;
    // Make sure the network clock is at least at the start time.
    if network.now() < start {
        advance_with_contention(network, contention, start);
    }

    let executors: Vec<NodeId> = if placement.executor_nodes.is_empty() {
        vec![placement.driver_node]
    } else {
        placement.executor_nodes.clone()
    };
    let n_exec = executors.len();
    let cores_per_executor =
        (request.executor_cores as f64 * config.usable_core_fraction).max(0.25);
    let total_cores = cores_per_executor * n_exec as f64;
    let memory_per_slot =
        request.executor_memory_bytes as f64 / request.executor_cores.max(1) as f64;

    // --- Startup: container launch + executor registration round trips. ---
    let rtt = mean_driver_rtt(network, placement.driver_node, &executors);
    let startup_seconds = dag.startup_seconds
        + config.startup_rtts_per_executor * rtt * n_exec as f64
        + 0.2
            * slowdown(
                node_cpu_load(placement.driver_node),
                config.contention_alpha,
            );
    advance_with_contention(
        network,
        contention,
        (network.now() + SimDuration::from_secs_f64(startup_seconds)).min(deadline),
    );

    let mut stage_results = Vec::with_capacity(dag.stages.len());
    let mut shuffle_bytes_total = 0.0;
    let mut spill_count = 0u32;

    for stage in &dag.stages {
        // --- Control: task dispatch round trips per wave. ---
        let waves = (stage.tasks as f64 / total_cores).ceil().max(1.0);
        let rtt = mean_driver_rtt(network, placement.driver_node, &executors);
        let control_seconds = waves * config.control_rtts_per_wave * rtt;
        let t_control_start = network.now();
        advance_with_contention(
            network,
            contention,
            (t_control_start + SimDuration::from_secs_f64(control_seconds)).min(deadline),
        );

        // --- Spill check. ---
        let spilled = stage.memory_per_task_bytes > memory_per_slot;
        if spilled {
            spill_count += 1;
        }
        let spill_factor = if spilled {
            1.0 + config.spill_penalty
        } else {
            1.0
        };

        // --- Shuffle read: all-to-all between executor nodes. ---
        let t_shuffle_start = network.now();
        let mut shuffle_seconds = 0.0;
        if stage.has_shuffle_input() && stage.shuffle_read_bytes > 0.0 {
            shuffle_bytes_total += stage.shuffle_read_bytes;
            let pair_count = (n_exec * n_exec) as f64;
            let base_bytes = stage.shuffle_read_bytes / pair_count;
            let mut flows: Vec<FlowId> = Vec::with_capacity(n_exec * n_exec);
            for (di, &dst) in executors.iter().enumerate() {
                // Skew concentrates extra bytes on the first executor's partition.
                let dst_factor = if di == 0 {
                    1.0 + stage.skew * (n_exec as f64 - 1.0)
                } else {
                    1.0 - stage.skew
                };
                for &src in executors.iter() {
                    if src == dst {
                        continue; // node-local shuffle data does not cross the network
                    }
                    let bytes = (base_bytes * dst_factor * spill_factor).max(1.0);
                    flows.push(network.start_flow(src, dst, bytes, FlowKind::Shuffle));
                }
            }
            if !flows.is_empty() {
                wait_for_flows(network, contention, &flows, deadline);
            }
            shuffle_seconds = (network.now() - t_shuffle_start).as_secs_f64();
        }

        // --- Compute: tasks spread over executors, slowed by host load. ---
        let total_work = stage.total_cpu_seconds() * spill_factor;
        let straggler_share = (1.0 - stage.skew) / n_exec as f64 + stage.skew;
        let mut compute_seconds: f64 = 0.0;
        for (i, &node) in executors.iter().enumerate() {
            let share = if i == 0 {
                straggler_share
            } else {
                (1.0 - straggler_share) / (n_exec as f64 - 1.0).max(1.0)
            };
            let work = total_work * share;
            let time =
                work / cores_per_executor * slowdown(node_cpu_load(node), config.contention_alpha);
            compute_seconds = compute_seconds.max(time);
        }
        let t_compute_start = network.now();
        advance_with_contention(
            network,
            contention,
            (t_compute_start + SimDuration::from_secs_f64(compute_seconds)).min(deadline),
        );

        stage_results.push(StageResult {
            stage_id: stage.id,
            name: stage.name.clone(),
            control_seconds,
            shuffle_seconds,
            compute_seconds,
            spilled,
        });
    }

    // --- Result collection onto the driver node. ---
    let t_results_start = network.now();
    let mut result_flows = Vec::with_capacity(n_exec);
    let bytes_per_exec = dag.result_bytes_to_driver / n_exec as f64;
    for &src in &executors {
        if src == placement.driver_node {
            continue;
        }
        result_flows.push(network.start_flow(
            src,
            placement.driver_node,
            bytes_per_exec.max(1.0),
            FlowKind::Output,
        ));
    }
    if !result_flows.is_empty() {
        wait_for_flows(network, contention, &result_flows, deadline);
    }
    let result_collection_seconds = (network.now() - t_results_start).as_secs_f64();

    // --- Driver-side aggregation. ---
    let driver_compute_seconds = dag.driver_cpu_seconds
        * slowdown(
            node_cpu_load(placement.driver_node),
            config.contention_alpha,
        );
    advance_with_contention(
        network,
        contention,
        (network.now() + SimDuration::from_secs_f64(driver_compute_seconds)).min(deadline),
    );

    let finished_at = network.now();
    JobRunResult {
        completion: finished_at - start,
        finished_at,
        stages: stage_results,
        result_collection_seconds,
        driver_compute_seconds,
        startup_seconds,
        shuffle_bytes: shuffle_bytes_total,
        spill_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{WorkloadKind, WorkloadRequest};
    use simnet::{gbps, mbps, TopologyBuilder};

    /// 2 sites x 3 nodes, asymmetric WAN.
    fn network() -> Network {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_site("UCSD", SimDuration::from_micros(200), gbps(10.0));
        let s1 = b.add_site("FIU", SimDuration::from_micros(200), gbps(10.0));
        b.add_node("node-1", s0, gbps(1.0), gbps(1.0));
        b.add_node("node-2", s0, gbps(1.0), gbps(1.0));
        b.add_node("node-3", s0, gbps(1.0), gbps(1.0));
        b.add_node("node-4", s1, gbps(1.0), gbps(1.0));
        b.add_node("node-5", s1, gbps(1.0), gbps(1.0));
        b.add_node("node-6", s1, gbps(1.0), gbps(1.0));
        b.connect_sites(s0, s1, SimDuration::from_millis(33), mbps(400.0));
        Network::new(b.build().unwrap())
    }

    fn run(
        kind: WorkloadKind,
        records: u64,
        driver: usize,
        executors: &[usize],
        net: &mut Network,
        load: impl Fn(NodeId) -> f64,
        start: SimTime,
    ) -> JobRunResult {
        let request = WorkloadRequest::new(kind, records).with_executors(executors.len() as u32);
        let dag = request.build_dag();
        let placement = Placement::new(
            NodeId(driver),
            executors.iter().map(|&i| NodeId(i)).collect(),
        );
        execute_job(
            &dag,
            &request,
            &placement,
            net,
            &load,
            &mut NoContention,
            start,
            &ExecutionConfig::default(),
        )
    }

    #[test]
    fn job_completes_with_positive_duration_and_stage_breakdown() {
        let mut net = network();
        let result = run(
            WorkloadKind::Sort,
            200_000,
            0,
            &[1, 3],
            &mut net,
            |_| 0.2,
            SimTime::ZERO,
        );
        assert!(result.completion_seconds() > 0.0);
        assert_eq!(result.stages.len(), 2);
        assert!(
            result.stages[1].shuffle_seconds > 0.0,
            "sort reduce must shuffle"
        );
        assert!(result.stages.iter().all(|s| s.compute_seconds > 0.0));
        assert!(result.shuffle_bytes > 0.0);
        assert!(result.startup_seconds > 0.0);
        assert_eq!(result.finished_at, SimTime::ZERO + result.completion);
        assert!(result.result_collection_seconds >= 0.0);
        let total_from_parts: f64 = result.stages.iter().map(|s| s.total_seconds()).sum::<f64>()
            + result.startup_seconds
            + result.result_collection_seconds
            + result.driver_compute_seconds;
        // The parts should approximately add up to the completion time.
        assert!((total_from_parts - result.completion_seconds()).abs() < 1.0);
    }

    #[test]
    fn bigger_inputs_take_longer() {
        let mut net1 = network();
        let small = run(
            WorkloadKind::Sort,
            100_000,
            0,
            &[1, 3],
            &mut net1,
            |_| 0.2,
            SimTime::ZERO,
        );
        let mut net2 = network();
        let large = run(
            WorkloadKind::Sort,
            1_000_000,
            0,
            &[1, 3],
            &mut net2,
            |_| 0.2,
            SimTime::ZERO,
        );
        assert!(large.completion_seconds() > small.completion_seconds());
    }

    #[test]
    fn cpu_contention_on_executor_nodes_slows_the_job() {
        let mut quiet_net = network();
        let quiet = run(
            WorkloadKind::Sort,
            500_000,
            0,
            &[1, 3],
            &mut quiet_net,
            |_| 0.1,
            SimTime::ZERO,
        );
        let mut busy_net = network();
        let busy = run(
            WorkloadKind::Sort,
            500_000,
            0,
            &[1, 3],
            &mut busy_net,
            |n| if n == NodeId(1) { 6.0 } else { 0.1 },
            SimTime::ZERO,
        );
        assert!(busy.completion_seconds() > quiet.completion_seconds());
    }

    #[test]
    fn network_contention_on_driver_path_slows_the_job() {
        // Saturate the ingress of the driver candidate on node-4 (remote site)
        // with long-lived background flows, then compare result-collection against
        // a driver on the quiet site.
        let mut contended = network();
        for _ in 0..4 {
            contended.start_flow(NodeId(1), NodeId(3), 1e12, FlowKind::Background);
        }
        let slow = run(
            WorkloadKind::Join,
            800_000,
            3,
            &[1, 2],
            &mut contended,
            |_| 0.2,
            SimTime::ZERO,
        );

        let mut quiet = network();
        for _ in 0..4 {
            quiet.start_flow(NodeId(1), NodeId(3), 1e12, FlowKind::Background);
        }
        let fast = run(
            WorkloadKind::Join,
            800_000,
            2,
            &[1, 2],
            &mut quiet,
            |_| 0.2,
            SimTime::ZERO,
        );
        assert!(
            slow.completion_seconds() > fast.completion_seconds(),
            "driver behind congested WAN ({}) should be slower than local driver ({})",
            slow.completion_seconds(),
            fast.completion_seconds()
        );
    }

    #[test]
    fn spill_happens_with_tiny_executor_memory() {
        let mut net = network();
        let request = WorkloadRequest::new(WorkloadKind::Join, 2_000_000)
            .with_executors(2)
            .with_executor_memory(32 * 1024 * 1024); // far too small
        let dag = request.build_dag();
        let placement = Placement::new(NodeId(0), vec![NodeId(1), NodeId(3)]);
        let spilled = execute_job(
            &dag,
            &request,
            &placement,
            &mut net,
            &|_| 0.2,
            &mut NoContention,
            SimTime::ZERO,
            &ExecutionConfig::default(),
        );
        assert!(spilled.spill_count > 0);
        assert!(spilled.stages.iter().any(|s| s.spilled));

        let mut net2 = network();
        let roomy_request = WorkloadRequest::new(WorkloadKind::Join, 2_000_000)
            .with_executors(2)
            .with_executor_memory(8 * 1024 * 1024 * 1024);
        let roomy = execute_job(
            &roomy_request.build_dag(),
            &roomy_request,
            &Placement::new(NodeId(0), vec![NodeId(1), NodeId(3)]),
            &mut net2,
            &|_| 0.2,
            &mut NoContention,
            SimTime::ZERO,
            &ExecutionConfig::default(),
        );
        assert!(spilled.completion_seconds() > roomy.completion_seconds());
        assert_eq!(roomy.spill_count, 0);
    }

    #[test]
    fn more_executors_speed_up_cpu_bound_work() {
        let mut net1 = network();
        let two = run(
            WorkloadKind::WordCount,
            2_000_000,
            0,
            &[1, 2],
            &mut net1,
            |_| 0.2,
            SimTime::ZERO,
        );
        let mut net2 = network();
        let four = run(
            WorkloadKind::WordCount,
            2_000_000,
            0,
            &[1, 2, 4, 5],
            &mut net2,
            |_| 0.2,
            SimTime::ZERO,
        );
        assert!(four.completion_seconds() < two.completion_seconds());
    }

    #[test]
    fn starts_later_when_submitted_later() {
        let mut net = network();
        let start = SimTime::from_secs(100);
        let result = run(
            WorkloadKind::GroupBy,
            100_000,
            0,
            &[1, 3],
            &mut net,
            |_| 0.1,
            start,
        );
        assert!(result.finished_at > start);
        assert_eq!(result.finished_at - start, result.completion);
    }

    #[test]
    fn single_node_job_without_remote_executors_still_completes() {
        let mut net = network();
        let request = WorkloadRequest::new(WorkloadKind::Sort, 50_000).with_executors(1);
        let dag = request.build_dag();
        // Driver and the single executor share node-2: no WAN traffic at all.
        let placement = Placement::new(NodeId(1), vec![NodeId(1)]);
        let result = execute_job(
            &dag,
            &request,
            &placement,
            &mut net,
            &|_| 0.1,
            &mut NoContention,
            SimTime::ZERO,
            &ExecutionConfig::default(),
        );
        assert!(result.completion_seconds() > 0.0);
        assert_eq!(
            result.result_collection_seconds, 0.0,
            "driver-local results are free"
        );
        // Placement with no executors falls back to the driver node.
        let empty_placement = Placement::new(NodeId(1), vec![]);
        let mut net2 = network();
        let r2 = execute_job(
            &dag,
            &request,
            &empty_placement,
            &mut net2,
            &|_| 0.1,
            &mut NoContention,
            SimTime::ZERO,
            &ExecutionConfig::default(),
        );
        assert!(r2.completion_seconds() > 0.0);
    }

    #[test]
    fn contention_driver_is_polled_and_its_flows_share_bandwidth() {
        /// Injects one huge background flow at t=1s between the shuffle endpoints.
        struct OneShot {
            injected: bool,
        }
        impl ContentionDriver for OneShot {
            fn poll(&mut self, network: &mut Network, now: SimTime) -> Option<SimTime> {
                if !self.injected && now >= SimTime::from_secs(1) {
                    network.start_flow(NodeId(1), NodeId(3), 5e9, FlowKind::Background);
                    self.injected = true;
                    None
                } else if self.injected {
                    None
                } else {
                    Some(SimTime::from_secs(1))
                }
            }
        }
        let request = WorkloadRequest::new(WorkloadKind::Sort, 1_000_000).with_executors(2);
        let dag = request.build_dag();
        let placement = Placement::new(NodeId(0), vec![NodeId(1), NodeId(3)]);

        let mut quiet_net = network();
        let quiet = execute_job(
            &dag,
            &request,
            &placement,
            &mut quiet_net,
            &|_| 0.1,
            &mut NoContention,
            SimTime::ZERO,
            &ExecutionConfig::default(),
        );
        let mut busy_net = network();
        let mut driver = OneShot { injected: false };
        let busy = execute_job(
            &dag,
            &request,
            &placement,
            &mut busy_net,
            &|_| 0.1,
            &mut driver,
            SimTime::ZERO,
            &ExecutionConfig::default(),
        );
        assert!(driver.injected, "driver must have been polled past t=1s");
        assert!(
            busy.completion_seconds() > quiet.completion_seconds(),
            "background flow should slow the shuffle: busy {} vs quiet {}",
            busy.completion_seconds(),
            quiet.completion_seconds()
        );
    }

    #[test]
    fn deadline_caps_runaway_jobs() {
        let mut net = network();
        let request = WorkloadRequest::new(WorkloadKind::Sort, 50_000_000).with_executors(2);
        let dag = request.build_dag();
        let placement = Placement::new(NodeId(0), vec![NodeId(1), NodeId(3)]);
        let config = ExecutionConfig {
            max_job_duration: SimDuration::from_secs(10),
            ..Default::default()
        };
        let result = execute_job(
            &dag,
            &request,
            &placement,
            &mut net,
            &|_| 0.1,
            &mut NoContention,
            SimTime::ZERO,
            &config,
        );
        assert!(result.completion_seconds() <= 10.5);
    }

    #[test]
    fn slowdown_is_monotone_in_load() {
        assert!(slowdown(0.0, 0.12) <= slowdown(1.0, 0.12));
        assert!(slowdown(2.0, 0.12) < slowdown(6.0, 0.12));
        assert_eq!(slowdown(-5.0, 0.12), 1.0);
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let mut net1 = network();
        let a = run(
            WorkloadKind::PageRank,
            300_000,
            2,
            &[1, 4],
            &mut net1,
            |_| 0.3,
            SimTime::ZERO,
        );
        let mut net2 = network();
        let b = run(
            WorkloadKind::PageRank,
            300_000,
            2,
            &[1, 4],
            &mut net2,
            |_| 0.3,
            SimTime::ZERO,
        );
        assert_eq!(a, b);
    }
}
