//! Workload-mix generators.
//!
//! The paper's Section 5.2 matrix enumerates 60 fixed job configurations; the
//! scenario sweep instead wants *families* of workloads with a controlled
//! character, so a scheduler can be judged under shuffle-bound, ingest-bound,
//! structurally diverse and bursty regimes. A [`WorkloadMixSpec`] expands into
//! a deterministic list of [`GeneratedJob`]s given a seed:
//!
//! * [`MixKind::ShuffleHeavy`] — Sort/PageRank/Join with large inputs and
//!   generous partition counts: most bytes cross the network as shuffles.
//! * [`MixKind::InputFetchHeavy`] — Join/GroupBy/WordCount over big inputs
//!   with modest shuffles: the dominant transfers are the input scans and the
//!   result collection onto the driver (the model's "input fetch" analogue).
//! * [`MixKind::MixedDagSizes`] — all five workloads across wide input,
//!   executor and partition ranges, yielding DAGs from 2 to 6+ stages.
//! * [`MixKind::BurstyArrivals`] — paper workloads arriving in tight bursts
//!   separated by long idle gaps, so jobs land on a cluster whose telemetry
//!   is still transient.
//!
//! Generation is **deterministic in `(spec, seed)`**, which the scenario
//! sweep relies on for byte-identical reports.

use crate::workload::{WorkloadKind, WorkloadRequest};
use serde::{Deserialize, Serialize};
use simcore::rng::Rng;
use simcore::SimDuration;
use std::fmt;

/// A workload-mix family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MixKind {
    /// Network-bound: most input bytes are shuffled.
    ShuffleHeavy,
    /// Ingest/result-bound: large inputs, small shuffles, heavy driver collect.
    InputFetchHeavy,
    /// Structurally diverse DAGs across all workloads and sizes.
    MixedDagSizes,
    /// Paper workloads arriving in bursts.
    BurstyArrivals,
}

impl MixKind {
    /// Every mix family.
    pub const ALL: [MixKind; 4] = [
        MixKind::ShuffleHeavy,
        MixKind::InputFetchHeavy,
        MixKind::MixedDagSizes,
        MixKind::BurstyArrivals,
    ];

    /// Lower-case identifier used in cell names and reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            MixKind::ShuffleHeavy => "shuffle-heavy",
            MixKind::InputFetchHeavy => "input-fetch-heavy",
            MixKind::MixedDagSizes => "mixed-dag-sizes",
            MixKind::BurstyArrivals => "bursty-arrivals",
        }
    }
}

impl fmt::Display for MixKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One generated job: the request parameters plus its arrival offset within
/// the mix (offsets are what distinguish bursty from steady arrival shapes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratedJob {
    /// Dense index within the mix.
    pub index: usize,
    /// Workload type.
    pub kind: WorkloadKind,
    /// Input size in records.
    pub input_records: u64,
    /// Executor count.
    pub executor_count: u32,
    /// Executor memory in bytes.
    pub executor_memory_bytes: u64,
    /// Shuffle partition count.
    pub shuffle_partitions: u32,
    /// Arrival time relative to the first job of the mix.
    pub arrival_offset: SimDuration,
}

impl GeneratedJob {
    /// A descriptive name, e.g. `mix3-sort-250k`.
    pub fn name(&self) -> String {
        format!(
            "mix{}-{}-{}k",
            self.index,
            self.kind.as_str(),
            self.input_records / 1000
        )
    }

    /// Convert into a submission request.
    pub fn request(&self) -> WorkloadRequest {
        WorkloadRequest::new(self.kind, self.input_records)
            .with_executors(self.executor_count)
            .with_executor_memory(self.executor_memory_bytes)
            .with_executor_cores(1)
            .with_shuffle_partitions(self.shuffle_partitions)
    }
}

/// Declarative description of a workload mix: which family, how many jobs,
/// and a global input-size scale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadMixSpec {
    /// The mix family.
    pub kind: MixKind,
    /// Number of jobs to generate.
    pub jobs: usize,
    /// Multiplier applied to every drawn input size (1.0 = nominal).
    pub input_scale: f64,
}

impl WorkloadMixSpec {
    /// A mix of `jobs` jobs from `kind` at nominal input scale.
    pub fn new(kind: MixKind, jobs: usize) -> Self {
        WorkloadMixSpec {
            kind,
            jobs,
            input_scale: 1.0,
        }
    }

    /// Builder-style: scale every input size.
    pub fn with_input_scale(mut self, scale: f64) -> Self {
        self.input_scale = scale.max(0.01);
        self
    }

    /// Short name, e.g. `shuffle-heavy-5`.
    pub fn name(&self) -> String {
        format!("{}-{}", self.kind.as_str(), self.jobs)
    }

    /// Warm-up range (seconds) a scenario harness should settle the system
    /// for before snapshotting telemetry. Bursty mixes use a short, tight
    /// range so jobs observe the transient state their burst creates.
    pub fn warmup_seconds(&self) -> (f64, f64) {
        match self.kind {
            MixKind::BurstyArrivals => (2.0, 6.0),
            _ => (8.0, 20.0),
        }
    }

    /// Expand the spec into concrete jobs. Deterministic in `(self, seed)`.
    pub fn generate(&self, seed: u64) -> Vec<GeneratedJob> {
        let mut rng = Rng::seed_from_u64(seed ^ 0x4D49_585F_4A4F_4253); // "MIX_JOBS"
        let mut jobs = Vec::with_capacity(self.jobs);
        let mut arrival = SimDuration::ZERO;
        let mut burst_left = 0usize;
        for index in 0..self.jobs {
            let (kind, records, partitions) = match self.kind {
                MixKind::ShuffleHeavy => {
                    let kind = match rng.weighted_index(&[0.5, 0.3, 0.2]).unwrap_or(0) {
                        0 => WorkloadKind::Sort,
                        1 => WorkloadKind::PageRank,
                        _ => WorkloadKind::Join,
                    };
                    let records = rng.gen_range_usize(200_000, 1_000_001) as u64;
                    (kind, records, 8 + 4 * rng.gen_range_usize(0, 3) as u32)
                }
                MixKind::InputFetchHeavy => {
                    let kind = match rng.weighted_index(&[0.4, 0.3, 0.3]).unwrap_or(0) {
                        0 => WorkloadKind::Join,
                        1 => WorkloadKind::GroupBy,
                        _ => WorkloadKind::WordCount,
                    };
                    let records = rng.gen_range_usize(500_000, 2_000_001) as u64;
                    (kind, records, 4 + 2 * rng.gen_range_usize(0, 3) as u32)
                }
                MixKind::MixedDagSizes => {
                    let kind = WorkloadKind::ALL[rng.gen_range_usize(0, WorkloadKind::ALL.len())];
                    let records = rng.gen_range_usize(50_000, 1_500_001) as u64;
                    (kind, records, 2 + 2 * rng.gen_range_usize(0, 12) as u32)
                }
                MixKind::BurstyArrivals => {
                    let set = WorkloadKind::PAPER_SET;
                    let kind = set[rng.gen_range_usize(0, set.len())];
                    let records = rng.gen_range_usize(100_000, 800_001) as u64;
                    (kind, records, 8)
                }
            };
            // Arrival process: steady exponential gaps, except bursty mixes
            // which emit tight clusters separated by long idle stretches.
            if index > 0 {
                let gap = match self.kind {
                    MixKind::BurstyArrivals => {
                        if burst_left == 0 {
                            burst_left = rng.gen_range_usize(2, 5);
                            rng.uniform(60.0, 180.0)
                        } else {
                            rng.uniform(0.5, 2.0)
                        }
                    }
                    _ => rng.exponential(1.0 / 30.0).min(120.0),
                };
                burst_left = burst_left.saturating_sub(1);
                arrival += SimDuration::from_secs_f64(gap);
            }
            let records = ((records as f64 * self.input_scale) as u64).max(1_000);
            jobs.push(GeneratedJob {
                index,
                kind,
                input_records: records,
                executor_count: 2 + rng.gen_range_usize(0, 2) as u32,
                executor_memory_bytes: (1 + rng.gen_range_usize(0, 2) as u64) << 30,
                shuffle_partitions: partitions.max(1),
                arrival_offset: arrival,
            });
        }
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{execute_job, NoContention};
    use crate::placement::Placement;
    use crate::ExecutionConfig;
    use proptest::prelude::*;
    use simcore::SimTime;
    use simnet::{Network, NodeId, StarLanSpec, TopologySpec};

    fn specs(jobs: usize) -> Vec<WorkloadMixSpec> {
        MixKind::ALL
            .iter()
            .map(|&kind| WorkloadMixSpec::new(kind, jobs))
            .collect()
    }

    #[test]
    fn generation_is_deterministic_and_sized() {
        for spec in specs(6) {
            let a = spec.generate(99);
            let b = spec.generate(99);
            assert_eq!(a, b, "{} must be reproducible", spec.name());
            assert_eq!(a.len(), 6);
            let c = spec.generate(100);
            assert_ne!(a, c, "{} must respond to the seed", spec.name());
            // Arrival offsets are non-decreasing.
            for pair in a.windows(2) {
                assert!(pair[0].arrival_offset <= pair[1].arrival_offset);
            }
        }
    }

    #[test]
    fn mixes_have_their_advertised_character() {
        let shuffle_fraction = |spec: &WorkloadMixSpec| -> f64 {
            let jobs = spec.generate(7);
            let (mut shuffled, mut input) = (0.0, 0.0);
            for job in &jobs {
                let request = job.request();
                shuffled += request.build_dag().total_shuffle_bytes();
                input += request.input_bytes();
            }
            shuffled / input
        };
        let heavy = shuffle_fraction(&WorkloadMixSpec::new(MixKind::ShuffleHeavy, 12));
        let fetchy = shuffle_fraction(&WorkloadMixSpec::new(MixKind::InputFetchHeavy, 12));
        assert!(
            heavy > fetchy * 1.5,
            "shuffle-heavy ({heavy:.2}) must out-shuffle input-fetch-heavy ({fetchy:.2})"
        );
        // Bursty arrivals actually cluster: at least one sub-2.5s gap and one
        // 60s+ gap.
        let bursty = WorkloadMixSpec::new(MixKind::BurstyArrivals, 10).generate(5);
        let gaps: Vec<f64> = bursty
            .windows(2)
            .map(|w| (w[1].arrival_offset - w[0].arrival_offset).as_secs_f64())
            .collect();
        assert!(gaps.iter().any(|&g| g < 2.5), "gaps {gaps:?}");
        assert!(gaps.iter().any(|&g| g >= 60.0), "gaps {gaps:?}");
        // Mixed DAG sizes really vary the stage count.
        let mixed = WorkloadMixSpec::new(MixKind::MixedDagSizes, 16).generate(3);
        let stage_counts: std::collections::BTreeSet<usize> = mixed
            .iter()
            .map(|j| j.request().build_dag().stage_count())
            .collect();
        assert!(stage_counts.len() >= 2, "stage counts {stage_counts:?}");
    }

    #[test]
    fn input_scale_scales_inputs() {
        let base = WorkloadMixSpec::new(MixKind::ShuffleHeavy, 8);
        let scaled = base.clone().with_input_scale(2.0);
        let a = base.generate(1);
        let b = scaled.generate(1);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                y.input_records,
                ((x.input_records as f64 * 2.0) as u64).max(1_000)
            );
        }
    }

    #[test]
    fn warmup_hint_is_tight_for_bursts() {
        let bursty = WorkloadMixSpec::new(MixKind::BurstyArrivals, 4).warmup_seconds();
        let steady = WorkloadMixSpec::new(MixKind::ShuffleHeavy, 4).warmup_seconds();
        assert!(bursty.1 < steady.0 + steady.1);
        assert!(bursty.0 < steady.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Every generated job yields a valid (acyclic, topologically ordered)
        /// DAG whose per-stage shuffle reads are covered by its parents'
        /// writes, and the bytes a job moves are conserved across placements.
        #[test]
        fn generated_dags_are_acyclic_and_conserve_bytes(
            kind_idx in 0usize..4,
            jobs in 1usize..6,
            seed in 0u64..1_000_000,
            scale in 0.25f64..2.0,
        ) {
            let spec = WorkloadMixSpec::new(MixKind::ALL[kind_idx], jobs).with_input_scale(scale);
            let generated = spec.generate(seed);
            prop_assert_eq!(generated.len(), jobs);
            let topo = TopologySpec::StarLan(StarLanSpec { nodes: 4, ..Default::default() })
                .build(0)
                .expect("star LAN builds");
            for job in &generated {
                let dag = job.request().build_dag();
                // Acyclic + topologically ordered + non-empty stages.
                prop_assert!(dag.validate().is_ok(), "{}: {:?}", job.name(), dag.validate());
                prop_assert!(dag.shuffle_reads_covered(), "{} reads exceed writes", job.name());
                // Byte conservation across placements: the same DAG executed
                // under two different placements moves exactly the same
                // shuffle volume (placement shifts *where* bytes go, never how
                // many there are).
                let run = |driver: usize, execs: [usize; 2]| {
                    let mut network = Network::new(topo.clone());
                    let placement = Placement::new(
                        NodeId(driver),
                        vec![NodeId(execs[0]), NodeId(execs[1])],
                    );
                    execute_job(
                        &dag,
                        &job.request(),
                        &placement,
                        &mut network,
                        &|_| 0.0,
                        &mut NoContention,
                        SimTime::ZERO,
                        &ExecutionConfig::default(),
                    )
                };
                let a = run(0, [1, 2]);
                let b = run(3, [2, 0]);
                prop_assert!(a.completion_seconds() > 0.0);
                prop_assert!(
                    (a.shuffle_bytes - b.shuffle_bytes).abs() < 1.0,
                    "{}: {} vs {}",
                    job.name(),
                    a.shuffle_bytes,
                    b.shuffle_bytes
                );
            }
        }
    }
}
