//! Stage DAG representation.
//!
//! A job is a directed acyclic graph of stages. Each stage runs a number of
//! tasks, performs CPU work, optionally fetches shuffle data produced by its
//! parent stages, and produces output that either feeds later stages or is
//! returned to the driver.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One stage of a job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageSpec {
    /// Stage index within the job (also its id).
    pub id: usize,
    /// Human-readable name (`map`, `sort-reduce`, `pagerank-iter-2`...).
    pub name: String,
    /// Parent stage ids whose output this stage consumes.
    pub parents: Vec<usize>,
    /// Number of tasks in the stage.
    pub tasks: u32,
    /// CPU work per task, in core-seconds on an uncontended core.
    pub cpu_seconds_per_task: f64,
    /// Total bytes fetched over the network from parent stages (shuffle read).
    pub shuffle_read_bytes: f64,
    /// Total bytes this stage materializes for its children (shuffle write).
    pub shuffle_write_bytes: f64,
    /// Peak memory needed per task, in bytes (drives spill behaviour).
    pub memory_per_task_bytes: f64,
    /// Skew factor: fraction of the stage's work concentrated on the single
    /// most loaded task slot (0 = perfectly balanced, 0.5 = half the work on
    /// one straggler). Joins use a high value.
    pub skew: f64,
}

impl StageSpec {
    /// Total CPU work of the stage in core-seconds.
    pub fn total_cpu_seconds(&self) -> f64 {
        self.tasks as f64 * self.cpu_seconds_per_task
    }

    /// True when this stage reads a shuffle.
    pub fn has_shuffle_input(&self) -> bool {
        self.shuffle_read_bytes > 0.0 && !self.parents.is_empty()
    }
}

impl fmt::Display for StageSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stage {} [{}]: {} tasks, {:.1} core-s, shuffle {:.1} MB",
            self.id,
            self.name,
            self.tasks,
            self.total_cpu_seconds(),
            self.shuffle_read_bytes / 1e6
        )
    }
}

/// Errors raised by DAG validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// A stage references a parent with an id not smaller than its own.
    InvalidParent {
        /// The offending stage id.
        stage: usize,
        /// The invalid parent id it referenced.
        parent: usize,
    },
    /// The DAG has no stages.
    Empty,
    /// A stage has zero tasks.
    NoTasks(usize),
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::InvalidParent { stage, parent } => {
                write!(f, "stage {stage} references invalid parent {parent}")
            }
            DagError::Empty => write!(f, "job has no stages"),
            DagError::NoTasks(s) => write!(f, "stage {s} has zero tasks"),
        }
    }
}

impl std::error::Error for DagError {}

/// A whole job: its stages in topological order plus driver-side work.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobDag {
    /// Stages, listed in topological (execution) order: a stage's parents
    /// always have smaller ids.
    pub stages: Vec<StageSpec>,
    /// Bytes of result data collected onto the driver at the end of the job.
    pub result_bytes_to_driver: f64,
    /// CPU work performed by the driver itself (planning + final aggregation),
    /// in core-seconds.
    pub driver_cpu_seconds: f64,
    /// Fixed startup overhead (container start, JVM warmup) in seconds.
    pub startup_seconds: f64,
}

impl JobDag {
    /// Validate structural invariants: non-empty, topological parent order,
    /// every stage has at least one task.
    pub fn validate(&self) -> Result<(), DagError> {
        if self.stages.is_empty() {
            return Err(DagError::Empty);
        }
        for (i, stage) in self.stages.iter().enumerate() {
            if stage.tasks == 0 {
                return Err(DagError::NoTasks(i));
            }
            for &p in &stage.parents {
                if p >= i {
                    return Err(DagError::InvalidParent {
                        stage: i,
                        parent: p,
                    });
                }
            }
        }
        Ok(())
    }

    /// Total CPU work across all stages, in core-seconds.
    pub fn total_cpu_seconds(&self) -> f64 {
        self.stages.iter().map(StageSpec::total_cpu_seconds).sum()
    }

    /// Total bytes moved over the network for shuffles.
    pub fn total_shuffle_bytes(&self) -> f64 {
        self.stages.iter().map(|s| s.shuffle_read_bytes).sum()
    }

    /// Number of stages.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Peak per-task memory across stages.
    pub fn peak_memory_per_task(&self) -> f64 {
        self.stages
            .iter()
            .map(|s| s.memory_per_task_bytes)
            .fold(0.0, f64::max)
    }

    /// Byte-conservation invariant: no stage reads more shuffle data than its
    /// parents collectively wrote (a stage may read *less* — combiners and
    /// iterative exchanges legitimately drop bytes — but never more).
    pub fn shuffle_reads_covered(&self) -> bool {
        self.stages.iter().all(|stage| {
            if stage.parents.is_empty() {
                return stage.shuffle_read_bytes == 0.0;
            }
            let written: f64 = stage
                .parents
                .iter()
                .filter_map(|&p| self.stages.get(p))
                .map(|p| p.shuffle_write_bytes)
                .sum();
            stage.shuffle_read_bytes <= written * (1.0 + 1e-9)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(id: usize, parents: Vec<usize>, tasks: u32) -> StageSpec {
        StageSpec {
            id,
            name: format!("s{id}"),
            parents,
            tasks,
            cpu_seconds_per_task: 2.0,
            shuffle_read_bytes: if id > 0 { 1e6 } else { 0.0 },
            shuffle_write_bytes: 1e6,
            memory_per_task_bytes: 64e6,
            skew: 0.0,
        }
    }

    fn dag() -> JobDag {
        JobDag {
            stages: vec![stage(0, vec![], 8), stage(1, vec![0], 4)],
            result_bytes_to_driver: 1e5,
            driver_cpu_seconds: 1.0,
            startup_seconds: 3.0,
        }
    }

    #[test]
    fn valid_dag_passes() {
        assert!(dag().validate().is_ok());
    }

    #[test]
    fn empty_dag_is_invalid() {
        let d = JobDag {
            stages: vec![],
            result_bytes_to_driver: 0.0,
            driver_cpu_seconds: 0.0,
            startup_seconds: 0.0,
        };
        assert_eq!(d.validate(), Err(DagError::Empty));
    }

    #[test]
    fn forward_or_self_parent_is_invalid() {
        let mut d = dag();
        d.stages[0].parents = vec![1];
        assert_eq!(
            d.validate(),
            Err(DagError::InvalidParent {
                stage: 0,
                parent: 1
            })
        );
        let mut d2 = dag();
        d2.stages[1].parents = vec![1];
        assert!(matches!(d2.validate(), Err(DagError::InvalidParent { .. })));
    }

    #[test]
    fn zero_task_stage_is_invalid() {
        let mut d = dag();
        d.stages[1].tasks = 0;
        assert_eq!(d.validate(), Err(DagError::NoTasks(1)));
    }

    #[test]
    fn aggregates() {
        let d = dag();
        assert_eq!(d.stage_count(), 2);
        assert_eq!(d.total_cpu_seconds(), 8.0 * 2.0 + 4.0 * 2.0);
        assert_eq!(d.total_shuffle_bytes(), 1e6);
        assert_eq!(d.peak_memory_per_task(), 64e6);
        assert!(d.stages[1].has_shuffle_input());
        assert!(!d.stages[0].has_shuffle_input());
        assert_eq!(d.stages[0].total_cpu_seconds(), 16.0);
    }

    #[test]
    fn display_impls() {
        let s = stage(1, vec![0], 4);
        let text = format!("{s}");
        assert!(text.contains("stage 1"));
        assert!(text.contains("4 tasks"));
        assert!(format!("{}", DagError::Empty).contains("no stages"));
        assert!(format!("{}", DagError::NoTasks(3)).contains("stage 3"));
        assert!(format!(
            "{}",
            DagError::InvalidParent {
                stage: 2,
                parent: 5
            }
        )
        .contains("parent 5"));
    }
}
