//! Driver and executor placement.

use serde::{Deserialize, Serialize};
use simnet::NodeId;

/// Where the application's pods run.
///
/// The driver node is the decision under evaluation; executor nodes are chosen
/// by the default scheduler (the paper keeps executor placement fixed to the
/// default behaviour to isolate the driver-placement effect).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// The node hosting the driver pod.
    pub driver_node: NodeId,
    /// One entry per executor pod.
    pub executor_nodes: Vec<NodeId>,
}

impl Placement {
    /// Create a placement.
    pub fn new(driver_node: NodeId, executor_nodes: Vec<NodeId>) -> Self {
        Placement {
            driver_node,
            executor_nodes,
        }
    }

    /// Number of executors.
    pub fn executor_count(&self) -> usize {
        self.executor_nodes.len()
    }

    /// Distinct nodes hosting at least one executor, in first-seen order.
    pub fn distinct_executor_nodes(&self) -> Vec<NodeId> {
        let mut seen = Vec::new();
        for &n in &self.executor_nodes {
            if !seen.contains(&n) {
                seen.push(n);
            }
        }
        seen
    }

    /// Number of executors placed on `node`.
    pub fn executors_on(&self, node: NodeId) -> usize {
        self.executor_nodes.iter().filter(|&&n| n == node).count()
    }

    /// True when at least one executor shares the driver's node.
    pub fn driver_colocated_with_executor(&self) -> bool {
        self.executor_nodes.contains(&self.driver_node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let p = Placement::new(NodeId(2), vec![NodeId(0), NodeId(1), NodeId(0), NodeId(3)]);
        assert_eq!(p.executor_count(), 4);
        assert_eq!(
            p.distinct_executor_nodes(),
            vec![NodeId(0), NodeId(1), NodeId(3)]
        );
        assert_eq!(p.executors_on(NodeId(0)), 2);
        assert_eq!(p.executors_on(NodeId(5)), 0);
        assert!(!p.driver_colocated_with_executor());
        let colocated = Placement::new(NodeId(1), vec![NodeId(1), NodeId(2)]);
        assert!(colocated.driver_colocated_with_executor());
    }

    #[test]
    fn empty_executors() {
        let p = Placement::new(NodeId(0), vec![]);
        assert_eq!(p.executor_count(), 0);
        assert!(p.distinct_executor_nodes().is_empty());
        assert!(!p.driver_colocated_with_executor());
    }
}
