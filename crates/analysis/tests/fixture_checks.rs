//! End-to-end self-tests: run the full engine (walk → lex → scope → lint →
//! baseline) over the checked-in violation fixtures and assert that every
//! lint fires exactly where the fixtures say it should — and nowhere else.
//!
//! The fixtures live under `crates/analysis/fixtures/`, which the workspace
//! `lint.toml` excludes, so the real `check` run stays clean while these
//! tests exercise the same code path `cargo run -p analysis -- check` uses.

use analysis::config::Config;
use analysis::engine;
use analysis::lints::{ATOMICS, DETERMINISM, HOT_PATH, PANIC, UNSAFE_FORBID};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

/// A config that treats the fixtures directory as the whole workspace.
fn fixture_config() -> Config {
    Config::parse(
        r#"
[paths]
include = ["."]
# The call-graph fixtures have their own scan (tests/graph_checks.rs).
exclude = ["graph"]

[atomics]
protocol_files = ["protocol_pairing.rs"]

[hot_path]
functions = ["schedule_batch_into"]

[determinism]
modules = ["determinism_violation.rs"]
"#,
    )
    .expect("fixture config parses")
}

fn run_fixture_check() -> Vec<(String, u32, &'static str)> {
    let report = engine::check(&fixtures_root(), &fixture_config(), &BTreeSet::new())
        .expect("fixture scan succeeds");
    report
        .findings
        .into_iter()
        .map(|f| (f.file, f.line, f.lint))
        .collect()
}

fn of_lint<'r>(results: &'r [(String, u32, &'static str)], lint: &str) -> Vec<(&'r str, u32)> {
    results
        .iter()
        .filter(|(_, _, l)| *l == lint)
        .map(|(f, line, _)| (f.as_str(), *line))
        .collect()
}

#[test]
fn every_lint_fires_on_its_fixture_at_the_documented_lines() {
    let results = run_fixture_check();

    assert_eq!(
        of_lint(&results, ATOMICS),
        vec![
            ("atomics_violation.rs", 13),
            ("atomics_violation.rs", 17),
            ("protocol_pairing.rs", 9),
        ]
    );
    assert_eq!(
        of_lint(&results, HOT_PATH),
        vec![
            ("hot_path_violation.rs", 6),
            ("hot_path_violation.rs", 7),
            ("hot_path_violation.rs", 8),
            ("hot_path_violation.rs", 9),
            ("hot_path_violation.rs", 10),
            ("hot_path_violation.rs", 11),
        ]
    );
    assert_eq!(
        of_lint(&results, PANIC),
        vec![
            ("panic_violation.rs", 4),
            ("panic_violation.rs", 9),
            ("panic_violation.rs", 14),
        ]
    );
    assert_eq!(
        of_lint(&results, DETERMINISM),
        vec![
            ("determinism_violation.rs", 3),
            ("determinism_violation.rs", 3),
            ("determinism_violation.rs", 6),
            ("determinism_violation.rs", 9),
            ("determinism_violation.rs", 9),
            ("determinism_violation.rs", 10),
            ("determinism_violation.rs", 11),
        ]
    );
    assert_eq!(
        of_lint(&results, UNSAFE_FORBID),
        vec![("missing_forbid/src/lib.rs", 1)]
    );
}

#[test]
fn baseline_suppresses_by_line_agnostic_key() {
    let config = fixture_config();
    let full =
        engine::check(&fixtures_root(), &config, &BTreeSet::new()).expect("fixture scan succeeds");
    assert!(!full.findings.is_empty());

    // Baseline every finding by its key: the re-run must be clean and count
    // every suppression.
    let baseline: BTreeSet<String> = full.findings.iter().map(|f| f.baseline_key()).collect();
    let suppressed =
        engine::check(&fixtures_root(), &config, &baseline).expect("fixture scan succeeds");
    assert_eq!(suppressed.findings.len(), 0, "{:?}", suppressed.findings);
    assert_eq!(suppressed.suppressed, full.findings.len());
}

#[test]
fn workspace_check_is_clean_with_empty_baseline() {
    // The real workspace gate: lint.toml + empty baseline over the actual
    // tree must produce zero findings. This is the same invariant CI
    // enforces via `cargo run -p analysis -- check`.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let config_text = std::fs::read_to_string(root.join("lint.toml")).expect("lint.toml exists");
    let config = Config::parse(&config_text).expect("lint.toml parses");
    let baseline = engine::load_baseline(&root.join("lint.baseline")).expect("baseline loads");
    assert!(
        baseline.is_empty(),
        "the checked-in baseline must stay empty"
    );
    let report = engine::check(&root, &config, &baseline).expect("workspace scan succeeds");
    let rendered: Vec<String> = report.findings.iter().map(|f| f.render()).collect();
    assert!(
        rendered.is_empty(),
        "workspace must be lint-clean:\n{}",
        rendered.join("\n")
    );
    assert!(
        report.files_scanned > 80,
        "scanned {} files",
        report.files_scanned
    );
}
