//! End-to-end self-tests for the call-graph layer over the
//! `fixtures/graph` mini-workspace: exact expected edges for the
//! resolution edge cases (same-named methods across impls, a trait
//! default method, nested fns, calls inside macro invocations), and the
//! graph lints — derived hot-path enforcement, panic-reachability with
//! call chains, blocking-on-read-path, stale allowlist entries.

use analysis::config::Config;
use analysis::engine::{self, Workspace};
use analysis::lints::{Finding, HOT_PATH, PANIC, STALE_ALLOW};
use analysis::reach::{BLOCKING_READ, PANIC_REACH};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

/// A config scoping the scan to the graph fixtures, with the fixture hot
/// and read paths configured. The `functions` list is empty on purpose:
/// enforcement must come from derivation alone.
fn graph_config() -> Config {
    Config::parse(
        r#"
[paths]
include = ["graph"]

[hot_path]
roots = ["graph/hot.rs::drive"]

[[hot_path.stop]]
function = "graph/hot.rs::refresh"
reason = "cold refresh branch"

[read_path]
roots = ["graph/readers.rs::serve"]

[[read_path.allow]]
file = "graph/readers.rs"
token = "recv"
reason = "bounded fixture channel"

[[panic.allow]]
file = "graph/readers.rs"
token = "expect"
reason = "deliberately stale: readers.rs has no expect site"
"#,
    )
    .expect("graph fixture config parses")
}

fn workspace() -> Workspace {
    engine::parse_workspace(&fixtures_root(), &graph_config()).expect("fixture scan succeeds")
}

/// Outgoing edges of `from`, as `(display-name, ambiguous)` pairs in
/// source order. Display names disambiguate same-named methods by owner.
fn edges_of(ws: &Workspace, from: &str) -> Vec<(String, bool)> {
    let targets = ws.index.find_spec(from);
    assert_eq!(targets.len(), 1, "`{from}` must name one fixture fn");
    ws.graph
        .edges(targets[0])
        .iter()
        .map(|e| (ws.index.fns[e.to as usize].display(), e.ambiguous))
        .collect()
}

#[test]
fn resolves_the_exact_expected_edges() {
    let ws = workspace();

    // `drive` calls its own impl's `step`, the free `refresh`, and —
    // through the `emit!(...)` macro invocation — its own `flush`.
    assert_eq!(
        edges_of(&ws, "graph/hot.rs::drive"),
        vec![
            ("Engine::step".to_string(), false),
            ("refresh".to_string(), false),
            ("Engine::flush".to_string(), false),
        ]
    );
    // `step` only calls std (`unwrap`, `drop`, `vec!`): no workspace edges.
    assert_eq!(edges_of(&ws, "graph/hot.rs::step"), vec![]);
    // A nested fn is an ordinary callee of its enclosing fn.
    assert_eq!(
        edges_of(&ws, "graph/hot.rs::flush"),
        vec![("nested".to_string(), false)]
    );

    // `serve` resolves the workspace-unique `total` to the trait default
    // method with certainty; `total`'s `self.load()` dispatches to BOTH
    // same-named impls, each edge flagged ambiguous.
    assert_eq!(
        edges_of(&ws, "graph/readers.rs::serve"),
        vec![("Source::total".to_string(), false)]
    );
    assert_eq!(
        edges_of(&ws, "graph/readers.rs::total"),
        vec![
            ("Published::load".to_string(), true),
            ("StoreBacked::load".to_string(), true),
        ]
    );
}

fn run_check() -> Vec<Finding> {
    engine::check(&fixtures_root(), &graph_config(), &BTreeSet::new())
        .expect("fixture scan succeeds")
        .findings
}

fn of_lint<'r>(findings: &'r [Finding], lint: &str) -> Vec<&'r Finding> {
    findings.iter().filter(|f| f.lint == lint).collect()
}

#[test]
fn derivation_enforces_allocation_freedom_past_the_stop() {
    let findings = run_check();
    // `step` is nowhere in `functions`; the `vec!` fires purely because
    // `step` is derivable from the root. The stopped `refresh` branch and
    // everything outside the closure stay unenforced.
    let hot = of_lint(&findings, HOT_PATH);
    assert_eq!(hot.len(), 1, "{hot:?}");
    assert_eq!((hot[0].file.as_str(), hot[0].line), ("graph/hot.rs", 18));
    assert!(hot[0].message.contains("`vec!`"), "{}", hot[0].message);
    assert!(hot[0].message.contains("`step`"), "{}", hot[0].message);
}

#[test]
fn panic_reachability_reports_the_call_chain() {
    let findings = run_check();
    // The token-level panic lint flags the raw site…
    let panics = of_lint(&findings, PANIC);
    assert_eq!(panics.len(), 1, "{panics:?}");
    assert_eq!(
        (panics[0].file.as_str(), panics[0].line),
        ("graph/hot.rs", 18)
    );
    // …and the graph lint explains how the decision root reaches it.
    let reach = of_lint(&findings, PANIC_REACH);
    assert_eq!(reach.len(), 1, "{reach:?}");
    assert_eq!(
        (reach[0].file.as_str(), reach[0].line),
        ("graph/hot.rs", 18)
    );
    assert!(
        reach[0].message.contains("Engine::drive -> Engine::step"),
        "{}",
        reach[0].message
    );
}

#[test]
fn blocking_on_read_path_fires_through_trait_dispatch() {
    let findings = run_check();
    // The `lock` in `Published::load` is unallowed: one finding with the
    // dispatch chain. The `recv` in `StoreBacked::load` is covered by the
    // allow entry, which is therefore live (no stale finding for it).
    let blocked = of_lint(&findings, BLOCKING_READ);
    assert_eq!(blocked.len(), 1, "{blocked:?}");
    assert_eq!(
        (blocked[0].file.as_str(), blocked[0].line),
        ("graph/readers.rs", 18)
    );
    assert!(
        blocked[0]
            .message
            .contains("serve -> Source::total -> Published::load"),
        "{}",
        blocked[0].message
    );
}

#[test]
fn stale_allow_entries_are_reported() {
    let findings = run_check();
    let stale = of_lint(&findings, STALE_ALLOW);
    assert_eq!(stale.len(), 1, "{stale:?}");
    assert!(
        stale[0].message.contains("expect") && stale[0].message.contains("graph/readers.rs"),
        "{}",
        stale[0].message
    );
}
