//! `lint.toml` loading.
//!
//! The offline build environment has no `toml` crate, so the analyzer ships
//! a deliberately small TOML subset parser covering exactly what its config
//! needs: comments, `[table]` headers, `[[array-of-tables]]` headers, string
//! values, booleans, and (possibly multi-line) arrays of strings. Anything
//! outside that subset is a hard error — config typos should fail loudly,
//! not silently relax an invariant.

/// One allowlist entry: a specific banned token in a specific file is
/// accepted, with a mandatory human-readable reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    pub file: String,
    pub token: String,
    pub reason: String,
    /// Line of the entry's `[[...]]` header in lint.toml, so stale-entry
    /// findings point at the entry itself.
    pub line: u32,
}

/// One reachability stop: a fn (as a `path::fn_name` or bare-name spec)
/// whose subtree is excluded from a closure, with a mandatory reason
/// documenting why the branch is cold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StopEntry {
    pub function: String,
    pub reason: String,
    /// Line of the entry's `[[...]]` header in lint.toml.
    pub line: u32,
}

/// Typed analyzer configuration.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Workspace-relative directories (or files) to scan.
    pub include: Vec<String>,
    /// Workspace-relative path prefixes to skip.
    pub exclude: Vec<String>,
    /// Files implementing cross-thread handoff protocols: Acquire loads
    /// must be paired with Release (or AcqRel) stores within the file.
    pub protocol_files: Vec<String>,
    /// Function names whose bodies must not contain allocating tokens.
    pub hot_path_functions: Vec<String>,
    /// Roots the hot-path closure is derived from (`path::fn_name` specs).
    pub hot_path_roots: Vec<String>,
    /// Manifest entries enforced allocation-free although not derivable
    /// from the roots. Must be a subset of `hot_path_functions`.
    pub hot_path_pins: Vec<String>,
    /// Cold branches excluded from the derived hot-path closure.
    pub hot_path_stops: Vec<StopEntry>,
    /// Line of the `[hot_path]` table header, for manifest-level findings.
    pub hot_path_line: u32,
    /// Roots of the published-snapshot read path that must stay free of
    /// blocking calls.
    pub read_path_roots: Vec<String>,
    /// Branches excluded from the read-path closure (e.g. the store-backed
    /// fallback that published sources never take).
    pub read_path_stops: Vec<StopEntry>,
    /// Per-site blocking-call exemptions on the read path.
    pub read_path_allow: Vec<AllowEntry>,
    /// Path prefixes of modules that must stay deterministic (no wall-clock
    /// reads, no hash-randomized containers).
    pub determinism_modules: Vec<String>,
    /// Path prefixes exempt from the panic-surface lint (e.g. CLI binaries,
    /// where a panic is an acceptable abort-with-message).
    pub panic_skip: Vec<String>,
    /// Per-site panic-surface exemptions.
    pub panic_allow: Vec<AllowEntry>,
    /// Per-site determinism exemptions.
    pub determinism_allow: Vec<AllowEntry>,
}

impl Config {
    /// Parse a `lint.toml` document.
    pub fn parse(text: &str) -> Result<Config, String> {
        let doc = parse_toml(text)?;
        let mut config = Config::default();
        for (name, table) in &doc.tables {
            match name.as_str() {
                "paths" => {
                    config.include = table.get_list("include")?;
                    config.exclude = table.get_list("exclude")?;
                }
                "atomics" => config.protocol_files = table.get_list("protocol_files")?,
                "hot_path" => {
                    config.hot_path_functions = table.get_list("functions")?;
                    config.hot_path_roots = table.get_list("roots")?;
                    config.hot_path_pins = table.get_list("pins")?;
                    config.hot_path_line = table.line;
                }
                "hot_path.stop" => config.hot_path_stops.push(table.to_stop_entry(name)?),
                "read_path" => config.read_path_roots = table.get_list("roots")?,
                "read_path.stop" => config.read_path_stops.push(table.to_stop_entry(name)?),
                "read_path.allow" => config.read_path_allow.push(table.to_allow_entry(name)?),
                "determinism" => config.determinism_modules = table.get_list("modules")?,
                "panic" => config.panic_skip = table.get_list("skip")?,
                "panic.allow" => config.panic_allow.push(table.to_allow_entry(name)?),
                "determinism.allow" => config.determinism_allow.push(table.to_allow_entry(name)?),
                other => return Err(format!("lint.toml: unknown table [{other}]")),
            }
        }
        if config.include.is_empty() {
            return Err("lint.toml: [paths] include must list at least one directory".into());
        }
        Ok(config)
    }
}

/// An order-preserving parsed document: repeated names come from `[[...]]`
/// array-of-tables headers.
struct Doc {
    tables: Vec<(String, Table)>,
}

struct Table {
    entries: Vec<(String, Value)>,
    /// 1-based line of the table's header.
    line: u32,
}

enum Value {
    Str(String),
    List(Vec<String>),
}

impl Table {
    fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// A list-valued key; absent keys yield an empty list.
    fn get_list(&self, key: &str) -> Result<Vec<String>, String> {
        match self.get(key) {
            None => Ok(Vec::new()),
            Some(Value::List(items)) => Ok(items.clone()),
            Some(Value::Str(_)) => Err(format!("lint.toml: key `{key}` must be an array")),
        }
    }

    fn get_str(&self, table: &str, key: &str) -> Result<String, String> {
        match self.get(key) {
            Some(Value::Str(s)) if !s.is_empty() => Ok(s.clone()),
            Some(Value::Str(_)) => Err(format!(
                "lint.toml: [[{table}]] key `{key}` must not be empty"
            )),
            Some(Value::List(_)) => Err(format!(
                "lint.toml: [[{table}]] key `{key}` must be a string"
            )),
            None => Err(format!(
                "lint.toml: [[{table}]] entry is missing key `{key}`"
            )),
        }
    }

    fn to_allow_entry(&self, table: &str) -> Result<AllowEntry, String> {
        Ok(AllowEntry {
            file: self.get_str(table, "file")?,
            token: self.get_str(table, "token")?,
            reason: self.get_str(table, "reason")?,
            line: self.line,
        })
    }

    fn to_stop_entry(&self, table: &str) -> Result<StopEntry, String> {
        Ok(StopEntry {
            function: self.get_str(table, "function")?,
            reason: self.get_str(table, "reason")?,
            line: self.line,
        })
    }
}

fn parse_toml(text: &str) -> Result<Doc, String> {
    let mut doc = Doc { tables: Vec::new() };
    let mut lines = text.lines().enumerate().peekable();
    while let Some((lineno, raw)) = lines.next() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
            doc.tables.push((
                header.trim().to_string(),
                Table {
                    entries: Vec::new(),
                    line: lineno as u32 + 1,
                },
            ));
        } else if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            doc.tables.push((
                header.trim().to_string(),
                Table {
                    entries: Vec::new(),
                    line: lineno as u32 + 1,
                },
            ));
        } else if let Some(eq) = line.find('=') {
            let key = line[..eq].trim().to_string();
            let mut value = line[eq + 1..].trim().to_string();
            // A multi-line array: keep appending lines until the `]` closes.
            while value.starts_with('[') && !closes_array(&value) {
                match lines.next() {
                    Some((_, next)) => {
                        value.push(' ');
                        value.push_str(strip_comment(next).trim());
                    }
                    None => {
                        return Err(format!(
                            "lint.toml:{}: unterminated array for key `{key}`",
                            lineno + 1
                        ))
                    }
                }
            }
            let parsed =
                parse_value(&value).map_err(|e| format!("lint.toml:{}: {e}", lineno + 1))?;
            match doc.tables.last_mut() {
                Some((_, table)) => table.entries.push((key, parsed)),
                None => {
                    return Err(format!(
                        "lint.toml:{}: key `{key}` appears before any [table] header",
                        lineno + 1
                    ))
                }
            }
        } else {
            return Err(format!(
                "lint.toml:{}: cannot parse line `{line}`",
                lineno + 1
            ));
        }
    }
    Ok(doc)
}

/// Drop a `#` comment, respecting `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Does this (comment-stripped, accumulated) array literal close its `[`?
fn closes_array(value: &str) -> bool {
    let mut in_str = false;
    let mut escaped = false;
    for c in value.chars() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            ']' if !in_str => return true,
            _ => {}
        }
    }
    false
}

fn parse_value(value: &str) -> Result<Value, String> {
    if let Some(body) = value.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or_else(|| "array value does not end with `]`".to_string())?;
        let mut items = Vec::new();
        for part in split_array_items(body) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match parse_value(part)? {
                Value::Str(s) => items.push(s),
                Value::List(_) => return Err("nested arrays are not supported".into()),
            }
        }
        return Ok(Value::List(items));
    }
    if let Some(body) = value.strip_prefix('"') {
        let body = body
            .strip_suffix('"')
            .ok_or_else(|| format!("unterminated string `{value}`"))?;
        return Ok(Value::Str(unescape(body)));
    }
    Err(format!(
        "unsupported value `{value}` (only strings and string arrays)"
    ))
}

/// Split an array body on commas that sit outside quoted strings.
fn split_array_items(body: &str) -> Vec<&str> {
    let mut items = Vec::new();
    let mut start = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            ',' if !in_str => {
                items.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    items.push(&body[start..]);
    items
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some(other) => out.push(other),
                None => {}
            }
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_config_shape() {
        let text = r#"
# analyzer config
[paths]
include = ["crates", "src"]
exclude = [
    "crates/analysis/fixtures", # fixtures carry deliberate violations
    "vendor",
]

[atomics]
protocol_files = ["crates/telemetry/src/publish.rs"]

[hot_path]
functions = ["schedule_batch_into", "rank_into"]

[determinism]
modules = ["crates/experiments/src"]

[panic]
skip = ["crates/experiments/src/bin"]

[[panic.allow]]
file = "crates/core/src/service.rs"
token = "expect"
reason = "lock poisoning is unrecoverable here"

[[determinism.allow]]
file = "crates/experiments/src/lib.rs"
token = "Instant"
reason = "stderr timing only"
"#;
        let config = Config::parse(text).unwrap();
        assert_eq!(config.include, vec!["crates", "src"]);
        assert_eq!(config.exclude, vec!["crates/analysis/fixtures", "vendor"]);
        assert_eq!(
            config.protocol_files,
            vec!["crates/telemetry/src/publish.rs"]
        );
        assert_eq!(
            config.hot_path_functions,
            vec!["schedule_batch_into", "rank_into"]
        );
        assert_eq!(config.determinism_modules, vec!["crates/experiments/src"]);
        assert_eq!(config.panic_skip, vec!["crates/experiments/src/bin"]);
        assert_eq!(config.panic_allow.len(), 1);
        let allow = &config.panic_allow[0];
        assert_eq!(allow.file, "crates/core/src/service.rs");
        assert_eq!(allow.token, "expect");
        assert_eq!(allow.reason, "lock poisoning is unrecoverable here");
        assert!(allow.line > 0, "allow entries record their header line");
        assert_eq!(config.determinism_allow.len(), 1);
    }

    #[test]
    fn parses_graph_tables() {
        let text = r#"
[paths]
include = ["crates"]

[hot_path]
roots = ["crates/core/src/service.rs::schedule_batch_into"]
functions = ["schedule_batch_into", "snapshot_into"]
pins = ["snapshot_into"]

[[hot_path.stop]]
function = "crates/core/src/context.rs::rebuild"
reason = "cold: only runs on topology changes"

[read_path]
roots = ["crates/core/src/service.rs::schedule_batch_into"]

[[read_path.stop]]
function = "fetch_into"
reason = "store-backed fallback"

[[read_path.allow]]
file = "crates/telemetry/src/publish.rs"
token = "lock"
reason = "bounded slot mutex"
"#;
        let config = Config::parse(text).unwrap();
        assert_eq!(
            config.hot_path_roots,
            vec!["crates/core/src/service.rs::schedule_batch_into"]
        );
        assert_eq!(config.hot_path_pins, vec!["snapshot_into"]);
        assert!(config.hot_path_line > 0);
        assert_eq!(config.hot_path_stops.len(), 1);
        assert_eq!(
            config.hot_path_stops[0].function,
            "crates/core/src/context.rs::rebuild"
        );
        assert_eq!(config.read_path_roots.len(), 1);
        assert_eq!(config.read_path_stops[0].function, "fetch_into");
        assert_eq!(config.read_path_allow[0].token, "lock");
    }

    #[test]
    fn pins_stand_alone_from_functions() {
        // Pins are standalone enforcement entries: the engine appends them
        // to the enforced set alongside the derived closure, so they need
        // not be repeated under `functions`.
        let text =
            "[paths]\ninclude = [\"crates\"]\n\n[hot_path]\nfunctions = [\"a\"]\npins = [\"b\"]\n";
        let config = Config::parse(text).unwrap();
        assert_eq!(config.hot_path_pins, vec!["b"]);
    }

    #[test]
    fn rejects_unknown_tables_and_missing_keys() {
        assert!(Config::parse("[nonsense]\n").is_err());
        let missing_reason =
            "[paths]\ninclude = [\"x\"]\n[[panic.allow]]\nfile = \"a\"\ntoken = \"unwrap\"\n";
        let err = Config::parse(missing_reason).unwrap_err();
        assert!(err.contains("reason"), "{err}");
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let text = "[paths]\ninclude = [\"dir#1\"] # trailing\n";
        let config = Config::parse(text).unwrap();
        assert_eq!(config.include, vec!["dir#1"]);
    }

    #[test]
    fn requires_include() {
        let err = Config::parse("[paths]\nexclude = []\n").unwrap_err();
        assert!(err.contains("include"), "{err}");
    }
}
