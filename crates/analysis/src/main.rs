//! CLI for the workspace invariant analyzer.
//!
//! Usage: `cargo run -p analysis --release -- check [--root DIR]
//! [--config FILE] [--baseline FILE]`
#![forbid(unsafe_code)]

use analysis::{config::Config, engine};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: analysis check [--root DIR] [--config FILE] [--baseline FILE]\n\
         \n\
         Lints the workspace for atomics discipline, hot-path allocations,\n\
         panic surface, determinism, and #![forbid(unsafe_code)] coverage.\n\
         Exits 0 when clean, 1 on findings, 2 on usage/config errors."
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = None;
    let mut root = None;
    let mut config_path = None;
    let mut baseline_path = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "check" if command.is_none() => command = Some("check"),
            "--root" => root = it.next().cloned(),
            "--config" => config_path = it.next().cloned(),
            "--baseline" => baseline_path = it.next().cloned(),
            _ => return usage(),
        }
    }
    if command != Some("check") {
        return usage();
    }

    // Default to the workspace root: the analyzer lives at
    // <workspace>/crates/analysis, so walk two levels up from the manifest.
    let root = PathBuf::from(root.unwrap_or_else(|| {
        std::env::var("CARGO_MANIFEST_DIR")
            .map(|m| format!("{m}/../.."))
            .unwrap_or_else(|_| ".".to_string())
    }));
    let config_file = config_path
        .map(PathBuf::from)
        .unwrap_or_else(|| root.join("lint.toml"));
    let baseline_file = baseline_path
        .map(PathBuf::from)
        .unwrap_or_else(|| root.join("lint.baseline"));

    let config_text = match std::fs::read_to_string(&config_file) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("analysis: cannot read {}: {e}", config_file.display());
            return ExitCode::from(2);
        }
    };
    let config = match Config::parse(&config_text) {
        Ok(config) => config,
        Err(e) => {
            eprintln!("analysis: {e}");
            return ExitCode::from(2);
        }
    };
    let baseline = match engine::load_baseline(&baseline_file) {
        Ok(baseline) => baseline,
        Err(e) => {
            eprintln!("analysis: {e}");
            return ExitCode::from(2);
        }
    };

    match engine::check(&root, &config, &baseline) {
        Ok(report) => {
            for finding in &report.findings {
                println!("{}", finding.render());
            }
            if report.findings.is_empty() {
                println!(
                    "analysis: clean — {} files scanned, {} baseline-suppressed",
                    report.files_scanned, report.suppressed
                );
                ExitCode::SUCCESS
            } else {
                println!(
                    "analysis: {} finding(s) across {} files scanned ({} baseline-suppressed)",
                    report.findings.len(),
                    report.files_scanned,
                    report.suppressed
                );
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("analysis: {e}");
            ExitCode::from(2)
        }
    }
}
