//! CLI for the workspace invariant analyzer.
//!
//! Usage:
//!   `cargo run -p analysis --release -- check [--root DIR] [--config FILE]
//!    [--baseline FILE]`
//!   `cargo run -p analysis --release -- graph [--root DIR] [--config FILE]
//!    [--why SPEC] [--roots SPEC,...]`
#![forbid(unsafe_code)]

use analysis::{config::Config, engine, reach};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: analysis check [--root DIR] [--config FILE] [--baseline FILE]\n\
         \x20      analysis graph [--root DIR] [--config FILE] [--why SPEC] [--roots SPEC,...]\n\
         \n\
         check  Lints the workspace: atomics discipline, hot-path allocations,\n\
         \x20      panic surface, determinism, #![forbid(unsafe_code)] coverage,\n\
         \x20      and the call-graph lints (hot-path-closure, panic-reachability,\n\
         \x20      blocking-on-read-path, stale-allowlist).\n\
         graph  Dumps the derived hot-path closure, or explains why one fn\n\
         \x20      (`--why path::fn_name` or a bare name) is reachable via its\n\
         \x20      call chain. `--roots` overrides the configured roots.\n\
         \n\
         Exits 0 when clean/reachable, 1 on findings or an unreachable --why\n\
         target, 2 on usage/config errors."
    );
    ExitCode::from(2)
}

struct Cli {
    command: &'static str,
    root: PathBuf,
    config: Config,
    baseline_file: PathBuf,
    why: Option<String>,
    roots_override: Option<Vec<String>>,
}

fn parse_cli() -> Result<Cli, ExitCode> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = None;
    let mut root = None;
    let mut config_path = None;
    let mut baseline_path = None;
    let mut why = None;
    let mut roots_override = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "check" if command.is_none() => command = Some("check"),
            "graph" if command.is_none() => command = Some("graph"),
            "--root" => root = it.next().cloned(),
            "--config" => config_path = it.next().cloned(),
            "--baseline" => baseline_path = it.next().cloned(),
            "--why" => why = it.next().cloned(),
            "--roots" => {
                roots_override = it
                    .next()
                    .map(|r| r.split(',').map(str::to_string).collect::<Vec<_>>())
            }
            _ => return Err(usage()),
        }
    }
    let Some(command) = command else {
        return Err(usage());
    };

    // Default to the workspace root: the analyzer lives at
    // <workspace>/crates/analysis, so walk two levels up from the manifest.
    let root = PathBuf::from(root.unwrap_or_else(|| {
        std::env::var("CARGO_MANIFEST_DIR")
            .map(|m| format!("{m}/../.."))
            .unwrap_or_else(|_| ".".to_string())
    }));
    let config_file = config_path
        .map(PathBuf::from)
        .unwrap_or_else(|| root.join("lint.toml"));
    let baseline_file = baseline_path
        .map(PathBuf::from)
        .unwrap_or_else(|| root.join("lint.baseline"));

    let config_text = match std::fs::read_to_string(&config_file) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("analysis: cannot read {}: {e}", config_file.display());
            return Err(ExitCode::from(2));
        }
    };
    let config = match Config::parse(&config_text) {
        Ok(config) => config,
        Err(e) => {
            eprintln!("analysis: {e}");
            return Err(ExitCode::from(2));
        }
    };
    Ok(Cli {
        command,
        root,
        config,
        baseline_file,
        why,
        roots_override,
    })
}

fn run_check(cli: &Cli) -> ExitCode {
    let baseline = match engine::load_baseline(&cli.baseline_file) {
        Ok(baseline) => baseline,
        Err(e) => {
            eprintln!("analysis: {e}");
            return ExitCode::from(2);
        }
    };
    match engine::check(&cli.root, &cli.config, &baseline) {
        Ok(report) => {
            for finding in &report.findings {
                println!("{}", finding.render());
            }
            if report.findings.is_empty() {
                println!(
                    "analysis: clean — {} files scanned, {} baseline-suppressed",
                    report.files_scanned, report.suppressed
                );
                ExitCode::SUCCESS
            } else {
                println!(
                    "analysis: {} finding(s) across {} files scanned ({} baseline-suppressed)",
                    report.findings.len(),
                    report.files_scanned,
                    report.suppressed
                );
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("analysis: {e}");
            ExitCode::from(2)
        }
    }
}

fn run_graph(cli: &Cli) -> ExitCode {
    let ws = match engine::parse_workspace(&cli.root, &cli.config) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("analysis: {e}");
            return ExitCode::from(2);
        }
    };
    // `--roots` overrides the configured hot-path roots; the configured
    // stops only apply to the configured roots (an explicit root list asks
    // for the raw closure).
    let (roots, stops): (Vec<String>, Vec<String>) = match &cli.roots_override {
        Some(roots) => (roots.clone(), Vec::new()),
        None => (
            cli.config.hot_path_roots.clone(),
            cli.config
                .hot_path_stops
                .iter()
                .map(|s| s.function.clone())
                .collect(),
        ),
    };
    if roots.is_empty() {
        eprintln!("analysis: no roots — configure [hot_path] roots in lint.toml or pass --roots");
        return ExitCode::from(2);
    }
    for root in &roots {
        if ws.index.find_spec(root).is_empty() {
            eprintln!("analysis: root `{root}` matches no fn in the workspace");
            return ExitCode::from(2);
        }
    }
    let reach = reach::closure(&ws.index, &ws.graph, &roots, &stops);

    if let Some(why) = &cli.why {
        let targets = ws.index.find_spec(why);
        if targets.is_empty() {
            eprintln!("analysis: --why `{why}` matches no fn in the workspace");
            return ExitCode::from(2);
        }
        let mut any_reachable = false;
        for idx in targets {
            let spec = ws.index.fns[idx as usize].spec();
            if reach.contains(idx) {
                any_reachable = true;
                println!("{spec}: reachable");
                println!("  via: {}", reach.chain_text(&ws.index, idx));
            } else {
                println!("{spec}: NOT reachable from {}", roots.join(", "));
            }
        }
        return if any_reachable {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        };
    }

    // Default dump: the derived closure, one spec per line, sorted.
    let mut specs: Vec<String> = reach
        .members
        .iter()
        .map(|&i| ws.index.fns[i as usize].spec())
        .collect();
    specs.sort();
    specs.dedup();
    for spec in &specs {
        println!("{spec}");
    }
    println!(
        "analysis: {} fn(s) reachable from {} root(s), {} stop(s) applied",
        specs.len(),
        roots.len(),
        stops.len()
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(code) => return code,
    };
    match cli.command {
        "check" => run_check(&cli),
        "graph" => run_graph(&cli),
        _ => usage(),
    }
}
