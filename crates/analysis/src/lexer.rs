//! A token-level Rust lexer.
//!
//! The analyzer deliberately works at the token level rather than parsing a
//! full AST: every invariant it checks (banned identifiers, justification
//! comments, attribute-delimited test regions) is visible in the token
//! stream, and a hand-rolled lexer keeps the crate dependency-free in the
//! offline build environment. The tricky parts of Rust's lexical grammar are
//! handled faithfully — nested block comments, raw strings with arbitrary
//! hash fences, byte/raw-byte literals, and the char-versus-lifetime
//! ambiguity — because misclassifying any of these would silently corrupt
//! every downstream lint.

/// The kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers like `r#type`).
    Ident,
    /// A lifetime or loop label: `'a`, `'static`, `'_`.
    Lifetime,
    /// A character literal: `'x'`, `'\n'`, `'\u{41}'`.
    Char,
    /// A byte literal: `b'x'`.
    Byte,
    /// A normal string literal: `"..."`.
    Str,
    /// A raw string literal: `r"..."`, `r#"..."#`.
    RawStr,
    /// A byte string literal: `b"..."`, `br#"..."#`.
    ByteStr,
    /// A numeric literal (integer or float, with optional suffix).
    Number,
    /// A single punctuation character.
    Punct,
    /// A `//` comment (through end of line, newline excluded).
    LineComment,
    /// A `/* ... */` comment, possibly nested and multi-line.
    BlockComment,
    /// A `#!...` shebang line at the very start of the file.
    Shebang,
}

/// One lexed token: a kind plus its byte span and 1-based start line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub start: usize,
    pub end: usize,
    pub line: u32,
}

impl Token {
    /// The token's source text.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

struct Cursor<'s> {
    src: &'s str,
    pos: usize,
    line: u32,
}

impl<'s> Cursor<'s> {
    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek_at(&self, n: usize) -> Option<char> {
        self.src[self.pos..].chars().nth(n)
    }

    fn rest(&self) -> &'s str {
        &self.src[self.pos..]
    }

    /// Advance one char, tracking line numbers.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn eat_while(&mut self, pred: impl Fn(char) -> bool) {
        while let Some(c) = self.peek() {
            if pred(c) {
                self.bump();
            } else {
                break;
            }
        }
    }
}

/// Lex `src` into a token stream. Whitespace is dropped; comments and a
/// leading shebang are kept as tokens so lints can inspect justification
/// comments and attribute positions.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        src,
        pos: 0,
        line: 1,
    };
    let mut tokens = Vec::new();

    // A `#!` at byte 0 is a shebang unless it begins an inner attribute
    // (`#![...]`), which is the common case in crate roots.
    if src.starts_with("#!") && !src.starts_with("#![") {
        let start = cur.pos;
        let line = cur.line;
        while let Some(c) = cur.peek() {
            if c == '\n' {
                break;
            }
            cur.bump();
        }
        tokens.push(Token {
            kind: TokenKind::Shebang,
            start,
            end: cur.pos,
            line,
        });
    }

    while let Some(c) = cur.peek() {
        let start = cur.pos;
        let line = cur.line;
        match c {
            _ if c.is_whitespace() => {
                cur.bump();
            }
            '/' if cur.peek_at(1) == Some('/') => {
                while let Some(c) = cur.peek() {
                    if c == '\n' {
                        break;
                    }
                    cur.bump();
                }
                tokens.push(Token {
                    kind: TokenKind::LineComment,
                    start,
                    end: cur.pos,
                    line,
                });
            }
            '/' if cur.peek_at(1) == Some('*') => {
                lex_block_comment(&mut cur);
                tokens.push(Token {
                    kind: TokenKind::BlockComment,
                    start,
                    end: cur.pos,
                    line,
                });
            }
            '\'' => {
                let kind = lex_quote(&mut cur);
                tokens.push(Token {
                    kind,
                    start,
                    end: cur.pos,
                    line,
                });
            }
            '"' => {
                lex_string(&mut cur);
                tokens.push(Token {
                    kind: TokenKind::Str,
                    start,
                    end: cur.pos,
                    line,
                });
            }
            _ if c.is_ascii_digit() => {
                lex_number(&mut cur);
                tokens.push(Token {
                    kind: TokenKind::Number,
                    start,
                    end: cur.pos,
                    line,
                });
            }
            _ if is_ident_start(c) => {
                let kind = lex_ident_or_prefixed_literal(&mut cur);
                tokens.push(Token {
                    kind,
                    start,
                    end: cur.pos,
                    line,
                });
            }
            _ => {
                cur.bump();
                tokens.push(Token {
                    kind: TokenKind::Punct,
                    start,
                    end: cur.pos,
                    line,
                });
            }
        }
    }
    tokens
}

/// Consume a block comment with full nesting support (`/* /* */ */`).
fn lex_block_comment(cur: &mut Cursor<'_>) {
    // Consume the opening `/*`.
    cur.bump();
    cur.bump();
    let mut depth = 1usize;
    while depth > 0 {
        match cur.peek() {
            Some('/') if cur.peek_at(1) == Some('*') => {
                cur.bump();
                cur.bump();
                depth += 1;
            }
            Some('*') if cur.peek_at(1) == Some('/') => {
                cur.bump();
                cur.bump();
                depth -= 1;
            }
            Some(_) => {
                cur.bump();
            }
            // Unterminated comment: stop at EOF rather than looping.
            None => break,
        }
    }
}

/// Consume a `'`-introduced token and classify it as a char literal or a
/// lifetime. The ambiguity: `'a'` is a char, `'a` (in `<'a>` or `'label:`)
/// is a lifetime. An escape (`'\n'`) is always a char; otherwise we read the
/// identifier after the quote and decide by whether a closing quote follows.
fn lex_quote(cur: &mut Cursor<'_>) -> TokenKind {
    cur.bump(); // the opening '
    match cur.peek() {
        Some('\\') => {
            consume_escape(cur);
            if cur.peek() == Some('\'') {
                cur.bump();
            }
            TokenKind::Char
        }
        Some(c) if is_ident_start(c) => {
            cur.eat_while(is_ident_continue);
            if cur.peek() == Some('\'') {
                cur.bump();
                TokenKind::Char
            } else {
                TokenKind::Lifetime
            }
        }
        // `'_` is a placeholder lifetime; handled above since `_` is an
        // ident start. Any other char (`'('`, `'😀'`) is a char literal.
        Some(_) => {
            cur.bump();
            if cur.peek() == Some('\'') {
                cur.bump();
            }
            TokenKind::Char
        }
        None => TokenKind::Punct,
    }
}

/// Consume the escape sequence after a `\` (the `\` itself included).
fn consume_escape(cur: &mut Cursor<'_>) {
    cur.bump(); // the backslash
    match cur.bump() {
        Some('u') if cur.peek() == Some('{') => {
            while let Some(c) = cur.bump() {
                if c == '}' {
                    break;
                }
            }
        }
        Some('x') => {
            cur.bump();
            cur.bump();
        }
        _ => {}
    }
}

/// Consume a normal (escapable, possibly multi-line) string body after the
/// opening quote position.
fn lex_string(cur: &mut Cursor<'_>) {
    cur.bump(); // the opening "
    while let Some(c) = cur.peek() {
        match c {
            '\\' => {
                consume_escape(cur);
            }
            '"' => {
                cur.bump();
                return;
            }
            _ => {
                cur.bump();
            }
        }
    }
}

/// Consume a raw string body: `#` fence of `hashes` hashes already counted,
/// positioned at the opening `"`.
fn lex_raw_string(cur: &mut Cursor<'_>, hashes: usize) {
    cur.bump(); // the opening "
    while let Some(c) = cur.bump() {
        if c == '"' {
            let mut seen = 0usize;
            while seen < hashes && cur.peek() == Some('#') {
                cur.bump();
                seen += 1;
            }
            if seen == hashes {
                return;
            }
        }
    }
}

/// Consume an identifier, or one of the prefixed literal forms that start
/// like one: `r"…"`, `r#"…"#`, `r#ident`, `b'…'`, `b"…"`, `br#"…"#`.
fn lex_ident_or_prefixed_literal(cur: &mut Cursor<'_>) -> TokenKind {
    let rest = cur.rest();
    if rest.starts_with("r\"") || rest.starts_with("r#") {
        // Count hashes; a quote after them means raw string, an identifier
        // char means raw identifier (`r#type`).
        let hashes = rest[1..].bytes().take_while(|&b| b == b'#').count();
        match rest[1 + hashes..].chars().next() {
            Some('"') => {
                cur.bump(); // r
                for _ in 0..hashes {
                    cur.bump();
                }
                lex_raw_string(cur, hashes);
                return TokenKind::RawStr;
            }
            Some(c) if hashes == 1 && is_ident_start(c) => {
                cur.bump(); // r
                cur.bump(); // #
                cur.eat_while(is_ident_continue);
                return TokenKind::Ident;
            }
            _ => {}
        }
    }
    if rest.starts_with("br\"") || rest.starts_with("br#") {
        let hashes = rest[2..].bytes().take_while(|&b| b == b'#').count();
        if rest[2 + hashes..].starts_with('"') {
            cur.bump(); // b
            cur.bump(); // r
            for _ in 0..hashes {
                cur.bump();
            }
            lex_raw_string(cur, hashes);
            return TokenKind::ByteStr;
        }
    }
    if rest.starts_with("b\"") {
        cur.bump(); // b
        lex_string(cur);
        return TokenKind::ByteStr;
    }
    if rest.starts_with("b'") {
        cur.bump(); // b
        cur.bump(); // '
        if cur.peek() == Some('\\') {
            consume_escape(cur);
        } else {
            cur.bump();
        }
        if cur.peek() == Some('\'') {
            cur.bump();
        }
        return TokenKind::Byte;
    }
    cur.eat_while(is_ident_continue);
    TokenKind::Ident
}

/// Consume a numeric literal: integers (decimal/hex/octal/binary with `_`
/// separators), floats with exponents, and type suffixes. A `.` is only part
/// of the number when followed by a digit, so ranges (`0..10`) and method
/// calls on literals (`1.max(2)`) lex correctly.
fn lex_number(cur: &mut Cursor<'_>) {
    let radix_prefixed = matches!(
        cur.rest().get(..2),
        Some("0x" | "0X" | "0o" | "0O" | "0b" | "0B")
    );
    if radix_prefixed {
        cur.bump();
        cur.bump();
        cur.eat_while(|c| c.is_ascii_hexdigit() || c == '_');
    } else {
        cur.eat_while(|c| c.is_ascii_digit() || c == '_');
        if cur.peek() == Some('.') && cur.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
            cur.bump();
            cur.eat_while(|c| c.is_ascii_digit() || c == '_');
        }
        if matches!(cur.peek(), Some('e' | 'E'))
            && (cur.peek_at(1).is_some_and(|c| c.is_ascii_digit())
                || (matches!(cur.peek_at(1), Some('+' | '-'))
                    && cur.peek_at(2).is_some_and(|c| c.is_ascii_digit())))
        {
            cur.bump();
            cur.bump();
            cur.eat_while(|c| c.is_ascii_digit() || c == '_');
        }
    }
    // Type suffix (`u32`, `f64`) or the rest of a stray alphanumeric run.
    cur.eat_while(is_ident_continue);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds_and_text(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    #[test]
    fn idents_keywords_and_puncts() {
        let src = "fn main() { x += 1; }";
        let got = kinds_and_text(src);
        use TokenKind::*;
        assert_eq!(
            got,
            vec![
                (Ident, "fn"),
                (Ident, "main"),
                (Punct, "("),
                (Punct, ")"),
                (Punct, "{"),
                (Ident, "x"),
                (Punct, "+"),
                (Punct, "="),
                (Number, "1"),
                (Punct, ";"),
                (Punct, "}"),
            ]
        );
    }

    #[test]
    fn line_numbers_track_newlines() {
        let src = "a\nb\n\nc";
        let lines: Vec<u32> = lex(src).into_iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn nested_block_comment_is_one_token() {
        let src = "a /* outer /* inner */ still outer */ b";
        let got = kinds_and_text(src);
        assert_eq!(got.len(), 3);
        assert_eq!(got[1].0, TokenKind::BlockComment);
        assert_eq!(got[1].1, "/* outer /* inner */ still outer */");
        assert_eq!(got[2], (TokenKind::Ident, "b"));
    }

    #[test]
    fn raw_string_with_fence_swallows_quotes_and_comment_openers() {
        let src = r####"let s = r##"has "quote" and /* opener "## ; x"####;
        let got = kinds_and_text(src);
        assert_eq!(
            got[3],
            (
                TokenKind::RawStr,
                r###"r##"has "quote" and /* opener "##"###
            )
        );
        assert_eq!(got[4], (TokenKind::Punct, ";"));
        assert_eq!(got[5], (TokenKind::Ident, "x"));
    }

    #[test]
    fn char_versus_lifetime() {
        let src =
            "let c = 'a'; fn f<'a>(x: &'a str) -> &'static str { 'outer: loop { break 'outer; } }";
        let got = kinds_and_text(src);
        let chars: Vec<&str> = got
            .iter()
            .filter(|(k, _)| *k == TokenKind::Char)
            .map(|&(_, t)| t)
            .collect();
        let lifetimes: Vec<&str> = got
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .map(|&(_, t)| t)
            .collect();
        assert_eq!(chars, vec!["'a'"]);
        assert_eq!(lifetimes, vec!["'a", "'a", "'static", "'outer", "'outer"]);
    }

    #[test]
    fn escaped_char_literals() {
        let src = r"'\n' '\'' '\u{41}' '\\'";
        let got = kinds_and_text(src);
        assert!(got.iter().all(|(k, _)| *k == TokenKind::Char), "{got:?}");
        assert_eq!(got.len(), 4);
    }

    #[test]
    fn byte_literals() {
        let src = r##"b'x' b"bytes" br#"raw bytes"# x"##;
        let got = kinds_and_text(src);
        assert_eq!(got[0].0, TokenKind::Byte);
        assert_eq!(got[1].0, TokenKind::ByteStr);
        assert_eq!(got[2].0, TokenKind::ByteStr);
        assert_eq!(got[3], (TokenKind::Ident, "x"));
    }

    #[test]
    fn shebang_versus_inner_attribute() {
        let with_shebang = "#!/usr/bin/env rust\nfn main() {}";
        let got = kinds_and_text(with_shebang);
        assert_eq!(got[0], (TokenKind::Shebang, "#!/usr/bin/env rust"));
        assert_eq!(got[1], (TokenKind::Ident, "fn"));

        let with_attr = "#![forbid(unsafe_code)]";
        let got = kinds_and_text(with_attr);
        assert_eq!(got[0], (TokenKind::Punct, "#"));
        assert_eq!(got[1], (TokenKind::Punct, "!"));
        assert!(got
            .iter()
            .any(|&(k, t)| k == TokenKind::Ident && t == "unsafe_code"));
    }

    #[test]
    fn numbers_ranges_and_method_calls() {
        let src = "0..10 1.5e-3 0xFF_u32 1.max(2) 3f64";
        let got = kinds_and_text(src);
        use TokenKind::*;
        assert_eq!(
            got,
            vec![
                (Number, "0"),
                (Punct, "."),
                (Punct, "."),
                (Number, "10"),
                (Number, "1.5e-3"),
                (Number, "0xFF_u32"),
                (Number, "1"),
                (Punct, "."),
                (Ident, "max"),
                (Punct, "("),
                (Number, "2"),
                (Punct, ")"),
                (Number, "3f64"),
            ]
        );
    }

    #[test]
    fn raw_identifier() {
        let src = "let r#type = 1;";
        let got = kinds_and_text(src);
        assert_eq!(got[1], (TokenKind::Ident, "r#type"));
    }

    #[test]
    fn string_escapes_do_not_end_early() {
        let src = r#"let s = "with \" escaped quote"; x"#;
        let got = kinds_and_text(src);
        assert_eq!(got[3], (TokenKind::Str, r#""with \" escaped quote""#));
        assert_eq!(got[5], (TokenKind::Ident, "x"));
    }
}
