//! Scope tracking over the token stream.
//!
//! Lints need two pieces of context the lexer alone cannot give them: the
//! name of the enclosing `fn` item (for the hot-path manifest) and whether a
//! token sits in test code (`#[test]` functions, `#[cfg(test)]` modules and
//! impls, or files under `tests/` / `benches/` / `examples/`). This module
//! computes both in a single pass by tracking brace frames and pending
//! item attributes — no AST required.

use crate::lexer::{Token, TokenKind};

/// Per-token scope facts, parallel to the token stream.
#[derive(Debug, Default)]
pub struct Scopes {
    /// For each token: index into `fn_names` of the innermost enclosing fn.
    pub enclosing_fn: Vec<Option<u32>>,
    /// For each token: whether it sits inside test-only code.
    pub in_test: Vec<bool>,
    /// Names of every fn item seen, in source order.
    pub fn_names: Vec<String>,
}

impl Scopes {
    /// The enclosing fn name for token `i`, if any.
    pub fn fn_name(&self, i: usize) -> Option<&str> {
        self.enclosing_fn[i].map(|idx| self.fn_names[idx as usize].as_str())
    }
}

#[derive(Clone, Copy)]
struct Frame {
    fn_idx: Option<u32>,
    test: bool,
}

/// True when the relative path denotes code that is test-only by location.
pub fn path_is_test(relative_path: &str) -> bool {
    relative_path
        .split('/')
        .any(|seg| seg == "tests" || seg == "benches" || seg == "examples")
}

/// Compute scopes for a lexed file. `file_is_test` marks the whole file as
/// test code (see [`path_is_test`]).
pub fn analyze(src: &str, tokens: &[Token], file_is_test: bool) -> Scopes {
    let mut scopes = Scopes {
        enclosing_fn: Vec::with_capacity(tokens.len()),
        in_test: Vec::with_capacity(tokens.len()),
        fn_names: Vec::new(),
    };
    let base = Frame {
        fn_idx: None,
        test: file_is_test,
    };
    let mut stack: Vec<Frame> = Vec::new();

    // Attribute state: `pending_test` is set by a `#[...]` group mentioning
    // `test`; it attaches to the brace frame of the next item keyword.
    let mut pending_test = false;
    let mut pending_applies = false;

    // Fn-header state: set at `fn name`, consumed by the body `{` (or
    // cancelled by `;` for trait method declarations). `sig_depth` tracks
    // parens/brackets so braces inside the signature's const expressions
    // don't open the body early.
    let mut pending_fn: Option<u32> = None;
    let mut sig_depth = 0i32;

    let mut i = 0usize;
    while i < tokens.len() {
        let top = *stack.last().unwrap_or(&base);
        let tok = &tokens[i];
        // Record scope facts for this token before mutating state, so the
        // opening brace / item keyword itself reports its outer scope.
        scopes.enclosing_fn.push(top.fn_idx);
        scopes.in_test.push(top.test);

        match tok.kind {
            TokenKind::LineComment | TokenKind::BlockComment | TokenKind::Shebang => {}
            TokenKind::Punct => match tok.text(src) {
                "#" => {
                    // An attribute group: `#[...]` (outer) or `#![...]`
                    // (inner). Scan to the matching `]` first, then record
                    // scope facts for the consumed range, noting whether the
                    // group mentions `test` (and is not a `not(test)` guard).
                    let mut j = i + 1;
                    let inner = tokens
                        .get(j)
                        .is_some_and(|t| t.kind == TokenKind::Punct && t.text(src) == "!");
                    if inner {
                        j += 1;
                    }
                    if tokens
                        .get(j)
                        .is_some_and(|t| t.kind == TokenKind::Punct && t.text(src) == "[")
                    {
                        let mut depth = 0i32;
                        let mut saw_test = false;
                        let mut saw_not = false;
                        let mut end = tokens.len() - 1;
                        let mut k = j;
                        while k < tokens.len() {
                            match (tokens[k].kind, tokens[k].text(src)) {
                                (TokenKind::Punct, "[") => depth += 1,
                                (TokenKind::Punct, "]") => {
                                    depth -= 1;
                                    if depth == 0 {
                                        end = k;
                                        break;
                                    }
                                }
                                (TokenKind::Ident, "test") => saw_test = true,
                                (TokenKind::Ident, "not") => saw_not = true,
                                _ => {}
                            }
                            k += 1;
                        }
                        // Attribute tokens share the outer scope facts.
                        for _ in (i + 1)..=end {
                            scopes.enclosing_fn.push(top.fn_idx);
                            scopes.in_test.push(top.test);
                        }
                        if !inner && saw_test && !saw_not {
                            pending_test = true;
                        }
                        i = end + 1;
                        continue;
                    }
                }
                "(" | "[" if pending_fn.is_some() => sig_depth += 1,
                ")" | "]" if pending_fn.is_some() => sig_depth -= 1,
                ";" if sig_depth == 0 => {
                    // Trait method declaration or attributed non-brace
                    // item: drop pending header/attr state.
                    pending_fn = None;
                    pending_test = false;
                    pending_applies = false;
                }
                "{" => {
                    let frame = if let Some(fn_idx) = pending_fn.take() {
                        Frame {
                            fn_idx: Some(fn_idx),
                            test: top.test || pending_test,
                        }
                    } else if pending_applies {
                        Frame {
                            fn_idx: top.fn_idx,
                            test: top.test || pending_test,
                        }
                    } else {
                        Frame {
                            fn_idx: top.fn_idx,
                            test: top.test,
                        }
                    };
                    if pending_fn.is_none() {
                        pending_test = false;
                        pending_applies = false;
                        sig_depth = 0;
                    }
                    stack.push(frame);
                }
                "}" => {
                    stack.pop();
                }
                _ => {}
            },
            TokenKind::Ident => match tok.text(src) {
                // An item keyword makes any pending `#[...test...]` apply to
                // the next opened brace (fn bodies, `mod`/`impl` blocks).
                // Only an item header: `fn` followed by a name. A bare
                // `fn(` is a function-pointer type.
                "fn" if tokens
                    .get(i + 1)
                    .is_some_and(|t| t.kind == TokenKind::Ident) =>
                {
                    let name = tokens[i + 1].text(src);
                    scopes.fn_names.push(name.to_string());
                    pending_fn = Some((scopes.fn_names.len() - 1) as u32);
                    sig_depth = 0;
                }
                "mod" | "impl" | "trait" | "struct" | "enum" | "union" => {
                    pending_applies = true;
                }
                _ => {}
            },
            _ => {}
        }
        i += 1;
    }
    debug_assert_eq!(scopes.enclosing_fn.len(), tokens.len());
    scopes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scopes_for(src: &str) -> (Vec<crate::lexer::Token>, Scopes) {
        let tokens = lex(src);
        let scopes = analyze(src, &tokens, false);
        (tokens, scopes)
    }

    fn fact_at(
        src: &str,
        tokens: &[crate::lexer::Token],
        scopes: &Scopes,
        needle: &str,
    ) -> (Option<String>, bool) {
        let idx = tokens
            .iter()
            .position(|t| t.text(src) == needle)
            .unwrap_or_else(|| panic!("token {needle:?} not found"));
        (scopes.fn_name(idx).map(str::to_string), scopes.in_test[idx])
    }

    #[test]
    fn enclosing_fn_names_nest() {
        let src = "fn outer() { let a = 1; fn inner() { let b = 2; } let c = 3; }";
        let (tokens, scopes) = scopes_for(src);
        assert_eq!(
            fact_at(src, &tokens, &scopes, "a").0.as_deref(),
            Some("outer")
        );
        assert_eq!(
            fact_at(src, &tokens, &scopes, "b").0.as_deref(),
            Some("inner")
        );
        assert_eq!(
            fact_at(src, &tokens, &scopes, "c").0.as_deref(),
            Some("outer")
        );
    }

    #[test]
    fn cfg_test_module_marks_contents() {
        let src = "fn lib_code() { x; } #[cfg(test)] mod tests { fn helper() { y; } }";
        let (tokens, scopes) = scopes_for(src);
        assert_eq!(
            fact_at(src, &tokens, &scopes, "x"),
            (Some("lib_code".into()), false)
        );
        assert_eq!(
            fact_at(src, &tokens, &scopes, "y"),
            (Some("helper".into()), true)
        );
    }

    #[test]
    fn test_attribute_marks_single_fn() {
        let src = "#[test] fn checks() { a; } fn library() { b; }";
        let (tokens, scopes) = scopes_for(src);
        assert!(fact_at(src, &tokens, &scopes, "a").1);
        assert!(!fact_at(src, &tokens, &scopes, "b").1);
    }

    #[test]
    fn cfg_not_test_is_not_test_code() {
        let src = "#[cfg(not(test))] fn real() { a; }";
        let (tokens, scopes) = scopes_for(src);
        assert!(!fact_at(src, &tokens, &scopes, "a").1);
    }

    #[test]
    fn trait_method_declaration_does_not_leak() {
        let src = "trait T { fn declared(&self); } fn after() { a; }";
        let (tokens, scopes) = scopes_for(src);
        assert_eq!(
            fact_at(src, &tokens, &scopes, "a").0.as_deref(),
            Some("after")
        );
    }

    #[test]
    fn closures_stay_in_enclosing_fn() {
        let src = "fn hot() { let f = |x| { x + 1 }; }";
        let (tokens, scopes) = scopes_for(src);
        assert_eq!(
            fact_at(src, &tokens, &scopes, "1").0.as_deref(),
            Some("hot")
        );
    }

    #[test]
    fn cfg_test_impl_block() {
        let src = "#[cfg(test)] impl Thing { fn only_for_tests() { a; } }";
        let (tokens, scopes) = scopes_for(src);
        assert!(fact_at(src, &tokens, &scopes, "a").1);
    }

    #[test]
    fn file_level_test_flag() {
        let src = "fn anything() { a; }";
        let tokens = lex(src);
        let scopes = analyze(src, &tokens, true);
        let idx = tokens.iter().position(|t| t.text(src) == "a").unwrap();
        assert!(scopes.in_test[idx]);
    }

    #[test]
    fn path_classification() {
        assert!(path_is_test("tests/hot_path_alloc.rs"));
        assert!(path_is_test("crates/bench/benches/service_throughput.rs"));
        assert!(!path_is_test("crates/core/src/service.rs"));
    }
}
