//! Scope tracking over the token stream.
//!
//! Lints need context the lexer alone cannot give them: the name of the
//! enclosing `fn` item (for the hot-path manifest), whether a token sits in
//! test code (`#[test]` functions, `#[cfg(test)]` modules and impls, or files
//! under `tests/` / `benches/` / `examples/`), and — for the call-graph
//! passes — the full declaration facts of every `fn` item: its `impl`/trait
//! owner, whether its first parameter is a `self` receiver, and the token
//! range of its body. This module computes all of it in a single pass by
//! tracking brace frames and pending item attributes — no AST required.

use crate::lexer::{Token, TokenKind};

/// One `fn` item declaration, as seen by the scope pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnDecl {
    /// The declared name.
    pub name: String,
    /// 1-based source line of the name token.
    pub line: u32,
    /// The enclosing `impl` type or `trait` name when the fn is declared
    /// directly inside such a block (methods, associated fns, trait default
    /// methods). `None` for free fns — including fns nested in other fns.
    pub owner: Option<String>,
    /// For fns in an `impl Trait for Type` block: the trait's name. Lets
    /// call resolution accept a candidate when the caller names the trait
    /// (dyn dispatch) even though it never names the concrete type.
    pub trait_name: Option<String>,
    /// Whether the first parameter is a `self` receiver (`self`, `&self`,
    /// `&mut self`, `mut self`). Distinguishes methods from associated fns.
    pub has_self: bool,
    /// Whether the declaration has a body (`false` for trait method
    /// declarations and extern signatures, which end in `;`).
    pub has_body: bool,
    /// Token index of the body's opening `{` (valid only when `has_body`).
    pub body_start: u32,
    /// Token index of the body's closing `}` (valid only when `has_body`).
    pub body_end: u32,
    /// Whether the fn is test-only code (attribute, module, or file).
    pub is_test: bool,
}

/// Per-token scope facts, parallel to the token stream.
#[derive(Debug, Default)]
pub struct Scopes {
    /// For each token: index into `fn_items` of the innermost enclosing fn.
    pub enclosing_fn: Vec<Option<u32>>,
    /// For each token: whether it sits inside test-only code.
    pub in_test: Vec<bool>,
    /// Every fn item seen, in source order.
    pub fn_items: Vec<FnDecl>,
}

impl Scopes {
    /// The enclosing fn name for token `i`, if any.
    pub fn fn_name(&self, i: usize) -> Option<&str> {
        self.enclosing_fn[i].map(|idx| self.fn_items[idx as usize].name.as_str())
    }
}

#[derive(Clone, Copy)]
struct Frame {
    fn_idx: Option<u32>,
    test: bool,
    /// Index into the local owner-name table when this frame is an
    /// `impl`/`trait` block: fns declared directly in it belong to that type.
    owner: Option<u32>,
    /// Set on the frame that *is* fn `i`'s body, so the matching `}` can
    /// close the declaration's body range.
    body_of: Option<u32>,
}

/// True when the relative path denotes code that is test-only by location.
pub fn path_is_test(relative_path: &str) -> bool {
    relative_path
        .split('/')
        .any(|seg| seg == "tests" || seg == "benches" || seg == "examples")
}

/// Compute scopes for a lexed file. `file_is_test` marks the whole file as
/// test code (see [`path_is_test`]).
pub fn analyze(src: &str, tokens: &[Token], file_is_test: bool) -> Scopes {
    let mut scopes = Scopes {
        enclosing_fn: Vec::with_capacity(tokens.len()),
        in_test: Vec::with_capacity(tokens.len()),
        fn_items: Vec::new(),
    };
    let base = Frame {
        fn_idx: None,
        test: file_is_test,
        owner: None,
        body_of: None,
    };
    let mut stack: Vec<Frame> = Vec::new();
    let mut owners: Vec<String> = Vec::new();
    // Parallel to `owners`: the trait implemented by that block, if any.
    let mut owner_traits: Vec<Option<String>> = Vec::new();

    // Attribute state: `pending_test` is set by a `#[...]` group mentioning
    // `test`; it attaches to the brace frame of the next item keyword.
    let mut pending_test = false;
    let mut pending_applies = false;
    // Owner of the next opened `impl`/`trait` block, if its header named one.
    let mut pending_owner: Option<u32> = None;

    // Fn-header state: set at `fn name`, consumed by the body `{` (or
    // cancelled by `;` for trait method declarations). `sig_depth` tracks
    // parens/brackets so braces inside the signature's const expressions
    // don't open the body early.
    let mut pending_fn: Option<u32> = None;
    let mut sig_depth = 0i32;

    let mut i = 0usize;
    while i < tokens.len() {
        let top = *stack.last().unwrap_or(&base);
        let tok = &tokens[i];
        // Record scope facts for this token before mutating state, so the
        // opening brace / item keyword itself reports its outer scope.
        scopes.enclosing_fn.push(top.fn_idx);
        scopes.in_test.push(top.test);

        match tok.kind {
            TokenKind::LineComment | TokenKind::BlockComment | TokenKind::Shebang => {}
            TokenKind::Punct => match tok.text(src) {
                "#" => {
                    // An attribute group: `#[...]` (outer) or `#![...]`
                    // (inner). Scan to the matching `]` first, then record
                    // scope facts for the consumed range, noting whether the
                    // group mentions `test` (and is not a `not(test)` guard).
                    let mut j = i + 1;
                    let inner = tokens
                        .get(j)
                        .is_some_and(|t| t.kind == TokenKind::Punct && t.text(src) == "!");
                    if inner {
                        j += 1;
                    }
                    if tokens
                        .get(j)
                        .is_some_and(|t| t.kind == TokenKind::Punct && t.text(src) == "[")
                    {
                        let mut depth = 0i32;
                        let mut saw_test = false;
                        let mut saw_not = false;
                        let mut end = tokens.len() - 1;
                        let mut k = j;
                        while k < tokens.len() {
                            match (tokens[k].kind, tokens[k].text(src)) {
                                (TokenKind::Punct, "[") => depth += 1,
                                (TokenKind::Punct, "]") => {
                                    depth -= 1;
                                    if depth == 0 {
                                        end = k;
                                        break;
                                    }
                                }
                                (TokenKind::Ident, "test") => saw_test = true,
                                (TokenKind::Ident, "not") => saw_not = true,
                                _ => {}
                            }
                            k += 1;
                        }
                        // Attribute tokens share the outer scope facts.
                        for _ in (i + 1)..=end {
                            scopes.enclosing_fn.push(top.fn_idx);
                            scopes.in_test.push(top.test);
                        }
                        if !inner && saw_test && !saw_not {
                            pending_test = true;
                        }
                        i = end + 1;
                        continue;
                    }
                }
                "(" | "[" if pending_fn.is_some() => sig_depth += 1,
                ")" | "]" if pending_fn.is_some() => sig_depth -= 1,
                ";" if sig_depth == 0 => {
                    // Trait method declaration or attributed non-brace
                    // item: drop pending header/attr state.
                    pending_fn = None;
                    pending_test = false;
                    pending_applies = false;
                    pending_owner = None;
                }
                "{" => {
                    let frame = if let Some(fn_idx) = pending_fn.take() {
                        let decl = &mut scopes.fn_items[fn_idx as usize];
                        decl.has_body = true;
                        decl.body_start = i as u32;
                        Frame {
                            fn_idx: Some(fn_idx),
                            test: top.test || pending_test,
                            // A fn body declares no methods: nested fns are
                            // free fns, not members of the enclosing impl.
                            owner: None,
                            body_of: Some(fn_idx),
                        }
                    } else if pending_applies {
                        Frame {
                            fn_idx: top.fn_idx,
                            test: top.test || pending_test,
                            owner: pending_owner,
                            body_of: None,
                        }
                    } else {
                        Frame {
                            fn_idx: top.fn_idx,
                            test: top.test,
                            owner: top.owner,
                            body_of: None,
                        }
                    };
                    if pending_fn.is_none() {
                        pending_test = false;
                        pending_applies = false;
                        pending_owner = None;
                        sig_depth = 0;
                    }
                    stack.push(frame);
                }
                "}" => {
                    if let Some(frame) = stack.pop() {
                        if let Some(fn_idx) = frame.body_of {
                            scopes.fn_items[fn_idx as usize].body_end = i as u32;
                        }
                    }
                }
                _ => {}
            },
            TokenKind::Ident => match tok.text(src) {
                // An item keyword makes any pending `#[...test...]` apply to
                // the next opened brace (fn bodies, `mod`/`impl` blocks).
                // Only an item header: `fn` followed by a name. A bare
                // `fn(` is a function-pointer type.
                "fn" if tokens
                    .get(i + 1)
                    .is_some_and(|t| t.kind == TokenKind::Ident) =>
                {
                    let name = tokens[i + 1].text(src);
                    scopes.fn_items.push(FnDecl {
                        name: name.to_string(),
                        line: tokens[i + 1].line,
                        owner: top.owner.map(|o| owners[o as usize].clone()),
                        trait_name: top.owner.and_then(|o| owner_traits[o as usize].clone()),
                        has_self: sig_has_self_receiver(src, tokens, i + 1),
                        has_body: false,
                        body_start: 0,
                        body_end: 0,
                        is_test: top.test || pending_test,
                    });
                    pending_fn = Some((scopes.fn_items.len() - 1) as u32);
                    sig_depth = 0;
                }
                // `impl`/`trait` headers name the owner of the methods their
                // block declares. `impl Trait` in a signature's type position
                // is not an item header — pending_fn guards that.
                "impl" if pending_fn.is_none() => {
                    pending_applies = true;
                    let (owner, trait_name) = parse_impl_header(src, tokens, i + 1);
                    pending_owner = owner.map(|name| {
                        owners.push(name);
                        owner_traits.push(trait_name);
                        (owners.len() - 1) as u32
                    });
                }
                "trait" if pending_fn.is_none() => {
                    pending_applies = true;
                    pending_owner = next_code_ident(src, tokens, i + 1).map(|name| {
                        owners.push(name.to_string());
                        owner_traits.push(None);
                        (owners.len() - 1) as u32
                    });
                }
                "mod" | "struct" | "enum" | "union" => {
                    pending_applies = true;
                }
                _ => {}
            },
            _ => {}
        }
        i += 1;
    }
    debug_assert_eq!(scopes.enclosing_fn.len(), tokens.len());
    scopes
}

/// Is token `i` a comment (skipped when scanning declarations)?
fn is_comment(tokens: &[Token], i: usize) -> bool {
    matches!(
        tokens[i].kind,
        TokenKind::LineComment | TokenKind::BlockComment | TokenKind::Shebang
    )
}

/// The next non-comment identifier at or after `start`, if the very next
/// code token is one.
fn next_code_ident<'s>(src: &'s str, tokens: &[Token], start: usize) -> Option<&'s str> {
    let mut i = start;
    while i < tokens.len() && is_comment(tokens, i) {
        i += 1;
    }
    let tok = tokens.get(i)?;
    (tok.kind == TokenKind::Ident).then(|| tok.text(src))
}

/// Does the parameter list of the fn whose name sits at `name_idx` start with
/// a `self` receiver (`self`, `&self`, `&'a self`, `&mut self`, `mut self`)?
fn sig_has_self_receiver(src: &str, tokens: &[Token], name_idx: usize) -> bool {
    // Find the parameter list's `(`, skipping a generic parameter list
    // (angle-bracket depth tracked; `->` inside bounds must not close it).
    let mut i = name_idx + 1;
    let mut angle = 0i32;
    let mut prev_minus = false;
    while i < tokens.len() {
        if is_comment(tokens, i) {
            i += 1;
            continue;
        }
        let text = tokens[i].text(src);
        match (tokens[i].kind, text) {
            (TokenKind::Punct, "<") => angle += 1,
            (TokenKind::Punct, ">") if !prev_minus => angle -= 1,
            (TokenKind::Punct, "(") if angle == 0 => {
                i += 1;
                break;
            }
            (TokenKind::Punct, "{" | ";") => return false,
            _ => {}
        }
        prev_minus = tokens[i].kind == TokenKind::Punct && text == "-";
        i += 1;
    }
    // The receiver: `&`s, lifetimes and `mut` may precede `self`.
    while i < tokens.len() {
        match (tokens[i].kind, tokens[i].text(src)) {
            (TokenKind::LineComment | TokenKind::BlockComment, _) => {}
            (TokenKind::Punct, "&") => {}
            (TokenKind::Lifetime, _) => {}
            (TokenKind::Ident, "mut") => {}
            (TokenKind::Ident, "self") => return true,
            _ => return false,
        }
        i += 1;
    }
    false
}

/// Extract the implemented-for type name (and implemented trait, if any)
/// from an `impl` header starting at `start` (the token after `impl`): the
/// last path segment of each, with generic arguments skipped —
/// `impl<'a> Foo<'a>` → `(Foo, None)`,
/// `impl fmt::Display for cluster::NodeId` → `(NodeId, Some(Display))`.
fn parse_impl_header(
    src: &str,
    tokens: &[Token],
    start: usize,
) -> (Option<String>, Option<String>) {
    let mut i = start;
    let mut angle = 0i32;
    let mut prev_minus = false;
    let mut current: Option<&str> = None;
    let mut trait_name: Option<&str> = None;
    while i < tokens.len() {
        if is_comment(tokens, i) {
            i += 1;
            continue;
        }
        let text = tokens[i].text(src);
        match (tokens[i].kind, text) {
            (TokenKind::Punct, "<") => angle += 1,
            (TokenKind::Punct, ">") if !prev_minus => angle -= 1,
            (TokenKind::Punct, "{" | ";") if angle <= 0 => break,
            (TokenKind::Ident, "where") if angle == 0 => break,
            // `impl Trait for Type`: the owner is the type, not the trait.
            (TokenKind::Ident, "for") if angle == 0 => {
                trait_name = current.take();
            }
            (TokenKind::Ident, "dyn" | "mut" | "const" | "unsafe") => {}
            (TokenKind::Ident, _) if angle == 0 => current = Some(text),
            _ => {}
        }
        prev_minus = tokens[i].kind == TokenKind::Punct && text == "-";
        i += 1;
    }
    (current.map(str::to_string), trait_name.map(str::to_string))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scopes_for(src: &str) -> (Vec<crate::lexer::Token>, Scopes) {
        let tokens = lex(src);
        let scopes = analyze(src, &tokens, false);
        (tokens, scopes)
    }

    fn fact_at(
        src: &str,
        tokens: &[crate::lexer::Token],
        scopes: &Scopes,
        needle: &str,
    ) -> (Option<String>, bool) {
        let idx = tokens
            .iter()
            .position(|t| t.text(src) == needle)
            .unwrap_or_else(|| panic!("token {needle:?} not found"));
        (scopes.fn_name(idx).map(str::to_string), scopes.in_test[idx])
    }

    #[test]
    fn enclosing_fn_names_nest() {
        let src = "fn outer() { let a = 1; fn inner() { let b = 2; } let c = 3; }";
        let (tokens, scopes) = scopes_for(src);
        assert_eq!(
            fact_at(src, &tokens, &scopes, "a").0.as_deref(),
            Some("outer")
        );
        assert_eq!(
            fact_at(src, &tokens, &scopes, "b").0.as_deref(),
            Some("inner")
        );
        assert_eq!(
            fact_at(src, &tokens, &scopes, "c").0.as_deref(),
            Some("outer")
        );
    }

    #[test]
    fn cfg_test_module_marks_contents() {
        let src = "fn lib_code() { x; } #[cfg(test)] mod tests { fn helper() { y; } }";
        let (tokens, scopes) = scopes_for(src);
        assert_eq!(
            fact_at(src, &tokens, &scopes, "x"),
            (Some("lib_code".into()), false)
        );
        assert_eq!(
            fact_at(src, &tokens, &scopes, "y"),
            (Some("helper".into()), true)
        );
    }

    #[test]
    fn test_attribute_marks_single_fn() {
        let src = "#[test] fn checks() { a; } fn library() { b; }";
        let (tokens, scopes) = scopes_for(src);
        assert!(fact_at(src, &tokens, &scopes, "a").1);
        assert!(!fact_at(src, &tokens, &scopes, "b").1);
    }

    #[test]
    fn cfg_not_test_is_not_test_code() {
        let src = "#[cfg(not(test))] fn real() { a; }";
        let (tokens, scopes) = scopes_for(src);
        assert!(!fact_at(src, &tokens, &scopes, "a").1);
    }

    #[test]
    fn trait_method_declaration_does_not_leak() {
        let src = "trait T { fn declared(&self); } fn after() { a; }";
        let (tokens, scopes) = scopes_for(src);
        assert_eq!(
            fact_at(src, &tokens, &scopes, "a").0.as_deref(),
            Some("after")
        );
    }

    #[test]
    fn closures_stay_in_enclosing_fn() {
        let src = "fn hot() { let f = |x| { x + 1 }; }";
        let (tokens, scopes) = scopes_for(src);
        assert_eq!(
            fact_at(src, &tokens, &scopes, "1").0.as_deref(),
            Some("hot")
        );
    }

    #[test]
    fn cfg_test_impl_block() {
        let src = "#[cfg(test)] impl Thing { fn only_for_tests() { a; } }";
        let (tokens, scopes) = scopes_for(src);
        assert!(fact_at(src, &tokens, &scopes, "a").1);
    }

    #[test]
    fn file_level_test_flag() {
        let src = "fn anything() { a; }";
        let tokens = lex(src);
        let scopes = analyze(src, &tokens, true);
        let idx = tokens.iter().position(|t| t.text(src) == "a").unwrap();
        assert!(scopes.in_test[idx]);
    }

    #[test]
    fn fn_decls_record_owner_and_receiver() {
        let src = "
impl Widget {
    fn method(&self, x: u32) -> u32 { x }
    fn assoc() -> Widget { Widget }
}
impl fmt::Display for cluster::NodeId {
    fn fmt(&mut self, f: &mut Formatter<'_>) -> fmt::Result { Ok(()) }
}
trait Source {
    fn declared(&self);
    fn defaulted(&self) -> u32 { 1 }
}
fn free<T: Fn() -> u32>(f: T) -> u32 { f() }
fn outer() { fn nested() {} }
";
        let (_, scopes) = scopes_for(src);
        let facts: Vec<(&str, Option<&str>, bool, bool)> = scopes
            .fn_items
            .iter()
            .map(|d| (d.name.as_str(), d.owner.as_deref(), d.has_self, d.has_body))
            .collect();
        assert_eq!(
            facts,
            vec![
                ("method", Some("Widget"), true, true),
                ("assoc", Some("Widget"), false, true),
                ("fmt", Some("NodeId"), true, true),
                ("declared", Some("Source"), true, false),
                ("defaulted", Some("Source"), true, true),
                ("free", None, false, true),
                ("outer", None, false, true),
                ("nested", None, false, true),
            ]
        );
        let traits: Vec<Option<&str>> = scopes
            .fn_items
            .iter()
            .map(|d| d.trait_name.as_deref())
            .collect();
        assert_eq!(
            traits,
            vec![None, None, Some("Display"), None, None, None, None, None,]
        );
    }

    #[test]
    fn fn_body_ranges_cover_exactly_the_body() {
        let src = "fn a() { inner(); } fn b() { other(); }";
        let (tokens, scopes) = scopes_for(src);
        let a = &scopes.fn_items[0];
        let b = &scopes.fn_items[1];
        assert!(a.has_body && b.has_body);
        let text_of = |d: &FnDecl| {
            (d.body_start..=d.body_end)
                .map(|i| tokens[i as usize].text(src))
                .collect::<Vec<_>>()
                .join(" ")
        };
        assert_eq!(text_of(a), "{ inner ( ) ; }");
        assert_eq!(text_of(b), "{ other ( ) ; }");
    }

    #[test]
    fn impl_trait_in_signature_does_not_become_an_owner() {
        let src =
            "fn takes(x: impl Iterator<Item = u32>) -> u32 { helper() } fn helper() -> u32 { 1 }";
        let (_, scopes) = scopes_for(src);
        assert_eq!(scopes.fn_items[0].owner, None);
        assert_eq!(scopes.fn_items[1].owner, None);
    }

    #[test]
    fn test_attribute_marks_fn_decl() {
        let src = "#[test] fn checks() {} fn library() {}";
        let (_, scopes) = scopes_for(src);
        assert!(scopes.fn_items[0].is_test);
        assert!(!scopes.fn_items[1].is_test);
    }

    #[test]
    fn path_classification() {
        assert!(path_is_test("tests/hot_path_alloc.rs"));
        assert!(path_is_test("crates/bench/benches/service_throughput.rs"));
        assert!(!path_is_test("crates/core/src/service.rs"));
    }
}
