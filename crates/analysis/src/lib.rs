//! Workspace invariant analyzer.
//!
//! A custom, dependency-free lint engine that machine-checks the invariants
//! this workspace's performance and reproducibility story rests on:
//!
//! - **atomics-discipline** — every `Ordering::Relaxed`/`SeqCst` use carries
//!   an `// ordering:` justification comment, and the telemetry handoff
//!   protocol files pair Acquire loads with Release stores.
//! - **hot-path-alloc** — the steady-state scheduling chain (the functions
//!   named in `lint.toml`'s hot-path manifest) contains no allocating tokens.
//!   Its dynamic counterpart is `tests/hot_path_alloc.rs`, which proves the
//!   same property at runtime with a counting global allocator.
//! - **panic-surface** — `.unwrap()`/`.expect()`/`panic!`/`todo!` are banned
//!   in non-test library code unless allowlisted per-site with a reason.
//! - **determinism** — modules feeding pinned fixed-seed artifacts must not
//!   read wall clocks or use hash-randomized containers.
//! - **unsafe-forbid** — every crate root carries `#![forbid(unsafe_code)]`.
//!
//! Run it with `cargo run -p analysis --release -- check`. Diagnostics are
//! `file:line: [lint-name] message`; the exit code is nonzero when any
//! finding survives the checked-in baseline (which ships empty).
#![forbid(unsafe_code)]

pub mod config;
pub mod engine;
pub mod lexer;
pub mod lints;
pub mod scope;
