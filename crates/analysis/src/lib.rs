//! Workspace invariant analyzer.
//!
//! A custom, dependency-free lint engine that machine-checks the invariants
//! this workspace's performance and reproducibility story rests on:
//!
//! - **atomics-discipline** — every `Ordering::Relaxed`/`SeqCst` use carries
//!   an `// ordering:` justification comment, and the telemetry handoff
//!   protocol files pair Acquire loads with Release stores.
//! - **hot-path-alloc** — the steady-state scheduling chain contains no
//!   allocating tokens. The enforced set is *derived*: the call-graph
//!   closure from `[hot_path] roots` (minus stopped cold branches), plus
//!   pins. Its dynamic counterpart is `tests/hot_path_alloc.rs`, which
//!   proves the same property at runtime with a counting global allocator.
//! - **hot-path-closure** — `lint.toml` stays coherent with the derivation:
//!   `functions` entries must be derivable, pins must not be, and every
//!   root/stop/pin spec must resolve.
//! - **panic-reachability** — every panic site reachable from the decision
//!   roots is reported with its call chain; allow entries covering
//!   reachable sites need a `hot-path:` justification tier.
//! - **blocking-on-read-path** — no locks, channel receives, or condvar
//!   waits reachable from the published-snapshot read path.
//! - **panic-surface** — `.unwrap()`/`.expect()`/`panic!`/`todo!` are banned
//!   in non-test library code unless allowlisted per-site with a reason.
//! - **stale-allowlist** — allow entries that no longer match any
//!   would-fire site are findings.
//! - **determinism** — modules feeding pinned fixed-seed artifacts must not
//!   read wall clocks or use hash-randomized containers.
//! - **unsafe-forbid** — every crate root carries `#![forbid(unsafe_code)]`.
//!
//! The call-graph layer ([`items`] → [`graph`] → [`reach`]) indexes every
//! fn with its crate/file/`impl`-trait owner, resolves call edges by name
//! with conservative ambiguity (reachability over-approximates rather than
//! misses), and answers `cargo run -p analysis -- graph [--why path::fn]`
//! queries with printable call chains.
//!
//! Run the lints with `cargo run -p analysis --release -- check`.
//! Diagnostics are `file:line: [lint-name] message`; the exit code is
//! nonzero when any finding survives the checked-in baseline (ships empty).
#![forbid(unsafe_code)]

pub mod config;
pub mod engine;
pub mod graph;
pub mod items;
pub mod lexer;
pub mod lints;
pub mod reach;
pub mod scope;
