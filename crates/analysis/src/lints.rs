//! The invariant lints.
//!
//! Every lint runs over the same inputs — the token stream, its scope facts,
//! and the config — and appends [`Finding`]s. Test code (by attribute,
//! module, or directory) is exempt everywhere: the invariants protect the
//! shipped library surface, not the harnesses that validate it.

use crate::config::{AllowEntry, Config};
use crate::items::{path_matches, FnSpec};
use crate::lexer::{Token, TokenKind};
use crate::scope::Scopes;
use std::collections::BTreeSet;

pub const ATOMICS: &str = "atomics-discipline";
pub const HOT_PATH: &str = "hot-path-alloc";
pub const PANIC: &str = "panic-surface";
pub const DETERMINISM: &str = "determinism";
pub const UNSAFE_FORBID: &str = "unsafe-forbid";
pub const STALE_ALLOW: &str = "stale-allowlist";

/// One diagnostic, rendered as `file:line: [lint] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub lint: &'static str,
    pub message: String,
}

impl Finding {
    /// The line-agnostic identity used for baseline suppression, so a
    /// baselined finding does not resurface every time the file shifts.
    pub fn baseline_key(&self) -> String {
        format!("{}: [{}] {}", self.file, self.lint, self.message)
    }

    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// Everything the lints know about one file.
pub struct FileInput<'a> {
    /// Workspace-relative path with forward slashes.
    pub path: &'a str,
    pub src: &'a str,
    pub tokens: &'a [Token],
    pub scopes: &'a Scopes,
    /// Is this file a crate root (`src/lib.rs`) that must carry
    /// `#![forbid(unsafe_code)]`?
    pub is_crate_root: bool,
}

/// Comment-derived line facts for justification lookups.
struct CommentLines {
    /// Every line covered by any comment.
    commented: BTreeSet<u32>,
    /// Lines covered by a comment containing the `ordering:` marker.
    ordering_marker: BTreeSet<u32>,
}

impl CommentLines {
    fn build(src: &str, tokens: &[Token]) -> CommentLines {
        let mut commented = BTreeSet::new();
        let mut ordering_marker = BTreeSet::new();
        for t in tokens {
            if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
                continue;
            }
            let text = t.text(src);
            let end_line = t.line + text.matches('\n').count() as u32;
            let has_marker = text.contains("ordering:");
            for line in t.line..=end_line {
                commented.insert(line);
                if has_marker {
                    ordering_marker.insert(line);
                }
            }
        }
        CommentLines {
            commented,
            ordering_marker,
        }
    }

    /// Is an atomic use at `line` justified? Accepts a marker comment on the
    /// same line or anywhere in the contiguous comment block directly above.
    fn justified(&self, line: u32) -> bool {
        if self.ordering_marker.contains(&line) {
            return true;
        }
        let mut k = line.saturating_sub(1);
        while k > 0 && self.commented.contains(&k) {
            if self.ordering_marker.contains(&k) {
                return true;
            }
            k -= 1;
        }
        false
    }
}

fn path_has_prefix(path: &str, prefix: &str) -> bool {
    path == prefix || path.starts_with(&format!("{prefix}/")) || {
        // A file prefix (e.g. `crates/core/src/serde_impls.rs`) matches
        // exactly that file.
        prefix.ends_with(".rs") && path == prefix
    }
}

fn allowed(allow: &[AllowEntry], path: &str, token: &str) -> bool {
    allow
        .iter()
        .any(|e| e.token == token && path_matches(path, &e.file))
}

/// Sites the allowlists could match, collected across every scanned file —
/// whether or not an entry suppressed them. [`stale_allow_findings`] diffs
/// the allowlists against this log so entries cannot outlive their sites.
#[derive(Debug, Default)]
pub struct SiteLog {
    /// (file, token) of every panic-surface site that would fire absent an
    /// allowlist entry.
    panic: BTreeSet<(String, String)>,
    /// Likewise for determinism sites in scoped modules.
    determinism: BTreeSet<(String, String)>,
}

/// After all files ran, flag allowlist entries matching no logged site.
pub fn stale_allow_findings(config: &Config, log: &SiteLog, findings: &mut Vec<Finding>) {
    let mut check = |entries: &[AllowEntry], sites: &BTreeSet<(String, String)>, table: &str| {
        for entry in entries {
            let live = sites
                .iter()
                .any(|(file, token)| *token == entry.token && path_matches(file, &entry.file));
            if !live {
                findings.push(Finding {
                    file: "lint.toml".to_string(),
                    line: entry.line,
                    lint: STALE_ALLOW,
                    message: format!(
                        "[[{table}]] entry for `{}` in `{}` matches no site in the \
                         workspace; remove it",
                        entry.token, entry.file
                    ),
                });
            }
        }
    };
    check(&config.panic_allow, &log.panic, "panic.allow");
    check(
        &config.determinism_allow,
        &log.determinism,
        "determinism.allow",
    );
}

/// Run every lint over one file.
pub fn run_all(
    input: &FileInput<'_>,
    config: &Config,
    findings: &mut Vec<Finding>,
    log: &mut SiteLog,
) {
    // Indices of code tokens (comments and shebang dropped), so adjacency
    // checks (`.` before a method name, `!` after a macro name) see through
    // interleaved comments.
    let code: Vec<usize> = input
        .tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| {
            !matches!(
                t.kind,
                TokenKind::LineComment | TokenKind::BlockComment | TokenKind::Shebang
            )
        })
        .map(|(i, _)| i)
        .collect();
    let comments = CommentLines::build(input.src, input.tokens);
    let hot_entries: Vec<FnSpec<'_>> = config
        .hot_path_functions
        .iter()
        .map(|raw| FnSpec::parse(raw))
        .collect();
    let is_protocol_file = config
        .protocol_files
        .iter()
        .any(|f| path_matches(input.path, f));
    let determinism_scoped = config
        .determinism_modules
        .iter()
        .any(|m| path_has_prefix(input.path, m));
    let panic_skipped = config
        .panic_skip
        .iter()
        .any(|m| path_has_prefix(input.path, m));

    let text_at = |c: usize| input.tokens[code[c]].text(input.src);
    let kind_at = |c: usize| input.tokens[code[c]].kind;
    let punct_eq = |c: usize, p: &str| kind_at(c) == TokenKind::Punct && text_at(c) == p;
    let ident_eq = |c: usize, name: &str| kind_at(c) == TokenKind::Ident && text_at(c) == name;
    let push = |findings: &mut Vec<Finding>, line: u32, lint: &'static str, message: String| {
        findings.push(Finding {
            file: input.path.to_string(),
            line,
            lint,
            message,
        });
    };

    // Protocol pairing state for the atomics lint.
    let mut first_acquire: Option<u32> = None;
    let mut first_release: Option<u32> = None;
    let mut has_acquire = false;
    let mut has_release = false;

    for c in 0..code.len() {
        let idx = code[c];
        let tok = &input.tokens[idx];
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let in_test = input.scopes.in_test[idx];
        let text = tok.text(input.src);

        // --- atomics-discipline -------------------------------------------
        if matches!(
            text,
            "Relaxed" | "SeqCst" | "Acquire" | "Release" | "AcqRel"
        ) && c >= 3
            && punct_eq(c - 1, ":")
            && punct_eq(c - 2, ":")
            && ident_eq(c - 3, "Ordering")
            && !in_test
        {
            match text {
                "Relaxed" | "SeqCst" if !comments.justified(tok.line) => {
                    push(
                        findings,
                        tok.line,
                        ATOMICS,
                        format!(
                            "`Ordering::{text}` requires a same-line or preceding \
                             `// ordering:` justification comment"
                        ),
                    );
                }
                "Acquire" => {
                    has_acquire = true;
                    first_acquire.get_or_insert(tok.line);
                }
                "Release" => {
                    has_release = true;
                    first_release.get_or_insert(tok.line);
                }
                "AcqRel" => {
                    has_acquire = true;
                    has_release = true;
                }
                _ => {}
            }
        }

        // --- hot-path-alloc -----------------------------------------------
        if !in_test {
            if let Some(fn_name) = input.scopes.fn_name(idx) {
                if hot_entries.iter().any(|e| e.matches(input.path, fn_name)) {
                    let next_is_bang = c + 1 < code.len() && punct_eq(c + 1, "!");
                    let prev_is_dot = c > 0 && punct_eq(c - 1, ".");
                    let next_is_path_new = c + 3 < code.len()
                        && punct_eq(c + 1, ":")
                        && punct_eq(c + 2, ":")
                        && ident_eq(c + 3, "new");
                    let banned = match text {
                        "vec" | "format" if next_is_bang => Some(format!("`{text}!`")),
                        "to_string" | "to_owned" | "collect" if prev_is_dot => {
                            Some(format!("`.{text}()`"))
                        }
                        "Vec" | "Box" if next_is_path_new => Some(format!("`{text}::new`")),
                        _ => None,
                    };
                    if let Some(what) = banned {
                        push(
                            findings,
                            tok.line,
                            HOT_PATH,
                            format!("allocating token {what} in hot-path fn `{fn_name}`"),
                        );
                    }
                }
            }
        }

        // --- panic-surface ------------------------------------------------
        if !in_test && !panic_skipped {
            let next_is_bang = c + 1 < code.len() && punct_eq(c + 1, "!");
            let prev_is_dot = c > 0 && punct_eq(c - 1, ".");
            let hit = match text {
                "unwrap" | "expect" if prev_is_dot => true,
                "panic" | "todo" | "unimplemented" if next_is_bang => true,
                _ => false,
            };
            if hit {
                log.panic.insert((input.path.to_string(), text.to_string()));
                if !allowed(&config.panic_allow, input.path, text) {
                    let what = if prev_is_dot {
                        format!("`.{text}()`")
                    } else {
                        format!("`{text}!`")
                    };
                    push(
                        findings,
                        tok.line,
                        PANIC,
                        format!(
                            "{what} on the non-test library panic surface \
                             (return an error, or allowlist in lint.toml with a reason)"
                        ),
                    );
                }
            }
        }

        // --- determinism --------------------------------------------------
        if determinism_scoped && !in_test {
            let next_is_now = c + 3 < code.len()
                && punct_eq(c + 1, ":")
                && punct_eq(c + 2, ":")
                && ident_eq(c + 3, "now");
            let hit = match text {
                "SystemTime" | "Instant" if next_is_now => {
                    Some(format!("`{text}::now` reads the wall clock"))
                }
                "HashMap" | "HashSet" => {
                    Some(format!("`{text}` has nondeterministic iteration order"))
                }
                _ => None,
            };
            if let Some(why) = hit {
                log.determinism
                    .insert((input.path.to_string(), text.to_string()));
                if !allowed(&config.determinism_allow, input.path, text) {
                    push(
                        findings,
                        tok.line,
                        DETERMINISM,
                        format!(
                            "{why}; this module feeds pinned fixed-seed artifacts \
                             (use BTreeMap/BTreeSet or sim time, or allowlist with a reason)"
                        ),
                    );
                }
            }
        }
    }

    // File-level atomics pairing for protocol files: an Acquire load without
    // any Release(-or-AcqRel) store in the same file (or vice versa) means
    // the handoff protocol is incomplete on one side.
    if is_protocol_file {
        if has_acquire && !has_release {
            push(
                findings,
                first_acquire.unwrap_or(1),
                ATOMICS,
                "protocol file performs Acquire loads but no Release (or AcqRel) store \
                 — the publication side of the handoff is missing"
                    .to_string(),
            );
        }
        if has_release && !has_acquire {
            push(
                findings,
                first_release.unwrap_or(1),
                ATOMICS,
                "protocol file performs Release stores but no Acquire (or AcqRel) load \
                 — the consumption side of the handoff is missing"
                    .to_string(),
            );
        }
    }

    // --- unsafe-forbid ----------------------------------------------------
    if input.is_crate_root && !has_forbid_unsafe(input.src, input.tokens, &code) {
        push(
            findings,
            1,
            UNSAFE_FORBID,
            "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        );
    }
}

/// Does the token stream contain an inner `#![forbid(..., unsafe_code, ...)]`
/// attribute?
fn has_forbid_unsafe(src: &str, tokens: &[Token], code: &[usize]) -> bool {
    for c in 0..code.len() {
        let at = |k: usize| &tokens[code[k]];
        if !(at(c).kind == TokenKind::Punct && at(c).text(src) == "#") {
            continue;
        }
        if c + 2 >= code.len()
            || !(at(c + 1).kind == TokenKind::Punct && at(c + 1).text(src) == "!")
            || !(at(c + 2).kind == TokenKind::Punct && at(c + 2).text(src) == "[")
        {
            continue;
        }
        let mut depth = 0i32;
        let mut saw_forbid = false;
        let mut saw_unsafe_code = false;
        for k in (c + 2)..code.len() {
            let t = at(k);
            match (t.kind, t.text(src)) {
                (TokenKind::Punct, "[") => depth += 1,
                (TokenKind::Punct, "]") => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                (TokenKind::Ident, "forbid") => saw_forbid = true,
                (TokenKind::Ident, "unsafe_code") => saw_unsafe_code = true,
                _ => {}
            }
        }
        if saw_forbid && saw_unsafe_code {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scope;

    fn run(path: &str, src: &str, config: &Config) -> Vec<Finding> {
        let tokens = lex(src);
        let scopes = scope::analyze(src, &tokens, scope::path_is_test(path));
        let input = FileInput {
            path,
            src,
            tokens: &tokens,
            scopes: &scopes,
            is_crate_root: path.ends_with("src/lib.rs"),
        };
        let mut findings = Vec::new();
        let mut log = SiteLog::default();
        run_all(&input, config, &mut findings, &mut log);
        findings
    }

    fn config() -> Config {
        Config {
            include: vec!["crates".into()],
            hot_path_functions: vec![
                "schedule_batch_into".into(),
                "a/special.rs::snapshot_into".into(),
            ],
            determinism_modules: vec!["crates/experiments/src".into()],
            protocol_files: vec!["crates/telemetry/src/publish.rs".into()],
            ..Default::default()
        }
    }

    #[test]
    fn relaxed_without_justification_fires() {
        let src = "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }";
        let findings = run("crates/x/src/lib.rs", src, &config());
        assert!(findings.iter().any(|f| f.lint == ATOMICS));
    }

    #[test]
    fn justified_relaxed_is_clean() {
        let src = "fn f(c: &AtomicU64) {\n    // ordering: counter only\n    c.fetch_add(1, Ordering::Relaxed);\n}";
        let findings = run("crates/x/src/lib.rs", src, &config());
        assert!(!findings.iter().any(|f| f.lint == ATOMICS), "{findings:?}");
    }

    #[test]
    fn cmp_ordering_variants_do_not_fire() {
        let src = "fn f() -> std::cmp::Ordering { std::cmp::Ordering::Equal }";
        let findings = run("crates/x/src/lib.rs", src, &config());
        assert!(!findings.iter().any(|f| f.lint == ATOMICS));
    }

    #[test]
    fn protocol_pairing_detects_missing_release() {
        let src = "fn f(e: &AtomicU64) -> u64 { e.load(Ordering::Acquire) }";
        let findings = run("crates/telemetry/src/publish.rs", src, &config());
        assert!(findings
            .iter()
            .any(|f| f.lint == ATOMICS && f.message.contains("Release")));
    }

    #[test]
    fn hot_path_bans_allocating_tokens_by_fn_name() {
        let src = r#"
fn schedule_batch_into(n: usize) {
    let v = vec![0; n];
    let s = format!("x{n}");
    let t = s.to_string();
    let o = s.to_owned();
    let c: Vec<u32> = (0..n as u32).collect();
    let b = Box::new(n);
    let w = Vec::new();
}
fn cold_path() {
    let v = vec![0; 3]; // fine here
}
"#;
        let findings = run("crates/core/src/service.rs", src, &config());
        let hot: Vec<&Finding> = findings.iter().filter(|f| f.lint == HOT_PATH).collect();
        assert_eq!(hot.len(), 7, "{hot:?}");
        assert!(hot
            .iter()
            .all(|f| f.message.contains("schedule_batch_into")));
    }

    #[test]
    fn file_scoped_hot_path_entry() {
        let src = "fn snapshot_into() { let v = Vec::new(); }";
        let scoped = run("crates/t/a/special.rs", src, &config());
        assert!(scoped.iter().any(|f| f.lint == HOT_PATH));
        let elsewhere = run("crates/t/src/other.rs", src, &config());
        assert!(!elsewhere.iter().any(|f| f.lint == HOT_PATH));
    }

    #[test]
    fn panic_surface_bans_and_allowlists() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        let findings = run("crates/x/src/lib.rs", src, &config());
        assert!(findings.iter().any(|f| f.lint == PANIC));

        let mut allowing = config();
        allowing.panic_allow.push(AllowEntry {
            file: "crates/x/src/lib.rs".into(),
            token: "unwrap".into(),
            reason: "test allow".into(),
            line: 1,
        });
        let findings = run("crates/x/src/lib.rs", src, &allowing);
        assert!(!findings.iter().any(|f| f.lint == PANIC));
    }

    #[test]
    fn panic_surface_skips_test_code() {
        let src = "#[cfg(test)] mod tests { fn h() { None::<u32>.unwrap(); panic!(\"x\"); } }";
        let findings = run("crates/x/src/lib.rs", src, &config());
        assert!(!findings.iter().any(|f| f.lint == PANIC));
        let in_tests_dir = run(
            "tests/integration.rs",
            "fn f() { None::<u32>.unwrap(); }",
            &config(),
        );
        assert!(!in_tests_dir.iter().any(|f| f.lint == PANIC));
    }

    #[test]
    fn determinism_scoped_to_modules() {
        let src =
            "fn f() { let t = Instant::now(); let m: HashMap<u32, u32> = HashMap::default(); }";
        let scoped = run("crates/experiments/src/lib.rs", src, &config());
        assert!(scoped
            .iter()
            .any(|f| f.lint == DETERMINISM && f.message.contains("Instant")));
        assert!(scoped
            .iter()
            .any(|f| f.lint == DETERMINISM && f.message.contains("HashMap")));
        let unscoped = run("crates/core/src/lib.rs", src, &config());
        assert!(!unscoped.iter().any(|f| f.lint == DETERMINISM));
    }

    #[test]
    fn stale_allow_entries_are_findings() {
        let mut config = config();
        config.panic_allow.push(AllowEntry {
            file: "crates/x/src/lib.rs".into(),
            token: "unwrap".into(),
            reason: "live entry".into(),
            line: 10,
        });
        config.panic_allow.push(AllowEntry {
            file: "crates/x/src/lib.rs".into(),
            token: "expect".into(),
            reason: "nothing matches this".into(),
            line: 20,
        });
        config.determinism_allow.push(AllowEntry {
            file: "crates/experiments/src/lib.rs".into(),
            token: "Instant".into(),
            reason: "no Instant in scope".into(),
            line: 30,
        });
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        let tokens = lex(src);
        let scopes = scope::analyze(src, &tokens, false);
        let input = FileInput {
            path: "crates/x/src/lib.rs",
            src,
            tokens: &tokens,
            scopes: &scopes,
            is_crate_root: false,
        };
        let mut findings = Vec::new();
        let mut log = SiteLog::default();
        run_all(&input, &config, &mut findings, &mut log);
        stale_allow_findings(&config, &log, &mut findings);
        let stale: Vec<&Finding> = findings.iter().filter(|f| f.lint == STALE_ALLOW).collect();
        assert_eq!(stale.len(), 2, "{stale:?}");
        assert!(stale
            .iter()
            .any(|f| f.line == 20 && f.message.contains("panic.allow")));
        assert!(stale
            .iter()
            .any(|f| f.line == 30 && f.message.contains("determinism.allow")));
        // The live unwrap entry is not flagged even though it suppressed
        // its finding.
        assert!(!findings.iter().any(|f| f.lint == PANIC));
    }

    #[test]
    fn unsafe_forbid_on_crate_roots_only() {
        let missing = run("crates/x/src/lib.rs", "pub fn f() {}", &config());
        assert!(missing.iter().any(|f| f.lint == UNSAFE_FORBID));
        let present = run(
            "crates/x/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}",
            &config(),
        );
        assert!(!present.iter().any(|f| f.lint == UNSAFE_FORBID));
        let non_root = run("crates/x/src/util.rs", "pub fn f() {}", &config());
        assert!(!non_root.iter().any(|f| f.lint == UNSAFE_FORBID));
    }
}
