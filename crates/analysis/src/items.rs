//! Workspace item indexing.
//!
//! The call-graph passes need a whole-workspace view of every `fn` item —
//! its crate, file, and `impl`/trait owner — plus the crate dependency
//! structure, so that call-edge resolution can reject edges the build graph
//! makes impossible (a crate cannot call into a crate it does not depend
//! on). Both are derived without an AST: fn facts come from the scope pass,
//! crate facts from a minimal read of the workspace `Cargo.toml`s.

use crate::lexer::Token;
use crate::scope::Scopes;
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// One scanned source file with its lexed and scoped form.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    pub src: String,
    pub tokens: Vec<Token>,
    pub scopes: Scopes,
}

/// One `fn` item in the workspace, with everything resolution needs.
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    /// Workspace-relative file path.
    pub file: String,
    /// Crate key (package name with `-` normalized to `_`).
    pub krate: String,
    /// `impl` type or trait name when declared inside such a block.
    pub owner: Option<String>,
    /// The trait implemented by the declaring `impl Trait for Type` block.
    pub trait_name: Option<String>,
    /// 1-based line of the fn name.
    pub line: u32,
    pub has_self: bool,
    pub has_body: bool,
    pub is_test: bool,
    /// Binary-target fns (`src/bin/*`, `src/main.rs`) are only callable
    /// from their own file — no library path reaches them.
    pub bin_scoped: bool,
    /// Index into the scanned file list.
    pub file_idx: u32,
}

impl FnItem {
    /// The canonical `file::name` spec used in CLI output and diagnostics.
    pub fn spec(&self) -> String {
        format!("{}::{}", self.file, self.name)
    }

    /// Display name for call chains: `Owner::name` or bare `name`. Stable
    /// across line shifts, so safe inside baseline-keyed messages.
    pub fn display(&self) -> String {
        match &self.owner {
            Some(owner) => format!("{owner}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A config-side function spec: a fn name, optionally scoped to one file via
/// `path::fn_name` (the path part matched as a suffix). Scoping matters when
/// several impls share a method name.
pub struct FnSpec<'c> {
    pub file: Option<&'c str>,
    pub function: &'c str,
}

impl<'c> FnSpec<'c> {
    pub fn parse(raw: &'c str) -> FnSpec<'c> {
        match raw.rsplit_once("::") {
            Some((file, function)) => FnSpec {
                file: Some(file),
                function,
            },
            None => FnSpec {
                file: None,
                function: raw,
            },
        }
    }

    pub fn matches(&self, path: &str, fn_name: &str) -> bool {
        self.function == fn_name && self.file.is_none_or(|f| path_matches(path, f))
    }

    pub fn matches_item(&self, item: &FnItem) -> bool {
        self.matches(&item.file, &item.name)
    }
}

/// Does `path` match the config path `pattern` (exact or suffix)?
pub fn path_matches(path: &str, pattern: &str) -> bool {
    path == pattern || path.ends_with(&format!("/{pattern}")) || path.ends_with(pattern)
}

/// The workspace crate structure: which crate each file belongs to and which
/// crates each crate can reach through its dependency edges.
pub struct CrateMap {
    /// `crates/<dir>` → crate key.
    pub(crate) dir_to_key: BTreeMap<String, String>,
    /// Crate key → transitively reachable dependency crate keys (workspace
    /// members only; external crates are invisible to the scan anyway).
    pub(crate) reachable: BTreeMap<String, BTreeSet<String>>,
    /// Crate key for files outside `crates/` (the root package).
    root_key: String,
}

impl CrateMap {
    /// A degenerate map for tests and fixture trees without `Cargo.toml`s:
    /// every file belongs to one crate, so no edge is crate-filtered.
    pub fn single(key: &str) -> CrateMap {
        CrateMap {
            dir_to_key: BTreeMap::new(),
            reachable: BTreeMap::new(),
            root_key: key.to_string(),
        }
    }

    /// Read the workspace and member `Cargo.toml`s under `root`. Missing or
    /// unparsable manifests degrade to [`CrateMap::single`] rather than
    /// failing: crate filtering is a precision refinement, not a gate.
    pub fn load(root: &Path) -> CrateMap {
        let Ok(root_manifest) = std::fs::read_to_string(root.join("Cargo.toml")) else {
            return CrateMap::single("workspace");
        };
        let root_pkg = manifest_package_name(&root_manifest).unwrap_or("workspace".to_string());
        let root_key = normalize(&root_pkg);

        // Member manifests: `crates/<dir>/Cargo.toml` gives each dir its
        // package name and direct dependency list (by package name).
        let mut dir_to_key = BTreeMap::new();
        let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let mut keys: BTreeSet<String> = BTreeSet::new();
        let crates_dir = root.join("crates");
        if let Ok(entries) = std::fs::read_dir(&crates_dir) {
            let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
            dirs.sort();
            for dir in dirs {
                let Ok(text) = std::fs::read_to_string(dir.join("Cargo.toml")) else {
                    continue;
                };
                let dirname = dir
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default();
                let key = manifest_package_name(&text)
                    .map(|n| normalize(&n))
                    .unwrap_or_else(|| normalize(&dirname));
                keys.insert(key.clone());
                direct.insert(
                    key.clone(),
                    manifest_dependency_names(&text)
                        .iter()
                        .map(|n| normalize(n))
                        .collect(),
                );
                dir_to_key.insert(dirname, key);
            }
        }
        keys.insert(root_key.clone());
        direct.insert(
            root_key.clone(),
            manifest_dependency_names(&root_manifest)
                .iter()
                .map(|n| normalize(n))
                .collect(),
        );

        // Keep only workspace-member deps, then take the transitive closure.
        let mut reachable: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for key in &keys {
            let mut seen: BTreeSet<String> = BTreeSet::new();
            let mut queue: Vec<String> = vec![key.clone()];
            while let Some(k) = queue.pop() {
                for dep in direct.get(&k).into_iter().flatten() {
                    if keys.contains(dep) && seen.insert(dep.clone()) {
                        queue.push(dep.clone());
                    }
                }
            }
            reachable.insert(key.clone(), seen);
        }
        CrateMap {
            dir_to_key,
            reachable,
            root_key,
        }
    }

    /// The crate key a workspace-relative file belongs to.
    pub fn crate_of(&self, rel: &str) -> String {
        if let Some(dir) = rel
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
        {
            return self
                .dir_to_key
                .get(dir)
                .cloned()
                .unwrap_or_else(|| normalize(dir));
        }
        self.root_key.clone()
    }

    /// Can code in crate `from` call into crate `to`? True when they are the
    /// same crate or `to` is a (transitive) dependency of `from`.
    pub fn can_call(&self, from: &str, to: &str) -> bool {
        from == to
            || self
                .reachable
                .get(from)
                .is_some_and(|deps| deps.contains(to))
    }
}

fn normalize(name: &str) -> String {
    name.replace('-', "_")
}

/// `name = "..."` from the `[package]` section of a manifest.
fn manifest_package_name(text: &str) -> Option<String> {
    let mut in_package = false;
    for raw in text.lines() {
        let line = raw.trim();
        if let Some(header) = line.strip_prefix('[') {
            in_package = header.trim_end_matches(']') == "package";
            continue;
        }
        if in_package {
            if let Some(value) = line.strip_prefix("name") {
                let value = value.trim_start();
                if let Some(rest) = value.strip_prefix('=') {
                    return Some(rest.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

/// The dependency package names from `[dependencies]` (and
/// `[dev-dependencies]`, which matter for the root package's `tests/`).
fn manifest_dependency_names(text: &str) -> Vec<String> {
    let mut names = Vec::new();
    let mut in_deps = false;
    for raw in text.lines() {
        let line = raw.trim();
        if let Some(header) = line.strip_prefix('[') {
            let header = header.trim_end_matches(']');
            in_deps = header == "dependencies" || header == "dev-dependencies";
            continue;
        }
        if !in_deps || line.is_empty() || line.starts_with('#') {
            continue;
        }
        // `foo = ...`, `foo.workspace = true`: the package name is the key
        // up to the first `.`, `=`, or whitespace.
        let name: String = line
            .chars()
            .take_while(|c| !matches!(c, '.' | '=' | ' ' | '\t'))
            .collect();
        if !name.is_empty() {
            names.push(name);
        }
    }
    names
}

/// The workspace-wide fn index.
pub struct ItemIndex {
    pub fns: Vec<FnItem>,
    /// fn name → indices into `fns`, for candidate lookup.
    by_name: BTreeMap<String, Vec<u32>>,
    /// Global index of the first fn of each scanned file.
    pub file_offsets: Vec<u32>,
}

impl ItemIndex {
    pub fn build(files: &[SourceFile], crates: &CrateMap) -> ItemIndex {
        let mut fns = Vec::new();
        let mut by_name: BTreeMap<String, Vec<u32>> = BTreeMap::new();
        let mut file_offsets = Vec::with_capacity(files.len());
        for (file_idx, file) in files.iter().enumerate() {
            file_offsets.push(fns.len() as u32);
            let krate = crates.crate_of(&file.rel);
            let bin_scoped = is_bin_path(&file.rel);
            for decl in &file.scopes.fn_items {
                let idx = fns.len() as u32;
                by_name.entry(decl.name.clone()).or_default().push(idx);
                fns.push(FnItem {
                    name: decl.name.clone(),
                    file: file.rel.clone(),
                    krate: krate.clone(),
                    owner: decl.owner.clone(),
                    trait_name: decl.trait_name.clone(),
                    line: decl.line,
                    has_self: decl.has_self,
                    has_body: decl.has_body,
                    is_test: decl.is_test,
                    bin_scoped,
                    file_idx: file_idx as u32,
                });
            }
        }
        ItemIndex {
            fns,
            by_name,
            file_offsets,
        }
    }

    /// Candidate fn indices sharing `name`.
    pub fn named(&self, name: &str) -> &[u32] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The global fn index for local declaration `local` of file `file_idx`.
    pub fn global(&self, file_idx: usize, local: u32) -> u32 {
        self.file_offsets[file_idx] + local
    }

    /// All fns matching a `path::fn_name` (or bare-name) spec.
    pub fn find_spec(&self, raw: &str) -> Vec<u32> {
        let spec = FnSpec::parse(raw);
        self.named(spec.function)
            .iter()
            .copied()
            .filter(|&i| spec.matches_item(&self.fns[i as usize]))
            .collect()
    }

    /// The module-path stem a file contributes (`scope.rs` → `scope`,
    /// `x/mod.rs` → `x`), used to resolve `module::fn` path calls.
    pub fn file_stem(rel: &str) -> &str {
        let mut segs = rel.rsplit('/');
        let last = segs.next().unwrap_or(rel);
        let stem = last.strip_suffix(".rs").unwrap_or(last);
        if stem == "mod" {
            segs.next().unwrap_or(stem)
        } else {
            stem
        }
    }
}

/// Binary targets: their fns are invisible to library callers.
fn is_bin_path(rel: &str) -> bool {
    rel.ends_with("/main.rs") || rel == "src/main.rs" || rel.split('/').any(|seg| seg == "bin")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lexer, scope};

    fn file(rel: &str, src: &str) -> SourceFile {
        let tokens = lexer::lex(src);
        let scopes = scope::analyze(src, &tokens, scope::path_is_test(rel));
        SourceFile {
            rel: rel.to_string(),
            src: src.to_string(),
            tokens,
            scopes,
        }
    }

    #[test]
    fn index_records_crate_owner_and_spec() {
        let files = vec![
            file(
                "crates/core/src/service.rs",
                "impl SchedulerService { fn schedule(&self) {} } fn free() {}",
            ),
            file("src/lib.rs", "fn rooty() {}"),
        ];
        let crates = CrateMap::single("one");
        let index = ItemIndex::build(&files, &crates);
        assert_eq!(index.fns.len(), 3);
        assert_eq!(index.fns[0].owner.as_deref(), Some("SchedulerService"));
        assert!(index.fns[0].has_self);
        assert_eq!(index.fns[0].spec(), "crates/core/src/service.rs::schedule");
        assert_eq!(index.named("free"), &[1]);
        assert_eq!(index.find_spec("service.rs::schedule"), vec![0]);
        assert_eq!(index.find_spec("schedule"), vec![0]);
        assert!(index.find_spec("other.rs::schedule").is_empty());
    }

    #[test]
    fn file_stems() {
        assert_eq!(ItemIndex::file_stem("crates/a/src/scope.rs"), "scope");
        assert_eq!(ItemIndex::file_stem("crates/a/src/net/mod.rs"), "net");
        assert_eq!(ItemIndex::file_stem("lib.rs"), "lib");
    }

    #[test]
    fn bin_paths_are_scoped() {
        assert!(is_bin_path("crates/experiments/src/bin/sweep.rs"));
        assert!(is_bin_path("src/main.rs"));
        assert!(!is_bin_path("crates/core/src/service.rs"));
    }

    #[test]
    fn crate_map_reads_real_workspace_shape() {
        // Exercise the manifest parsers on synthetic text rather than the
        // real tree, so the test pins behaviour, not repo layout.
        assert_eq!(
            manifest_package_name("[package]\nname = \"netsched-core\"\n"),
            Some("netsched-core".to_string())
        );
        assert_eq!(
            manifest_dependency_names(
                "[dependencies]\nserde.workspace = true\ncluster = { path = \"x\" }\n\
                 [features]\nfast = []\n"
            ),
            vec!["serde".to_string(), "cluster".to_string()]
        );
    }
}
