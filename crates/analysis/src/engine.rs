//! The analysis driver: walk the workspace, lex + scope every Rust file,
//! build the item index and call graph, run the token-level and graph-level
//! lints, subtract the baseline, and report.

use crate::config::Config;
use crate::graph::CallGraph;
use crate::items::{CrateMap, ItemIndex, SourceFile};
use crate::lexer;
use crate::lints::{self, Finding, SiteLog};
use crate::reach;
use crate::scope;
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

/// The outcome of a full `check` run.
pub struct Report {
    /// Findings not suppressed by the baseline, sorted for stable output.
    pub findings: Vec<Finding>,
    /// Findings suppressed by baseline entries.
    pub suppressed: usize,
    /// Number of files scanned.
    pub files_scanned: usize,
}

/// The fully parsed workspace: every scanned file with its tokens and
/// scopes, the fn-item index, and the call graph. `check` runs lints over
/// it; the `graph` CLI subcommand queries it directly.
pub struct Workspace {
    pub files: Vec<SourceFile>,
    pub index: ItemIndex,
    pub graph: CallGraph,
}

/// Load the baseline file: one line-agnostic finding key per line, `#`
/// comments and blank lines ignored. A missing file is an empty baseline.
pub fn load_baseline(path: &Path) -> Result<BTreeSet<String>, String> {
    let text = match fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(BTreeSet::new()),
        Err(e) => return Err(format!("cannot read baseline {}: {e}", path.display())),
    };
    Ok(text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect())
}

/// Walk, read, lex, and scope every included file, then build the item
/// index and call graph over the result.
pub fn parse_workspace(root: &Path, config: &Config) -> Result<Workspace, String> {
    let mut paths: Vec<PathBuf> = Vec::new();
    for include in &config.include {
        // `.` scans the root itself without polluting relative paths.
        let base = if include == "." {
            root.to_path_buf()
        } else {
            root.join(include)
        };
        if !base.exists() {
            return Err(format!(
                "include path `{include}` does not exist under {}",
                root.display()
            ));
        }
        collect_rust_files(&base, &mut paths)?;
    }
    paths.sort();
    paths.dedup();

    let mut files: Vec<SourceFile> = Vec::new();
    for path in &paths {
        let rel = relative_path(root, path);
        if config.exclude.iter().any(|e| is_excluded(&rel, e)) {
            continue;
        }
        let src =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let tokens = lexer::lex(&src);
        let scopes = scope::analyze(&src, &tokens, scope::path_is_test(&rel));
        files.push(SourceFile {
            rel,
            src,
            tokens,
            scopes,
        });
    }

    let crates = CrateMap::load(root);
    let index = ItemIndex::build(&files, &crates);
    let graph = CallGraph::build(&files, &index, &crates);
    Ok(Workspace {
        files,
        index,
        graph,
    })
}

/// Run the analyzer over the workspace rooted at `root`.
pub fn check(root: &Path, config: &Config, baseline: &BTreeSet<String>) -> Result<Report, String> {
    let ws = parse_workspace(root, config)?;

    // Derivation is enforcement: the allocation-free set checked by the
    // hot-path-alloc token lint is the call-graph closure from the
    // configured roots, plus pins (entries enforced beyond derivability)
    // and any residual explicit `functions` entries. A refactor that adds
    // a callee to the hot path extends enforcement automatically.
    let mut hot_config = config.clone();
    hot_config
        .hot_path_functions
        .extend(reach::derived_hot_specs(&ws.index, &ws.graph, config));
    hot_config
        .hot_path_functions
        .extend(config.hot_path_pins.iter().cloned());
    hot_config.hot_path_functions.sort();
    hot_config.hot_path_functions.dedup();

    let mut findings = Vec::new();
    let mut log = SiteLog::default();
    for file in &ws.files {
        let input = lints::FileInput {
            path: &file.rel,
            src: &file.src,
            tokens: &file.tokens,
            scopes: &file.scopes,
            is_crate_root: is_crate_root(&file.rel),
        };
        lints::run_all(&input, &hot_config, &mut findings, &mut log);
    }
    lints::stale_allow_findings(config, &log, &mut findings);
    reach::run_graph_lints(&ws.index, &ws.graph, config, &mut findings);

    let mut kept = Vec::new();
    let mut suppressed = 0usize;
    for finding in findings {
        if baseline.contains(&finding.baseline_key()) {
            suppressed += 1;
        } else {
            kept.push(finding);
        }
    }
    kept.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.lint, a.message.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.lint,
            b.message.as_str(),
        ))
    });
    Ok(Report {
        findings: kept,
        suppressed,
        files_scanned: ws.files.len(),
    })
}

/// A crate root is any `src/lib.rs` — of the workspace package or of a
/// member crate. These must carry `#![forbid(unsafe_code)]`.
fn is_crate_root(rel: &str) -> bool {
    rel == "src/lib.rs" || rel.ends_with("/src/lib.rs")
}

fn is_excluded(rel: &str, exclude: &str) -> bool {
    rel == exclude || rel.starts_with(&format!("{exclude}/"))
}

fn relative_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    // Normalize to forward slashes so config patterns are portable.
    rel.to_string_lossy().replace('\\', "/")
}

fn collect_rust_files(base: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    if base.is_file() {
        if base.extension().is_some_and(|e| e == "rs") {
            out.push(base.to_path_buf());
        }
        return Ok(());
    }
    let entries = fs::read_dir(base).map_err(|e| format!("cannot list {}: {e}", base.display()))?;
    let mut children: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot list {}: {e}", base.display()))?;
        children.push(entry.path());
    }
    children.sort();
    for child in children {
        let name = child
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if child.is_dir() {
            // `target/` build output is never source.
            if name == "target" {
                continue;
            }
            collect_rust_files(&child, out)?;
        } else if name.ends_with(".rs") {
            out.push(child);
        }
    }
    Ok(())
}
