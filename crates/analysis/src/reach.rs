//! Reachability over the call graph, and the lints built on it.
//!
//! A closure is a deterministic BFS from configured root fns, optionally cut
//! at stop fns (documented cold branches). Parent pointers let every
//! membership be *explained* as a call chain, which the lints print so a
//! finding is an argument, not an assertion. Three lints consume closures:
//!
//! - **hot-path-closure** — the allocation-free set is derived from the
//!   roots and diffed against the `[hot_path] functions` manifest in both
//!   directions, turning the manifest from an assertion into a checked
//!   projection (pins cover entries enforced beyond derivability).
//! - **panic-reachability** — every panic site reachable from the decision
//!   roots is reported with its chain; allowlist entries covering reachable
//!   sites must carry a `hot-path:` justification tier.
//! - **blocking-on-read-path** — `Mutex::lock`/`RwLock`/channel `recv` must
//!   be unreachable from the published-snapshot decision path, statically
//!   proving the epoch-read guarantee.

use crate::config::{Config, StopEntry};
use crate::graph::{CallGraph, SiteKind};
use crate::items::{FnSpec, ItemIndex};
use crate::lints::Finding;
use std::collections::BTreeSet;

pub const HOT_CLOSURE: &str = "hot-path-closure";
pub const PANIC_REACH: &str = "panic-reachability";
pub const BLOCKING_READ: &str = "blocking-on-read-path";

/// A computed closure with provenance.
pub struct Reach {
    /// For each fn index: `Some(parent)` when reachable (roots point to
    /// themselves). Indexed like `ItemIndex::fns`.
    parent: Vec<Option<u32>>,
    /// Members in BFS discovery order.
    pub members: Vec<u32>,
}

impl Reach {
    pub fn contains(&self, idx: u32) -> bool {
        self.parent[idx as usize].is_some()
    }

    /// The root-to-`idx` call chain as fn indices (empty when unreachable).
    pub fn chain(&self, idx: u32) -> Vec<u32> {
        if !self.contains(idx) {
            return Vec::new();
        }
        let mut chain = vec![idx];
        let mut at = idx;
        while let Some(parent) = self.parent[at as usize] {
            if parent == at {
                break;
            }
            chain.push(parent);
            at = parent;
        }
        chain.reverse();
        chain
    }

    /// The chain rendered as `a -> b -> c` display names. Line-agnostic, so
    /// safe to embed in baseline-keyed finding messages.
    pub fn chain_text(&self, index: &ItemIndex, idx: u32) -> String {
        self.chain(idx)
            .iter()
            .map(|&i| index.fns[i as usize].display())
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

/// BFS closure from `roots` (specs), cut at `stops` (specs): a stopped fn is
/// neither a member nor traversed. Test fns never join a closure.
pub fn closure(index: &ItemIndex, graph: &CallGraph, roots: &[String], stops: &[String]) -> Reach {
    let stop_set: BTreeSet<u32> = stops.iter().flat_map(|s| index.find_spec(s)).collect();
    let mut parent: Vec<Option<u32>> = vec![None; index.fns.len()];
    let mut queue: Vec<u32> = Vec::new();
    for root in roots {
        for idx in index.find_spec(root) {
            let item = &index.fns[idx as usize];
            if item.is_test || stop_set.contains(&idx) || parent[idx as usize].is_some() {
                continue;
            }
            parent[idx as usize] = Some(idx);
            queue.push(idx);
        }
    }
    let mut members = queue.clone();
    let mut head = 0usize;
    while head < queue.len() {
        let at = queue[head];
        head += 1;
        for edge in graph.edges(at) {
            let to = edge.to;
            if parent[to as usize].is_some() || stop_set.contains(&to) {
                continue;
            }
            if index.fns[to as usize].is_test {
                continue;
            }
            parent[to as usize] = Some(at);
            queue.push(to);
            members.push(to);
        }
    }
    Reach { parent, members }
}

/// Run every graph lint. No-ops when the respective roots are unconfigured,
/// so token-level-only configs (fixtures, minimal setups) are unaffected.
pub fn run_graph_lints(
    index: &ItemIndex,
    graph: &CallGraph,
    config: &Config,
    findings: &mut Vec<Finding>,
) {
    if !config.hot_path_roots.is_empty() {
        hot_path_closure(index, graph, config, findings);
        panic_reachability(index, graph, config, findings);
    }
    if !config.read_path_roots.is_empty() {
        blocking_on_read_path(index, graph, config, findings);
    }
}

fn push(findings: &mut Vec<Finding>, file: &str, line: u32, lint: &'static str, message: String) {
    findings.push(Finding {
        file: file.to_string(),
        line,
        lint,
        message,
    });
}

/// Every root/stop spec must resolve to at least one fn — a spec that
/// matches nothing is rot, exactly what derivation exists to prevent.
fn check_specs_resolve(
    index: &ItemIndex,
    lint: &'static str,
    what: &str,
    specs: &[String],
    findings: &mut Vec<Finding>,
) {
    for spec in specs {
        if index.find_spec(spec).is_empty() {
            push(
                findings,
                "lint.toml",
                1,
                lint,
                format!("{what} `{spec}` matches no fn in the workspace"),
            );
        }
    }
}

fn check_stops_resolve(
    index: &ItemIndex,
    lint: &'static str,
    stops: &[StopEntry],
    findings: &mut Vec<Finding>,
) {
    for stop in stops {
        if index.find_spec(&stop.function).is_empty() {
            push(
                findings,
                "lint.toml",
                stop.line,
                lint,
                format!(
                    "stop entry `{}` matches no fn in the workspace",
                    stop.function
                ),
            );
        }
    }
}

fn stop_specs(stops: &[StopEntry]) -> Vec<String> {
    stops.iter().map(|s| s.function.clone()).collect()
}

/// The derived allocation-free set: every fn in the stopped closure from
/// the hot-path roots, as exact `file::name` specs. The engine feeds these
/// into the hot-path-alloc token lint, so the enforcement set is *derived*
/// from the call graph — a refactor that adds a callee extends enforcement
/// automatically instead of silently rotting a hand-kept manifest.
pub fn derived_hot_specs(index: &ItemIndex, graph: &CallGraph, config: &Config) -> Vec<String> {
    if config.hot_path_roots.is_empty() {
        return Vec::new();
    }
    let reach = closure(
        index,
        graph,
        &config.hot_path_roots,
        &stop_specs(&config.hot_path_stops),
    );
    let mut specs: Vec<String> = reach
        .members
        .iter()
        .map(|&i| index.fns[i as usize].spec())
        .collect();
    specs.sort();
    specs.dedup();
    specs
}

/// Keep the manifest coherent with the derivation: `functions` entries must
/// be derivable (derivation enforces them anyway — a non-derivable entry is
/// rot or belongs under pins), pins must NOT be derivable (a derivable pin
/// is redundant), and every root/stop/pin spec must resolve.
fn hot_path_closure(
    index: &ItemIndex,
    graph: &CallGraph,
    config: &Config,
    findings: &mut Vec<Finding>,
) {
    check_specs_resolve(index, HOT_CLOSURE, "root", &config.hot_path_roots, findings);
    check_specs_resolve(index, HOT_CLOSURE, "pin", &config.hot_path_pins, findings);
    check_stops_resolve(index, HOT_CLOSURE, &config.hot_path_stops, findings);
    let reach = closure(
        index,
        graph,
        &config.hot_path_roots,
        &stop_specs(&config.hot_path_stops),
    );
    let derivable = |raw: &str| {
        let spec = FnSpec::parse(raw);
        reach
            .members
            .iter()
            .any(|&i| spec.matches_item(&index.fns[i as usize]))
    };
    for raw in &config.hot_path_functions {
        if !derivable(raw) {
            push(
                findings,
                "lint.toml",
                config.hot_path_line,
                HOT_CLOSURE,
                format!(
                    "stale [hot_path] entry `{raw}`: not reachable from the roots \
                     (remove it, or move it to pins with a reason)"
                ),
            );
        }
    }
    for pin in &config.hot_path_pins {
        if derivable(pin) {
            push(
                findings,
                "lint.toml",
                config.hot_path_line,
                HOT_CLOSURE,
                format!("pin `{pin}` is derivable from the roots; drop the pin"),
            );
        }
    }
}

/// Report reachable panic sites with chains; reachable allowlist coverage
/// must be justified at the `hot-path:` tier.
fn panic_reachability(
    index: &ItemIndex,
    graph: &CallGraph,
    config: &Config,
    findings: &mut Vec<Finding>,
) {
    // The panic closure ignores hot-path stops: a documented cold branch is
    // still runtime-reachable, and a panic there still kills a decision.
    let reach = closure(index, graph, &config.hot_path_roots, &[]);
    // One finding per (file, token, fn): a fn with three `expect`s is one
    // decision, not three.
    let mut seen: BTreeSet<(String, String, String)> = BTreeSet::new();
    for &idx in &reach.members {
        let item = &index.fns[idx as usize];
        if config
            .panic_skip
            .iter()
            .any(|m| item.file.starts_with(&format!("{m}/")) || item.file == *m)
        {
            continue;
        }
        for site in &graph.sites[idx as usize] {
            if site.kind != SiteKind::Panic {
                continue;
            }
            let entry = config
                .panic_allow
                .iter()
                .find(|e| e.token == site.token && crate::items::path_matches(&item.file, &e.file));
            let key = (item.file.clone(), site.token.clone(), item.name.clone());
            match entry {
                None => {
                    if seen.insert(key) {
                        push(
                            findings,
                            &item.file,
                            site.line,
                            PANIC_REACH,
                            format!(
                                "`{}` in `{}` is reachable from the decision root \
                                 ({}); fix it or allowlist it with a `hot-path:` reason",
                                site.token,
                                item.name,
                                reach.chain_text(index, idx)
                            ),
                        );
                    }
                }
                Some(entry) if !entry.reason.starts_with("hot-path:") => {
                    if seen.insert(key) {
                        push(
                            findings,
                            &item.file,
                            site.line,
                            PANIC_REACH,
                            format!(
                                "allow entry for `{}` in `{}` covers a site reachable \
                                 from the decision root ({}); its reason must start \
                                 with `hot-path:`",
                                site.token,
                                entry.file,
                                reach.chain_text(index, idx)
                            ),
                        );
                    }
                }
                Some(_) => {}
            }
        }
    }
}

/// Prove the published-snapshot read path takes no locks.
fn blocking_on_read_path(
    index: &ItemIndex,
    graph: &CallGraph,
    config: &Config,
    findings: &mut Vec<Finding>,
) {
    check_specs_resolve(
        index,
        BLOCKING_READ,
        "root",
        &config.read_path_roots,
        findings,
    );
    check_stops_resolve(index, BLOCKING_READ, &config.read_path_stops, findings);
    let reach = closure(
        index,
        graph,
        &config.read_path_roots,
        &stop_specs(&config.read_path_stops),
    );
    let mut matched_allow: BTreeSet<usize> = BTreeSet::new();
    let mut seen: BTreeSet<(String, String, String)> = BTreeSet::new();
    for &idx in &reach.members {
        let item = &index.fns[idx as usize];
        for site in &graph.sites[idx as usize] {
            if site.kind != SiteKind::Blocking {
                continue;
            }
            let allow = config.read_path_allow.iter().position(|e| {
                e.token == site.token && crate::items::path_matches(&item.file, &e.file)
            });
            if let Some(at) = allow {
                matched_allow.insert(at);
                continue;
            }
            if seen.insert((item.file.clone(), site.token.clone(), item.name.clone())) {
                push(
                    findings,
                    &item.file,
                    site.line,
                    BLOCKING_READ,
                    format!(
                        "blocking call `{}` in `{}` is reachable from the \
                         published-read root ({})",
                        site.token,
                        item.name,
                        reach.chain_text(index, idx)
                    ),
                );
            }
        }
    }
    // An allow entry no blocking site on the read path matches is rot.
    for (at, entry) in config.read_path_allow.iter().enumerate() {
        if !matched_allow.contains(&at) {
            push(
                findings,
                "lint.toml",
                entry.line,
                BLOCKING_READ,
                format!(
                    "stale [[read_path.allow]] entry: no blocking `{}` site in \
                     `{}` is reachable from the read-path roots",
                    entry.token, entry.file
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AllowEntry;
    use crate::graph::CallGraph;
    use crate::items::{CrateMap, SourceFile};
    use crate::{lexer, scope};

    fn workspace(files: &[(&str, &str)]) -> (ItemIndex, CallGraph) {
        let files: Vec<SourceFile> = files
            .iter()
            .map(|(rel, src)| {
                let tokens = lexer::lex(src);
                let scopes = scope::analyze(src, &tokens, scope::path_is_test(rel));
                SourceFile {
                    rel: rel.to_string(),
                    src: src.to_string(),
                    tokens,
                    scopes,
                }
            })
            .collect();
        let crates = CrateMap::single("ws");
        let index = ItemIndex::build(&files, &crates);
        let graph = CallGraph::build(&files, &index, &crates);
        (index, graph)
    }

    const CHAIN_SRC: &str = "fn root() { mid(); cold(); }\n\
                             fn mid() { leaf(); }\n\
                             fn leaf() {}\n\
                             fn cold() { icy(); }\n\
                             fn icy() {}\n\
                             fn unrelated() {}";

    #[test]
    fn closure_members_and_chains() {
        let (index, graph) = workspace(&[("src/a.rs", CHAIN_SRC)]);
        let reach = closure(&index, &graph, &["root".to_string()], &[]);
        let names: BTreeSet<String> = reach
            .members
            .iter()
            .map(|&i| index.fns[i as usize].name.clone())
            .collect();
        assert_eq!(
            names,
            ["root", "mid", "leaf", "cold", "icy"]
                .iter()
                .map(|s| s.to_string())
                .collect()
        );
        let leaf = index.find_spec("leaf")[0];
        assert_eq!(reach.chain_text(&index, leaf), "root -> mid -> leaf");
    }

    #[test]
    fn stops_cut_the_branch() {
        let (index, graph) = workspace(&[("src/a.rs", CHAIN_SRC)]);
        let reach = closure(&index, &graph, &["root".to_string()], &["cold".to_string()]);
        let cold = index.find_spec("cold")[0];
        let icy = index.find_spec("icy")[0];
        assert!(!reach.contains(cold));
        assert!(!reach.contains(icy));
        assert!(reach.contains(index.find_spec("leaf")[0]));
    }

    fn graph_config() -> Config {
        Config {
            include: vec![".".into()],
            hot_path_roots: vec!["root".into()],
            read_path_roots: vec!["root".into()],
            ..Default::default()
        }
    }

    #[test]
    fn derived_specs_are_the_stopped_closure() {
        let (index, graph) = workspace(&[("src/a.rs", CHAIN_SRC)]);
        let mut config = graph_config();
        config.hot_path_stops.push(StopEntry {
            function: "cold".into(),
            reason: "cold branch".into(),
            line: 1,
        });
        let specs = derived_hot_specs(&index, &graph, &config);
        assert_eq!(
            specs,
            vec!["src/a.rs::leaf", "src/a.rs::mid", "src/a.rs::root"]
        );
        // No roots configured → empty set, token lint keeps manifest-only
        // behavior (fixtures rely on this).
        config.hot_path_roots.clear();
        assert!(derived_hot_specs(&index, &graph, &config).is_empty());
    }

    #[test]
    fn hot_closure_flags_manifest_rot() {
        let (index, graph) = workspace(&[("src/a.rs", CHAIN_SRC)]);
        let mut config = graph_config();
        // `mid` is derivable (redundant but harmless — no finding);
        // `unrelated` is not reachable, so the entry is rot.
        config.hot_path_functions = vec!["mid".into(), "unrelated".into()];
        let mut findings = Vec::new();
        run_graph_lints(&index, &graph, &config, &mut findings);
        let hot: Vec<&Finding> = findings.iter().filter(|f| f.lint == HOT_CLOSURE).collect();
        assert_eq!(hot.len(), 1, "{hot:?}");
        assert!(hot[0]
            .message
            .contains("stale [hot_path] entry `unrelated`"));
        // Moved to pins, the entry is legitimate; a derivable pin is rot.
        config.hot_path_functions.clear();
        config.hot_path_pins = vec!["unrelated".into(), "mid".into()];
        let mut findings = Vec::new();
        run_graph_lints(&index, &graph, &config, &mut findings);
        assert!(!findings
            .iter()
            .any(|f| f.message.contains("stale [hot_path] entry")));
        assert!(findings
            .iter()
            .any(|f| f.message.contains("pin `mid` is derivable")));
    }

    #[test]
    fn panic_reachability_reports_chains_and_tiers() {
        let src = "fn root() { mid(); }\n\
                   fn mid(x: Option<u32>) { x.unwrap(); }\n\
                   fn far(x: Option<u32>) { x.expect(\"m\"); }";
        let (index, graph) = workspace(&[("src/a.rs", src)]);
        let mut config = graph_config();
        config.hot_path_functions = vec!["root".into(), "mid".into()];
        let mut findings = Vec::new();
        run_graph_lints(&index, &graph, &config, &mut findings);
        let reach: Vec<&Finding> = findings.iter().filter(|f| f.lint == PANIC_REACH).collect();
        // The unreachable `far` expect is not reported; the reachable
        // unallowed unwrap is, with its chain.
        assert_eq!(reach.len(), 1, "{reach:?}");
        assert!(reach[0].message.contains("root -> mid"));

        // A covering allow entry without the tier prefix is a finding; with
        // the prefix the site is justified.
        config.panic_allow.push(AllowEntry {
            file: "src/a.rs".into(),
            token: "unwrap".into(),
            reason: "checked above".into(),
            line: 1,
        });
        let mut findings = Vec::new();
        run_graph_lints(&index, &graph, &config, &mut findings);
        assert!(findings
            .iter()
            .any(|f| f.lint == PANIC_REACH && f.message.contains("hot-path:")));
        config.panic_allow[0].reason = "hot-path: checked above".into();
        let mut findings = Vec::new();
        run_graph_lints(&index, &graph, &config, &mut findings);
        assert!(!findings.iter().any(|f| f.lint == PANIC_REACH));
    }

    #[test]
    fn blocking_read_path_with_stops_and_allows() {
        let src = "fn root(m: &M) { fast(); fallback(); }\n\
                   fn fast(m: &M) { m.lock(); }\n\
                   fn fallback(m: &M) { m.recv(); }";
        let (index, graph) = workspace(&[("src/a.rs", src)]);
        let mut config = graph_config();
        config.hot_path_roots.clear(); // isolate the read-path lint
        let mut findings = Vec::new();
        run_graph_lints(&index, &graph, &config, &mut findings);
        let blocked: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.lint == BLOCKING_READ)
            .collect();
        assert_eq!(blocked.len(), 2, "{blocked:?}");

        // Stopping the fallback and allowing the bounded lock proves clean;
        // the allow entry is live, so no stale-allow finding either.
        config.read_path_stops.push(StopEntry {
            function: "fallback".into(),
            reason: "store-backed fallback".into(),
            line: 1,
        });
        config.read_path_allow.push(AllowEntry {
            file: "src/a.rs".into(),
            token: "lock".into(),
            reason: "bounded slot mutex".into(),
            line: 1,
        });
        let mut findings = Vec::new();
        run_graph_lints(&index, &graph, &config, &mut findings);
        assert!(
            !findings.iter().any(|f| f.lint == BLOCKING_READ),
            "{findings:?}"
        );

        // Removing the lock site leaves the allow entry stale.
        config.read_path_allow[0].token = "wait".into();
        let mut findings = Vec::new();
        run_graph_lints(&index, &graph, &config, &mut findings);
        assert!(findings
            .iter()
            .any(|f| f.lint == BLOCKING_READ && f.message.contains("stale [[read_path.allow]]")));
    }

    #[test]
    fn unresolvable_specs_are_findings() {
        let (index, graph) = workspace(&[("src/a.rs", "fn root() {}")]);
        let mut config = graph_config();
        config.read_path_roots.clear();
        config.hot_path_roots = vec!["missing_fn".into()];
        let mut findings = Vec::new();
        run_graph_lints(&index, &graph, &config, &mut findings);
        assert!(findings
            .iter()
            .any(|f| f.message.contains("root `missing_fn` matches no fn")));
    }
}
