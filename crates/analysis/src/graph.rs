//! Call-edge resolution over the token stream.
//!
//! Without type information, edges are resolved by name with conservative
//! ambiguity: a call site that could target several workspace fns produces
//! an edge to each, flagged ambiguous, so reachability over-approximates
//! rather than misses. Precision comes from four filters:
//!
//! - method-call candidates must take a `self` receiver and have a body,
//!   and their `impl` owner type (or the trait the impl implements, for
//!   dyn dispatch) must be *named* somewhere in the caller's file — an
//!   import, field, or signature makes every real receiver type visible;
//! - `Qualifier::fn` path calls must match the qualifier against the
//!   candidate's `impl`/trait owner, module file stem, or crate — an
//!   unmatched qualifier means the call targets external code (no edge);
//! - `self.method()` narrows to the caller's own `impl` when it matches;
//! - an edge may not cross from a crate to one it does not depend on, and
//!   binary-target fns are only callable from their own file.
//!
//! The same body walk records the panic and blocking call sites the
//! reachability lints consume.

use crate::items::{CrateMap, FnItem, ItemIndex, SourceFile};
use crate::lexer::TokenKind;
use std::collections::BTreeMap;

/// One resolved call edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    pub from: u32,
    pub to: u32,
    /// Line of the call site in the caller's file.
    pub line: u32,
    /// True when the call site matched several candidates (or a method call
    /// matched impls beyond the caller's own type).
    pub ambiguous: bool,
}

/// What kind of invariant-relevant token a site is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteKind {
    /// `.unwrap()`, `.expect()`, `panic!`, `todo!`, `unimplemented!`.
    Panic,
    /// `.lock()`, `.recv()`, `.recv_timeout()`, `.wait()`,
    /// `.wait_timeout()`, or any `RwLock` mention.
    Blocking,
}

/// A panic or blocking site inside some fn body.
#[derive(Debug, Clone)]
pub struct Site {
    pub kind: SiteKind,
    /// The bare token name (`unwrap`, `lock`, ...), matching the allowlist
    /// `token` field.
    pub token: String,
    pub line: u32,
}

/// The workspace call graph, indexed by [`ItemIndex`] fn indices.
pub struct CallGraph {
    /// Outgoing edges per fn, deduplicated, in call-site order.
    pub edges_from: Vec<Vec<Edge>>,
    /// Panic/blocking sites per fn (non-test fns only).
    pub sites: Vec<Vec<Site>>,
}

impl CallGraph {
    pub fn build(files: &[SourceFile], index: &ItemIndex, crates: &CrateMap) -> CallGraph {
        let mut graph = CallGraph {
            edges_from: vec![Vec::new(); index.fns.len()],
            sites: vec![Vec::new(); index.fns.len()],
        };
        for (file_idx, file) in files.iter().enumerate() {
            resolve_file(file, file_idx, index, crates, &mut graph);
        }
        for edges in &mut graph.edges_from {
            dedup_edges(edges);
        }
        graph
    }

    /// All edges out of `from`, for tests and `--why` explanations.
    pub fn edges(&self, from: u32) -> &[Edge] {
        &self.edges_from[from as usize]
    }
}

/// Keep the first edge per (from, to); a later certain resolution of the
/// same target upgrades the ambiguity flag.
fn dedup_edges(edges: &mut Vec<Edge>) {
    let mut seen: BTreeMap<u32, usize> = BTreeMap::new();
    let mut kept: Vec<Edge> = Vec::with_capacity(edges.len());
    for edge in edges.drain(..) {
        match seen.get(&edge.to) {
            Some(&at) => kept[at].ambiguous &= edge.ambiguous,
            None => {
                seen.insert(edge.to, kept.len());
                kept.push(edge);
            }
        }
    }
    *edges = kept;
}

/// Keywords that can precede `(` without being calls.
fn is_keyword(text: &str) -> bool {
    matches!(
        text,
        "if" | "while"
            | "for"
            | "match"
            | "return"
            | "loop"
            | "fn"
            | "as"
            | "in"
            | "move"
            | "unsafe"
            | "else"
            | "let"
            | "mut"
            | "ref"
            | "dyn"
            | "impl"
            | "where"
            | "break"
            | "continue"
            | "await"
    )
}

fn resolve_file(
    file: &SourceFile,
    file_idx: usize,
    index: &ItemIndex,
    crates: &CrateMap,
    graph: &mut CallGraph,
) {
    let src = file.src.as_str();
    let tokens = &file.tokens;
    // Code-token view: adjacency checks must see through comments.
    let code: Vec<usize> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| {
            !matches!(
                t.kind,
                TokenKind::LineComment | TokenKind::BlockComment | TokenKind::Shebang
            )
        })
        .map(|(i, _)| i)
        .collect();
    let text_at = |c: usize| tokens[code[c]].text(src);
    let kind_at = |c: usize| tokens[code[c]].kind;
    let punct_eq = |c: usize, p: &str| kind_at(c) == TokenKind::Punct && text_at(c) == p;
    let ident_eq = |c: usize, name: &str| kind_at(c) == TokenKind::Ident && text_at(c) == name;
    // Every identifier the file names: the receiver-type visibility set for
    // the method-call mention filter.
    let mentions: std::collections::BTreeSet<&str> = code
        .iter()
        .filter(|&&i| tokens[i].kind == TokenKind::Ident)
        .map(|&i| tokens[i].text(src))
        .collect();
    let mentioned = |f: &FnItem| {
        f.owner.as_deref().is_some_and(|o| mentions.contains(o))
            || f.trait_name
                .as_deref()
                .is_some_and(|t| mentions.contains(t))
    };

    for c in 0..code.len() {
        let idx = code[c];
        if tokens[idx].kind != TokenKind::Ident {
            continue;
        }
        // Attribute the token to its enclosing fn (the *innermost* one —
        // calls inside a nested fn belong to the nested fn, not the outer).
        let Some(local) = file.scopes.enclosing_fn[idx] else {
            continue;
        };
        let caller_idx = index.global(file_idx, local);
        let caller = &index.fns[caller_idx as usize];
        if caller.is_test {
            continue;
        }
        let text = tokens[idx].text(src);
        let line = tokens[idx].line;
        let prev_is_dot = c > 0 && punct_eq(c - 1, ".");
        let next_is_paren = c + 1 < code.len() && punct_eq(c + 1, "(");
        let next_is_bang = c + 1 < code.len() && punct_eq(c + 1, "!");

        // --- site collection ----------------------------------------------
        let site = match text {
            "unwrap" | "expect" if prev_is_dot => Some(SiteKind::Panic),
            "panic" | "todo" | "unimplemented" if next_is_bang => Some(SiteKind::Panic),
            "lock" | "recv" | "recv_timeout" | "wait" | "wait_timeout"
                if prev_is_dot && next_is_paren =>
            {
                Some(SiteKind::Blocking)
            }
            "RwLock" => Some(SiteKind::Blocking),
            _ => None,
        };
        if let Some(kind) = site {
            graph.sites[caller_idx as usize].push(Site {
                kind,
                token: text.to_string(),
                line,
            });
        }

        // --- call-edge resolution -----------------------------------------
        if !next_is_paren || is_keyword(text) {
            continue;
        }
        let prev_is_path = c >= 2 && punct_eq(c - 1, ":") && punct_eq(c - 2, ":");

        let mut candidates: Vec<u32> = Vec::new();
        let mut ambiguous_method = false;
        if prev_is_dot {
            // Method call: `recv.name(...)`. Candidates are workspace
            // methods by name; a literal `self.` receiver narrows to the
            // caller's own impl when that impl has the method.
            let feasible: Vec<u32> = index
                .named(text)
                .iter()
                .copied()
                .filter(|&i| {
                    let f = &index.fns[i as usize];
                    f.has_self && callable(caller, f, crates)
                })
                .collect();
            // A workspace-unique method name is strong evidence on its own
            // (distinctive names like `set_required_hostname` need no type
            // info); shared names additionally require the candidate's
            // receiver type or trait to be named in the caller's file.
            let all: Vec<u32> = if feasible.len() == 1 {
                feasible
            } else {
                feasible
                    .into_iter()
                    .filter(|&i| {
                        let f = &index.fns[i as usize];
                        f.file == caller.file || mentioned(f)
                    })
                    .collect()
            };
            let self_recv = c >= 2 && ident_eq(c - 2, "self") && !(c >= 3 && punct_eq(c - 3, "."));
            if self_recv && caller.owner.is_some() {
                let own: Vec<u32> = all
                    .iter()
                    .copied()
                    .filter(|&i| index.fns[i as usize].owner == caller.owner)
                    .collect();
                if own.is_empty() {
                    candidates = all;
                } else {
                    candidates = own;
                }
            } else {
                candidates = all;
            }
            // A method call is inherently name-resolved: mark ambiguous
            // whenever more than one impl could answer.
            ambiguous_method = candidates.len() > 1;
        } else if prev_is_path {
            // Path call: `Qualifier::name(...)`. The segment directly
            // before the name decides resolution.
            if c >= 3 && kind_at(c - 3) == TokenKind::Ident {
                let q = text_at(c - 3);
                candidates = match q {
                    // Same-crate module paths.
                    "self" | "crate" | "super" => index
                        .named(text)
                        .iter()
                        .copied()
                        .filter(|&i| {
                            let f = &index.fns[i as usize];
                            f.owner.is_none()
                                && f.krate == caller.krate
                                && callable(caller, f, crates)
                        })
                        .collect(),
                    // The caller's own type.
                    "Self" => index
                        .named(text)
                        .iter()
                        .copied()
                        .filter(|&i| {
                            let f = &index.fns[i as usize];
                            f.owner == caller.owner
                                && caller.owner.is_some()
                                && callable(caller, f, crates)
                        })
                        .collect(),
                    // `Type::assoc`, `module::free`, or `crate_name::free`;
                    // a qualifier matching none of those is external code.
                    _ => index
                        .named(text)
                        .iter()
                        .copied()
                        .filter(|&i| {
                            let f = &index.fns[i as usize];
                            if !callable(caller, f, crates) {
                                return false;
                            }
                            match &f.owner {
                                Some(owner) => owner == q,
                                None => ItemIndex::file_stem(&f.file) == q || f.krate == q,
                            }
                        })
                        .collect(),
                };
            }
            // Non-ident qualifiers (`<T as Trait>::f`) stay unresolved —
            // the method-name edges from the trait impls cover dispatch.
        } else {
            // Bare call: a free fn by name, from this crate or any
            // dependency (an import made it visible).
            candidates = index
                .named(text)
                .iter()
                .copied()
                .filter(|&i| {
                    let f = &index.fns[i as usize];
                    f.owner.is_none() && callable(caller, f, crates)
                })
                .collect();
        }

        let ambiguous = ambiguous_method || candidates.len() > 1;
        for to in candidates {
            graph.edges_from[caller_idx as usize].push(Edge {
                from: caller_idx,
                to,
                line,
                ambiguous,
            });
        }
    }
}

/// May `caller` have an edge to candidate `f` at all?
fn callable(caller: &FnItem, f: &FnItem, crates: &CrateMap) -> bool {
    if f.is_test || !f.has_body {
        return false;
    }
    if f.bin_scoped && f.file != caller.file {
        return false;
    }
    crates.can_call(&caller.krate, &f.krate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lexer, scope};

    fn workspace(files: &[(&str, &str)]) -> (Vec<SourceFile>, ItemIndex, CallGraph) {
        let files: Vec<SourceFile> = files
            .iter()
            .map(|(rel, src)| {
                let tokens = lexer::lex(src);
                let scopes = scope::analyze(src, &tokens, scope::path_is_test(rel));
                SourceFile {
                    rel: rel.to_string(),
                    src: src.to_string(),
                    tokens,
                    scopes,
                }
            })
            .collect();
        let crates = CrateMap::single("ws");
        let index = ItemIndex::build(&files, &crates);
        let graph = CallGraph::build(&files, &index, &crates);
        (files, index, graph)
    }

    fn edge_specs(index: &ItemIndex, graph: &CallGraph, from_spec: &str) -> Vec<String> {
        let from = index.find_spec(from_spec);
        assert_eq!(from.len(), 1, "caller {from_spec} not unique: {from:?}");
        graph
            .edges(from[0])
            .iter()
            .map(|e| index.fns[e.to as usize].spec())
            .collect()
    }

    #[test]
    fn free_fn_calls_resolve_by_name() {
        let (_, index, graph) = workspace(&[(
            "src/a.rs",
            "fn top() { helper(); } fn helper() { leaf() } fn leaf() {}",
        )]);
        assert_eq!(edge_specs(&index, &graph, "top"), vec!["src/a.rs::helper"]);
        assert_eq!(edge_specs(&index, &graph, "helper"), vec!["src/a.rs::leaf"]);
    }

    #[test]
    fn self_method_call_narrows_to_own_impl() {
        let (_, index, graph) = workspace(&[(
            "src/a.rs",
            "impl A { fn go(&self) { self.step(); } fn step(&self) {} }\n\
             impl B { fn step(&self) {} }",
        )]);
        let edges = edge_specs(&index, &graph, "go");
        assert_eq!(edges, vec!["src/a.rs::step"]);
        let go = index.find_spec("go")[0];
        let to = graph.edges(go)[0].to;
        assert_eq!(index.fns[to as usize].owner.as_deref(), Some("A"));
    }

    #[test]
    fn unqualified_method_call_is_conservatively_ambiguous() {
        let (_, index, graph) = workspace(&[(
            "src/a.rs",
            "fn top(x: &dyn T) { x.step(); }\n\
             impl A { fn step(&self) {} }\n\
             impl B { fn step(&self) {} }",
        )]);
        let top = index.find_spec("top")[0];
        let edges = graph.edges(top);
        assert_eq!(edges.len(), 2);
        assert!(edges.iter().all(|e| e.ambiguous));
    }

    #[test]
    fn qualified_path_call_disambiguates_by_owner() {
        let (_, index, graph) = workspace(&[(
            "src/a.rs",
            "fn top() { A::make(); }\n\
             impl A { fn make() {} }\n\
             impl B { fn make() {} }",
        )]);
        let top = index.find_spec("top")[0];
        let edges = graph.edges(top);
        assert_eq!(edges.len(), 1);
        assert!(!edges[0].ambiguous);
        assert_eq!(index.fns[edges[0].to as usize].owner.as_deref(), Some("A"));
    }

    #[test]
    fn module_qualified_call_matches_file_stem() {
        let (_, index, graph) = workspace(&[
            ("src/a.rs", "fn top() { util::help(); other::help(); }"),
            ("src/util.rs", "pub fn help() {}"),
            ("src/misc.rs", "pub fn help() {}"),
        ]);
        // `util::help` resolves to util.rs only; `other::help` matches no
        // module stem, so it is external — no edge to misc.rs.
        assert_eq!(edge_specs(&index, &graph, "top"), vec!["src/util.rs::help"]);
    }

    #[test]
    fn unmatched_qualifier_is_external() {
        let (_, index, graph) = workspace(&[(
            "src/a.rs",
            "fn top() { Arc::clone(&x); std::mem::take(&mut y); } impl A { fn clone(&self) {} }",
        )]);
        let top = index.find_spec("src/a.rs::top")[0];
        assert!(graph.edges(top).is_empty());
    }

    #[test]
    fn trait_default_methods_and_decls() {
        let (_, index, graph) = workspace(&[(
            "src/a.rs",
            "trait S { fn go(&self); fn run(&self) { self.go(); } }\n\
             impl S for A { fn go(&self) { leaf() } }\n\
             fn leaf() {}\n\
             fn top(s: &dyn S) { s.run(); }",
        )]);
        // `run` exists only as a trait default method; the bodyless `go`
        // declaration is never a target — dispatch goes to the impl.
        assert_eq!(edge_specs(&index, &graph, "top"), vec!["src/a.rs::run"]);
        let run = index.find_spec("run")[0];
        let targets: Vec<String> = graph
            .edges(run)
            .iter()
            .map(|e| index.fns[e.to as usize].display())
            .collect();
        assert_eq!(targets, vec!["A::go"]);
    }

    #[test]
    fn nested_fn_calls_attribute_to_the_nested_fn() {
        let (_, index, graph) = workspace(&[(
            "src/a.rs",
            "fn outer() { fn inner() { leaf(); } inner(); } fn leaf() {}",
        )]);
        assert_eq!(edge_specs(&index, &graph, "outer"), vec!["src/a.rs::inner"]);
        assert_eq!(edge_specs(&index, &graph, "inner"), vec!["src/a.rs::leaf"]);
    }

    #[test]
    fn calls_inside_macro_invocations_are_seen() {
        let (_, index, graph) = workspace(&[(
            "src/a.rs",
            "fn top() { println!(\"{}\", compute()); assert_eq!(compute(), 1); } fn compute() -> u32 { 1 }",
        )]);
        assert_eq!(edge_specs(&index, &graph, "top"), vec!["src/a.rs::compute"]);
    }

    #[test]
    fn test_fns_neither_call_nor_get_called() {
        let (_, index, graph) = workspace(&[(
            "src/a.rs",
            "fn top() { helper(); } fn helper() {}\n\
             #[cfg(test)] mod tests { fn helper() { panic!(\"x\") } #[test] fn t() { helper(); } }",
        )]);
        // top's bare call must not pick up the test-module helper.
        assert_eq!(edge_specs(&index, &graph, "top").len(), 1);
        let t = index.find_spec("t")[0];
        assert!(graph.edges(t).is_empty());
    }

    #[test]
    fn crate_dependencies_filter_edges() {
        let files: Vec<SourceFile> = [
            ("crates/core/src/lib.rs", "pub fn top() { shared(); }"),
            ("crates/util/src/lib.rs", "pub fn shared() {}"),
            ("crates/other/src/lib.rs", "pub fn shared() {}"),
        ]
        .iter()
        .map(|(rel, src)| {
            let tokens = lexer::lex(src);
            let scopes = scope::analyze(src, &tokens, false);
            SourceFile {
                rel: rel.to_string(),
                src: src.to_string(),
                tokens,
                scopes,
            }
        })
        .collect();
        // Build a crate map by hand: core depends on util only.
        let mut crates = CrateMap::single("root");
        crates.dir_to_key = [
            ("core".to_string(), "core".to_string()),
            ("util".to_string(), "util".to_string()),
            ("other".to_string(), "other".to_string()),
        ]
        .into_iter()
        .collect();
        crates.reachable = [(
            "core".to_string(),
            ["util".to_string()].into_iter().collect(),
        )]
        .into_iter()
        .collect();
        let index = ItemIndex::build(&files, &crates);
        let graph = CallGraph::build(&files, &index, &crates);
        let top = index.find_spec("top")[0];
        let targets: Vec<String> = graph
            .edges(top)
            .iter()
            .map(|e| index.fns[e.to as usize].spec())
            .collect();
        assert_eq!(targets, vec!["crates/util/src/lib.rs::shared"]);
    }

    #[test]
    fn sites_are_collected_per_fn() {
        let (_, index, graph) = workspace(&[(
            "src/a.rs",
            "fn a(x: Option<u32>) { x.unwrap(); } fn b(m: &M) { m.lock(); panic!(\"x\") }",
        )]);
        let a = index.find_spec("a")[0] as usize;
        let b = index.find_spec("b")[0] as usize;
        assert_eq!(graph.sites[a].len(), 1);
        assert_eq!(graph.sites[a][0].kind, SiteKind::Panic);
        assert_eq!(graph.sites[a][0].token, "unwrap");
        let kinds: Vec<SiteKind> = graph.sites[b].iter().map(|s| s.kind).collect();
        assert_eq!(kinds, vec![SiteKind::Blocking, SiteKind::Panic]);
    }
}
