//! Fixture: hot-path-alloc violations inside a manifest fn.
//! Expected findings: lines 6, 7, 8, 9, 10, 11 (one per allocating token).
pub fn schedule_batch_into(n: usize) -> usize {
    let mut total = 0;
    {
        let buffer = vec![0u8; n];
        let label = format!("job-{n}");
        let copy = label.to_string();
        let owned: String = copy.as_str().to_owned();
        let collected: Vec<usize> = (0..n).collect();
        let boxed = Box::new(Vec::<u8>::new());
        total += buffer.len() + owned.len() + collected.len() + boxed.len();
    }
    total
}

pub fn cold_helper(n: usize) -> Vec<u8> {
    // Allocation is fine off the hot path.
    vec![0u8; n]
}
