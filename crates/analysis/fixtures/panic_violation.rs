//! Fixture: panic-surface violations in library code.
//! Expected findings: lines 4, 9, 14 — test module exempt.
pub fn unwraps(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn expects(x: Result<u32, String>) -> u32 {
    // An invariant comment does not exempt panics; only lint.toml does.
    x.expect("should not happen")
}

pub fn todos(flag: bool) {
    if flag {
        todo!("unfinished branch");
    }
}

pub fn fine(x: Option<u32>) -> u32 {
    x.unwrap_or_default()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
        if v.is_none() {
            panic!("impossible");
        }
    }
}
