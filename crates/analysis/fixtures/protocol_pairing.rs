//! Fixture: a protocol file whose Acquire loads have no Release store.
//! Expected: one atomics-discipline pairing finding (anchored at line 9).
use std::sync::atomic::{AtomicU64, Ordering};

pub struct HalfProtocol(AtomicU64);

impl HalfProtocol {
    pub fn read(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }
}
