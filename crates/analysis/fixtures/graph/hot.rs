//! Call-graph fixture: a hot chain derived from `drive`, with a panic
//! site, an allocation in a derived (unlisted) fn, a macro-wrapped call,
//! a nested fn, and a stopped cold branch. Line numbers are asserted in
//! tests/graph_checks.rs — keep the layout stable.

pub struct Engine {
    slot: Option<u32>,
}

impl Engine {
    pub fn drive(&mut self) {
        self.step();
        refresh();
        emit!(self.flush());
    }

    fn step(&mut self) {
        let scores = vec![self.slot.unwrap()];
        drop(scores);
    }

    fn flush(&mut self) {
        fn nested() {}
        nested();
    }
}

/// Cold branch: cut from the closure by the fixture stop entry.
fn refresh() {}
