//! Same-named methods across two impls, a trait default method, and
//! blocking sites on the read path. Line numbers are asserted in
//! tests/graph_checks.rs — keep the layout stable.

pub trait Source {
    fn load(&self) -> u32;

    /// Default method: name-based dispatch reaches every impl's `load`.
    fn total(&self) -> u32 {
        self.load() + 1
    }
}

pub struct Published;

impl Source for Published {
    fn load(&self) -> u32 {
        *self.slot.lock()
    }
}

pub struct StoreBacked;

impl Source for StoreBacked {
    fn load(&self) -> u32 {
        self.feed.recv()
    }
}

/// Read-path root.
pub fn serve(source: &Published) -> u32 {
    source.total()
}
