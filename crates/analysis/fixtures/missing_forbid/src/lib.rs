//! Fixture: a crate root without `#![forbid(unsafe_code)]`.
//! Expected: one unsafe-forbid finding at line 1.

pub fn harmless() -> u32 {
    42
}
