//! Fixture: atomics-discipline violations.
//! Expected findings (see tests/fixture_checks.rs):
//!   line 13 — Ordering::Relaxed without justification
//!   line 17 — Ordering::SeqCst without justification
use std::sync::atomic::{AtomicU64, Ordering};

pub fn justified(counter: &AtomicU64) {
    // ordering: counter is a pure tally, no publication through it.
    counter.fetch_add(1, Ordering::Relaxed);
}

pub fn unjustified_relaxed(counter: &AtomicU64) -> u64 {
    counter.load(Ordering::Relaxed)
}

pub fn unjustified_seqcst(counter: &AtomicU64) {
    counter.store(0, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_are_exempt() {
        let c = AtomicU64::new(0);
        c.store(1, Ordering::SeqCst);
    }
}
