//! Fixture: determinism violations in a pinned-artifact module.
//! Expected findings: lines 3 (x2, the use), 6 (wall clock), 9 (x2), 10, 11.
use std::collections::{HashMap, HashSet};

pub fn timestamped() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn randomized(keys: &[String]) -> (HashMap<String, u32>, HashSet<String>) {
    let mut map = HashMap::new();
    let mut set = HashSet::new();
    for (i, k) in keys.iter().enumerate() {
        map.insert(k.clone(), i as u32);
        set.insert(k.clone());
    }
    (map, set)
}
