//! The Telemetry Fetcher.
//!
//! *"This component queries the Prometheus metrics server at scheduling time
//! to retrieve the most recent telemetry snapshot."* In this reproduction the
//! metrics server is any [`telemetry::SnapshotSource`] — the synchronous
//! [`telemetry::ScrapeManager`], the sharded
//! [`telemetry::ConcurrentScrapeManager`], or a [`telemetry::TelemetryReader`]
//! handle observing a live concurrent ingest; the fetcher wraps it with the
//! scheduler-side query configuration (rate window, staleness tolerance).

use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimTime};
use telemetry::{ClusterSnapshot, PublishedEpoch, SnapshotSource, TimeSeriesStore};

/// Scheduler-side telemetry query configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TelemetryFetcher {
    /// Lookback window used to derive throughput rates from byte counters.
    pub rate_window: SimDuration,
}

impl Default for TelemetryFetcher {
    fn default() -> Self {
        TelemetryFetcher {
            rate_window: SimDuration::from_secs(30),
        }
    }
}

impl TelemetryFetcher {
    /// Create a fetcher with an explicit rate window.
    pub fn new(rate_window: SimDuration) -> Self {
        TelemetryFetcher { rate_window }
    }

    /// Fetch the most recent snapshot from a raw time-series store.
    pub fn fetch_from_store(&self, store: &TimeSeriesStore, now: SimTime) -> ClusterSnapshot {
        ClusterSnapshot::from_store(store, now, self.rate_window)
    }

    /// Fetch the most recent snapshot from the metrics server (any
    /// [`SnapshotSource`]: the synchronous scrape manager, the concurrent
    /// one, or a reader handle over a live ingest).
    pub fn fetch<S: SnapshotSource + ?Sized>(
        &self,
        metrics_server: &S,
        now: SimTime,
    ) -> ClusterSnapshot {
        let mut snapshot = ClusterSnapshot::default();
        self.fetch_into(metrics_server, now, &mut snapshot);
        snapshot
    }

    /// Fetch into an existing snapshot, reusing its node-table and mesh
    /// storage — the hot path for services that fetch once per decision
    /// burst. Queries run over the metrics server's interned series layout,
    /// so per-fetch cost is independent of retained history and no `String`
    /// is touched.
    pub fn fetch_into<S: SnapshotSource + ?Sized>(
        &self,
        metrics_server: &S,
        now: SimTime,
        snapshot: &mut ClusterSnapshot,
    ) {
        metrics_server.snapshot_into(now, self.rate_window, snapshot);
    }

    /// The metrics server's latest published epoch number, when it publishes
    /// immutable epoch snapshots (`None` for store-backed sources or before
    /// the first publish). One atomic load — the freshness stamp services use
    /// to skip refetching between scrapes entirely.
    pub fn published_epoch<S: SnapshotSource + ?Sized>(&self, metrics_server: &S) -> Option<u64> {
        metrics_server.published_epoch()
    }

    /// Fetch the latest **epoch-published immutable snapshot**, when the
    /// metrics server publishes them ([`telemetry::PublishedSnapshot`] or a
    /// scrape manager with an active publisher): the returned `Arc` is shared,
    /// not copied — an atomic load plus a reference-count bump, regardless of
    /// cluster size, with no store locks touched. Falls back to `None` for
    /// plain store-backed sources, where callers use
    /// [`TelemetryFetcher::fetch_into`].
    pub fn fetch_published<S: SnapshotSource + ?Sized>(
        &self,
        metrics_server: &S,
    ) -> Option<PublishedEpoch> {
        metrics_server.published()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::{Sample, SeriesKey, METRIC_NODE_LOAD1, METRIC_NODE_TX_BYTES};

    #[test]
    fn fetch_reads_latest_values_and_rates() {
        let mut store = TimeSeriesStore::new();
        store.append(Sample::gauge(
            SeriesKey::per_node(METRIC_NODE_LOAD1, "node-1"),
            1.25,
            SimTime::from_secs(50),
        ));
        store.append(Sample::counter(
            SeriesKey::per_node(METRIC_NODE_TX_BYTES, "node-1"),
            0.0,
            SimTime::from_secs(30),
        ));
        store.append(Sample::counter(
            SeriesKey::per_node(METRIC_NODE_TX_BYTES, "node-1"),
            20e6,
            SimTime::from_secs(50),
        ));
        let fetcher = TelemetryFetcher::default();
        let snap = fetcher.fetch_from_store(&store, SimTime::from_secs(55));
        let node = snap.node("node-1").unwrap();
        assert_eq!(node.cpu_load, 1.25);
        assert!((node.tx_rate - 1e6).abs() < 1.0);
        assert_eq!(snap.time, SimTime::from_secs(55));
    }

    #[test]
    fn narrow_rate_window_misses_old_counters() {
        let mut store = TimeSeriesStore::new();
        store.append(Sample::gauge(
            SeriesKey::per_node(METRIC_NODE_LOAD1, "node-1"),
            0.5,
            SimTime::from_secs(100),
        ));
        store.append(Sample::counter(
            SeriesKey::per_node(METRIC_NODE_TX_BYTES, "node-1"),
            0.0,
            SimTime::from_secs(10),
        ));
        store.append(Sample::counter(
            SeriesKey::per_node(METRIC_NODE_TX_BYTES, "node-1"),
            1e6,
            SimTime::from_secs(20),
        ));
        let fetcher = TelemetryFetcher::new(SimDuration::from_secs(5));
        let snap = fetcher.fetch_from_store(&store, SimTime::from_secs(100));
        // Both counter samples fall outside the 5 s window ending at t=100.
        assert_eq!(snap.node("node-1").unwrap().tx_rate, 0.0);
    }
}
