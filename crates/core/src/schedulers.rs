//! Scheduling policies: the supervised scheduler and the baselines it is
//! compared against.
//!
//! Every policy implements [`JobScheduler`]: given a job request and a
//! [`SchedulingContext`] (the frozen snapshot + cluster for the current
//! burst, plus shared scratch buffers), produce a [`NodeRanking`] over the
//! feasible candidate nodes (best first). Rankings carry interned
//! [`cluster::NodeId`]s; names are resolved only at the edges. Table 4 of the
//! paper compares the supervised models against the Kubernetes default
//! scheduler; the random and heuristic policies are additional reference
//! points used by the ablation experiments.
//!
//! [`JobScheduler::select_batch`] ranks a whole burst of requests against one
//! context, amortizing feasibility filtering and telemetry indexing across
//! the burst.

use crate::context::SchedulingContext;
use crate::decision::{NodeRanking, RankedNode};
use crate::predictor::CompletionTimePredictor;
use crate::request::JobRequest;
use cluster::{DefaultScheduler, NodeId};
use simcore::rng::Rng;

/// A placement policy.
pub trait JobScheduler {
    /// Human-readable policy name (used in result tables).
    fn name(&self) -> String;

    /// Rank the feasible nodes for this job, best first. An empty ranking
    /// means no node can host the driver.
    fn select(&mut self, request: &JobRequest, ctx: &mut SchedulingContext<'_>) -> NodeRanking;

    /// In-place variant of [`JobScheduler::select`]: build the ranking into
    /// `out`, reusing its buffer. The default implementation delegates to
    /// [`JobScheduler::select`]; allocation-free policies override it.
    fn select_into(
        &mut self,
        request: &JobRequest,
        ctx: &mut SchedulingContext<'_>,
        out: &mut NodeRanking,
    ) {
        *out = self.select(request, ctx);
    }

    /// Rank a burst of requests against one shared context. The default
    /// implementation calls [`JobScheduler::select`] per request; the context
    /// carries the amortized state (indexed telemetry, cached feasibility,
    /// scratch buffers) between them, so even the default is batch-cheap.
    /// Policies with additional cross-request structure can override it.
    fn select_batch(
        &mut self,
        requests: &[JobRequest],
        ctx: &mut SchedulingContext<'_>,
    ) -> Vec<NodeRanking> {
        requests
            .iter()
            .map(|request| self.select(request, ctx))
            .collect()
    }
}

/// The paper's contribution: rank by supervised completion-time predictions.
#[derive(Debug, Clone)]
pub struct SupervisedScheduler {
    predictor: CompletionTimePredictor,
}

impl SupervisedScheduler {
    /// Create a supervised scheduler from a trained predictor.
    pub fn new(predictor: CompletionTimePredictor) -> Self {
        SupervisedScheduler { predictor }
    }

    /// Access the underlying predictor.
    pub fn predictor(&self) -> &CompletionTimePredictor {
        &self.predictor
    }

    /// Replace the predictor (used by the service after retraining).
    pub fn set_predictor(&mut self, predictor: CompletionTimePredictor) {
        self.predictor = predictor;
    }
}

impl JobScheduler for SupervisedScheduler {
    fn name(&self) -> String {
        format!("supervised-{}", self.predictor.model_kind().display_name())
    }

    fn select(&mut self, request: &JobRequest, ctx: &mut SchedulingContext<'_>) -> NodeRanking {
        // One batch inference call over the whole feasible candidate set,
        // instead of one model walk per candidate.
        ctx.rank_feasible_batch(request, &self.predictor)
    }

    fn select_into(
        &mut self,
        request: &JobRequest,
        ctx: &mut SchedulingContext<'_>,
        out: &mut NodeRanking,
    ) {
        ctx.rank_feasible_batch_into(request, &self.predictor, out);
    }
}

/// The Kubernetes default scheduler baseline: resource-availability scoring,
/// blind to telemetry, with random tie-breaking among equal scores.
#[derive(Debug, Clone)]
pub struct KubeDefaultScheduler {
    inner: DefaultScheduler,
    rng: Rng,
}

impl KubeDefaultScheduler {
    /// Create the baseline with a tie-breaking seed.
    pub fn new(seed: u64) -> Self {
        KubeDefaultScheduler {
            inner: DefaultScheduler::new(seed),
            rng: Rng::seed_from_u64(seed ^ 0xD1CE_BA5E),
        }
    }
}

impl JobScheduler for KubeDefaultScheduler {
    fn name(&self) -> String {
        "kubernetes-default".to_string()
    }

    fn select(&mut self, request: &JobRequest, ctx: &mut SchedulingContext<'_>) -> NodeRanking {
        let driver = request.to_job_spec().driver_pod(None);
        let cluster = ctx.cluster();
        use cluster::scheduler::Scheduler as _;
        // With pruning off this is the historical full-table scan; with a
        // top-K budget the kube filter/score/tie-break runs over the pruned
        // candidate refs through the same code path (`schedule` delegates to
        // `schedule_refs`), so `K ≥ |feasible|` stays byte-identical.
        let outcome = match ctx.top_k() {
            None => self.inner.schedule(&driver, cluster.nodes()),
            Some(_) => {
                let nodes = cluster.nodes();
                let refs: Vec<&cluster::Node> = ctx
                    .pruned_candidates(request)
                    .iter()
                    .map(|id| &nodes[id.index()])
                    .collect();
                self.inner.schedule_refs(&driver, &refs)
            }
        };
        match outcome {
            cluster::ScheduleOutcome::Unschedulable { .. } => NodeRanking::default(),
            cluster::ScheduleOutcome::Scheduled { node, ranking } => {
                // Within equal-score groups kube-scheduler has no preference;
                // shuffle each tie group so Top-2 reflects that indifference,
                // then force the actually selected node to the front.
                let mut groups: Vec<Vec<cluster::ScoredNode>> = Vec::new();
                for scored in ranking {
                    match groups.last_mut() {
                        Some(group) if (group[0].score - scored.score).abs() < 1e-9 => {
                            group.push(scored)
                        }
                        _ => groups.push(vec![scored]),
                    }
                }
                let mut ordered: Vec<cluster::ScoredNode> = Vec::new();
                for mut group in groups {
                    // Fisher-Yates over the group.
                    let mut order: Vec<usize> = (0..group.len()).collect();
                    self.rng.shuffle(&mut order);
                    for i in order {
                        ordered.push(group[i].clone());
                    }
                    group.clear();
                }
                if let Some(pos) = ordered.iter().position(|s| s.node == node) {
                    let selected = ordered.remove(pos);
                    ordered.insert(0, selected);
                }
                NodeRanking {
                    ranked: ordered
                        .into_iter()
                        .filter_map(|s| {
                            cluster.node_id(&s.node).map(|id| RankedNode {
                                node: id,
                                // Pseudo-prediction: higher kube score = "faster".
                                predicted_seconds: (100.0 - s.score).max(0.0),
                            })
                        })
                        .collect(),
                }
            }
        }
    }
}

/// Uniform-random placement over the feasible candidates.
#[derive(Debug, Clone)]
pub struct RandomScheduler {
    rng: Rng,
}

impl RandomScheduler {
    /// Create a random scheduler.
    pub fn new(seed: u64) -> Self {
        RandomScheduler {
            rng: Rng::seed_from_u64(seed),
        }
    }
}

impl JobScheduler for RandomScheduler {
    fn name(&self) -> String {
        "random".to_string()
    }

    fn select(&mut self, request: &JobRequest, ctx: &mut SchedulingContext<'_>) -> NodeRanking {
        let mut candidates: Vec<NodeId> = ctx.pruned_candidates(request).to_vec();
        self.rng.shuffle(&mut candidates);
        NodeRanking {
            ranked: candidates
                .into_iter()
                .enumerate()
                .map(|(i, node)| RankedNode {
                    node,
                    predicted_seconds: i as f64,
                })
                .collect(),
        }
    }
}

/// Heuristic baseline: pick the node with the lowest CPU load average.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastLoadedScheduler;

impl JobScheduler for LeastLoadedScheduler {
    fn name(&self) -> String {
        "least-loaded-heuristic".to_string()
    }

    fn select(&mut self, request: &JobRequest, ctx: &mut SchedulingContext<'_>) -> NodeRanking {
        ctx.rank_feasible(request, |ctx, id| {
            ctx.telemetry()
                .node(id)
                .map(|t| t.cpu_load)
                .unwrap_or(f64::MAX)
        })
    }
}

/// Heuristic baseline: pick the node with the lowest mean RTT to its peers.
#[derive(Debug, Clone, Copy, Default)]
pub struct LowestRttScheduler;

impl JobScheduler for LowestRttScheduler {
    fn name(&self) -> String {
        "lowest-rtt-heuristic".to_string()
    }

    fn select(&mut self, request: &JobRequest, ctx: &mut SchedulingContext<'_>) -> NodeRanking {
        ctx.rank_feasible(request, |ctx, id| {
            let (mean, _, _) = ctx.telemetry().rtt_stats(id);
            if mean > 0.0 {
                mean
            } else {
                f64::MAX
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureSchema;
    use cluster::{ClusterState, Node, Resources};
    use mlcore::{Dataset, ModelConfig, ModelKind, TrainedModel};
    use simcore::SimTime;
    use sparksim::WorkloadKind;
    use telemetry::{ClusterSnapshot, NodeTelemetry};

    fn cluster(n: usize) -> ClusterState {
        let mut c = ClusterState::new();
        for i in 0..n {
            c.add_node(Node::new(
                format!("node-{}", i + 1),
                simnet::NodeId(i),
                Resources::from_cores_and_gib(6, 8),
                "SITE",
            ));
        }
        c
    }

    /// Build a snapshot over nodes 1..=n, skipping any node in `skip`.
    fn snapshot_without(n: usize, skip: &[usize]) -> ClusterSnapshot {
        let mut snap = ClusterSnapshot::at(SimTime::from_secs(10));
        for i in 0..n {
            if skip.contains(&i) {
                continue;
            }
            let name = format!("node-{}", i + 1);
            snap.insert_node(
                &name,
                NodeTelemetry {
                    cpu_load: i as f64,
                    memory_available_bytes: 6e9,
                    tx_rate: 0.0,
                    rx_rate: 0.0,
                },
            );
            for j in 0..n {
                if i != j && !skip.contains(&j) {
                    snap.insert_rtt(&name, &format!("node-{}", j + 1), 0.01 * (i + 1) as f64);
                }
            }
        }
        snap
    }

    fn snapshot(n: usize) -> ClusterSnapshot {
        snapshot_without(n, &[])
    }

    fn request() -> JobRequest {
        JobRequest::named("sort-t", WorkloadKind::Sort, 100_000, 2)
    }

    /// Reference full-scan feasibility by name (the retired legacy free
    /// function, kept as a test oracle): filter every node with the real
    /// driver pod.
    fn feasible_names(request: &JobRequest, cluster: &ClusterState) -> Vec<String> {
        let driver = request.to_job_spec().driver_pod(None);
        cluster
            .nodes()
            .iter()
            .filter(|node| {
                DefaultScheduler::filter(&driver, node)
                    == cluster::scheduler::FilterResult::Feasible
            })
            .map(|node| node.name.clone())
            .collect()
    }

    /// A predictor trained to prefer low-CPU-load nodes.
    fn predictor() -> CompletionTimePredictor {
        let schema = FeatureSchema::standard();
        let mut data = Dataset::new(schema.names().to_vec());
        let mut rng = Rng::seed_from_u64(5);
        let job = request();
        for load in 0..30 {
            let mut snap = snapshot(1);
            snap.node_mut("node-1").unwrap().cpu_load = load as f64 / 5.0;
            let features = schema.construct(&snap, "node-1", &job);
            data.push(features, 10.0 + 4.0 * load as f64 / 5.0).unwrap();
        }
        let model =
            TrainedModel::train(ModelKind::Linear, &ModelConfig::default(), &data, &mut rng);
        CompletionTimePredictor::new(schema, model).expect("schema matches training data")
    }

    #[test]
    fn feasible_candidates_respects_capacity() {
        let mut c = cluster(3);
        // Fill node-2 completely.
        let id = c.create_pod(
            cluster::PodSpec::new("hog", Resources::from_cores_and_gib(6, 8)),
            SimTime::ZERO,
        );
        c.bind_pod(id, "node-2", SimTime::ZERO).unwrap();
        let candidates = feasible_names(&request(), &c);
        assert_eq!(candidates, vec!["node-1", "node-3"]);
        // The context agrees, id-for-name.
        let snap = snapshot(3);
        let mut ctx = SchedulingContext::new(&snap, &c);
        let ids: Vec<&str> = ctx
            .feasible_candidates(&request())
            .iter()
            .map(|&id| c.node_name(id))
            .collect();
        assert_eq!(ids, candidates);
    }

    #[test]
    fn supervised_scheduler_prefers_idle_nodes() {
        let mut sched = SupervisedScheduler::new(predictor());
        assert!(sched.name().contains("Linear"));
        assert!(!sched.predictor().schema().is_empty());
        let c = cluster(4);
        let snap = snapshot(4);
        let mut ctx = SchedulingContext::new(&snap, &c);
        let ranking = sched.select(&request(), &mut ctx);
        assert_eq!(ranking.len(), 4);
        // node-1 has the lowest load in the snapshot.
        assert_eq!(ranking.best_name(&c), Some("node-1"));
        // Predictions ascend down the ranking.
        for pair in ranking.ranked.windows(2) {
            assert!(pair[0].predicted_seconds <= pair[1].predicted_seconds);
        }
    }

    #[test]
    fn kube_default_covers_all_feasible_nodes_and_spreads_choices() {
        let mut sched = KubeDefaultScheduler::new(11);
        assert_eq!(sched.name(), "kubernetes-default");
        let c = cluster(6);
        let snap = snapshot(6);
        let mut ctx = SchedulingContext::new(&snap, &c);
        let mut firsts = std::collections::BTreeSet::new();
        for _ in 0..30 {
            let ranking = sched.select(&request(), &mut ctx);
            assert_eq!(ranking.len(), 6);
            firsts.insert(ranking.best_name(&c).unwrap().to_string());
        }
        assert!(firsts.len() >= 3, "tie-breaking should spread: {firsts:?}");
    }

    #[test]
    fn kube_default_empty_when_unschedulable() {
        let mut sched = KubeDefaultScheduler::new(3);
        let c = cluster(2);
        let snap = snapshot(2);
        let mut ctx = SchedulingContext::new(&snap, &c);
        let huge = JobRequest::named("huge", WorkloadKind::Sort, 1000, 1)
            .with_driver_resources(64_000, 64 * 1024 * 1024 * 1024);
        let ranking = sched.select(&huge, &mut ctx);
        assert!(ranking.is_empty());
    }

    #[test]
    fn random_scheduler_is_uniformish_and_seeded() {
        let c = cluster(6);
        let snap = snapshot(6);
        let mut a = RandomScheduler::new(42);
        let mut b = RandomScheduler::new(42);
        let mut ctx = SchedulingContext::new(&snap, &c);
        let picks_a: Vec<String> = (0..20)
            .map(|_| {
                a.select(&request(), &mut ctx)
                    .best_name(&c)
                    .unwrap()
                    .to_string()
            })
            .collect();
        let picks_b: Vec<String> = (0..20)
            .map(|_| {
                b.select(&request(), &mut ctx)
                    .best_name(&c)
                    .unwrap()
                    .to_string()
            })
            .collect();
        assert_eq!(picks_a, picks_b);
        let distinct: std::collections::BTreeSet<&String> = picks_a.iter().collect();
        assert!(distinct.len() >= 3);
        assert_eq!(a.name(), "random");
    }

    #[test]
    fn heuristics_rank_by_their_signals() {
        let c = cluster(4);
        let snap = snapshot(4);
        let mut ctx = SchedulingContext::new(&snap, &c);
        let mut least_loaded = LeastLoadedScheduler;
        let r = least_loaded.select(&request(), &mut ctx);
        assert_eq!(r.best_name(&c), Some("node-1"), "lowest cpu_load");
        assert_eq!(least_loaded.name(), "least-loaded-heuristic");

        let mut lowest_rtt = LowestRttScheduler;
        let r = lowest_rtt.select(&request(), &mut ctx);
        assert_eq!(r.best_name(&c), Some("node-1"), "lowest mean RTT");
        assert_eq!(lowest_rtt.name(), "lowest-rtt-heuristic");
    }

    #[test]
    fn heuristics_push_unknown_nodes_last() {
        let c = cluster(3);
        // node-1 was never scraped or probed.
        let snap = snapshot_without(3, &[0]);
        let mut ctx = SchedulingContext::new(&snap, &c);
        let mut least_loaded = LeastLoadedScheduler;
        let r = least_loaded.select(&request(), &mut ctx);
        assert_eq!(c.node_name(r.ranked.last().unwrap().node), "node-1");
        let mut lowest_rtt = LowestRttScheduler;
        let r = lowest_rtt.select(&request(), &mut ctx);
        assert_eq!(c.node_name(r.ranked.last().unwrap().node), "node-1");
    }

    #[test]
    fn select_batch_equals_sequential_selects_for_every_policy() {
        let c = cluster(5);
        let snap = snapshot(5);
        let requests: Vec<JobRequest> = (0..4)
            .map(|i| {
                JobRequest::named(
                    format!("batch-{i}"),
                    WorkloadKind::PAPER_SET[i % 3],
                    50_000 + i as u64 * 10_000,
                    2,
                )
            })
            .collect();

        // Stateless policies: batch must equal per-request selects exactly.
        let mut supervised_a = SupervisedScheduler::new(predictor());
        let mut supervised_b = SupervisedScheduler::new(predictor());
        let mut ctx_a = SchedulingContext::new(&snap, &c);
        let mut ctx_b = SchedulingContext::new(&snap, &c);
        let batch = supervised_a.select_batch(&requests, &mut ctx_a);
        let sequential: Vec<NodeRanking> = requests
            .iter()
            .map(|r| supervised_b.select(r, &mut ctx_b))
            .collect();
        assert_eq!(batch, sequential);

        // Stateful (seeded) policies: batch must consume the RNG exactly like
        // sequential selects, so equal seeds give equal outputs.
        let batch = RandomScheduler::new(9).select_batch(&requests, &mut ctx_a);
        let sequential: Vec<NodeRanking> = {
            let mut policy = RandomScheduler::new(9);
            requests
                .iter()
                .map(|r| policy.select(r, &mut ctx_b))
                .collect()
        };
        assert_eq!(batch, sequential);
    }
}
