//! The Decision Module.
//!
//! *"Once the supervised model predicts expected job completion times across
//! candidate nodes, the scheduler ranks nodes in ascending order of predicted
//! duration. The top-ranked node is selected as the launch node."*

use serde::{Deserialize, Serialize};

/// One candidate node with its predicted completion time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedNode {
    /// Node name.
    pub node: String,
    /// Predicted job completion time in seconds.
    pub predicted_seconds: f64,
}

/// The full ranking produced for one scheduling decision.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct NodeRanking {
    /// Candidates sorted by ascending predicted duration (best first).
    pub ranked: Vec<RankedNode>,
}

impl NodeRanking {
    /// The selected (top-ranked) node, if any candidate existed.
    pub fn best(&self) -> Option<&RankedNode> {
        self.ranked.first()
    }

    /// Names of the top `k` nodes.
    pub fn top_k(&self, k: usize) -> Vec<&str> {
        self.ranked.iter().take(k).map(|r| r.node.as_str()).collect()
    }

    /// Position (0-based) of a node in the ranking.
    pub fn position_of(&self, node: &str) -> Option<usize> {
        self.ranked.iter().position(|r| r.node == node)
    }

    /// Number of candidates ranked.
    pub fn len(&self) -> usize {
        self.ranked.len()
    }

    /// True when no candidates were ranked.
    pub fn is_empty(&self) -> bool {
        self.ranked.is_empty()
    }
}

/// Ranks candidate nodes by predicted completion time.
#[derive(Debug, Clone, Copy, Default)]
pub struct DecisionModule;

impl DecisionModule {
    /// Build a ranking from parallel slices of candidates and predictions.
    /// Ties break lexicographically by node name so decisions are
    /// deterministic and auditable.
    pub fn rank(&self, candidates: &[String], predictions: &[f64]) -> NodeRanking {
        assert_eq!(
            candidates.len(),
            predictions.len(),
            "one prediction per candidate"
        );
        let mut ranked: Vec<RankedNode> = candidates
            .iter()
            .zip(predictions)
            .map(|(node, &p)| RankedNode {
                node: node.clone(),
                predicted_seconds: p,
            })
            .collect();
        ranked.sort_by(|a, b| {
            a.predicted_seconds
                .partial_cmp(&b.predicted_seconds)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.node.cmp(&b.node))
        });
        NodeRanking { ranked }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidates(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn ranks_ascending_by_prediction() {
        let ranking = DecisionModule.rank(
            &candidates(&["node-1", "node-2", "node-3"]),
            &[30.0, 10.0, 20.0],
        );
        assert_eq!(ranking.len(), 3);
        assert_eq!(ranking.best().unwrap().node, "node-2");
        assert_eq!(ranking.top_k(2), vec!["node-2", "node-3"]);
        assert_eq!(ranking.position_of("node-1"), Some(2));
        assert_eq!(ranking.position_of("node-9"), None);
        assert!(!ranking.is_empty());
    }

    #[test]
    fn ties_break_by_name() {
        let ranking = DecisionModule.rank(&candidates(&["node-b", "node-a"]), &[5.0, 5.0]);
        assert_eq!(ranking.best().unwrap().node, "node-a");
    }

    #[test]
    fn empty_candidates_give_empty_ranking() {
        let ranking = DecisionModule.rank(&[], &[]);
        assert!(ranking.is_empty());
        assert_eq!(ranking.best(), None);
        assert!(ranking.top_k(3).is_empty());
    }

    #[test]
    fn top_k_clamps_to_length() {
        let ranking = DecisionModule.rank(&candidates(&["a", "b"]), &[1.0, 2.0]);
        assert_eq!(ranking.top_k(10).len(), 2);
        assert_eq!(ranking.top_k(0).len(), 0);
    }

    #[test]
    #[should_panic(expected = "one prediction per candidate")]
    fn mismatched_lengths_panic() {
        DecisionModule.rank(&candidates(&["a"]), &[1.0, 2.0]);
    }

    #[test]
    fn nan_predictions_do_not_crash_ranking() {
        let ranking = DecisionModule.rank(&candidates(&["a", "b", "c"]), &[f64::NAN, 1.0, 2.0]);
        assert_eq!(ranking.len(), 3);
        // All nodes still present.
        assert!(ranking.position_of("a").is_some());
    }
}
