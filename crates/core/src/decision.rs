//! The Decision Module.
//!
//! *"Once the supervised model predicts expected job completion times across
//! candidate nodes, the scheduler ranks nodes in ascending order of predicted
//! duration. The top-ranked node is selected as the launch node."*
//!
//! Rankings carry interned [`NodeId`]s, not node names: the hot path never
//! clones a `String`. Names are resolved through the cluster's intern table
//! only at the edges (manifest rendering, logs, reports) via
//! [`NodeRanking::best_name`] / [`NodeRanking::names`].

use cluster::{ClusterState, NodeId};
use serde::{Deserialize, Serialize};

/// One candidate node with its predicted completion time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankedNode {
    /// Interned node identity (resolve via the cluster that issued it).
    pub node: NodeId,
    /// Predicted job completion time in seconds.
    pub predicted_seconds: f64,
}

/// The full ranking produced for one scheduling decision.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct NodeRanking {
    /// Candidates sorted by ascending predicted duration (best first).
    pub ranked: Vec<RankedNode>,
}

impl NodeRanking {
    /// The selected (top-ranked) node, if any candidate existed.
    pub fn best(&self) -> Option<&RankedNode> {
        self.ranked.first()
    }

    /// Name of the selected node, resolved against the issuing cluster.
    pub fn best_name<'a>(&self, cluster: &'a ClusterState) -> Option<&'a str> {
        self.best().map(|r| cluster.node_name(r.node))
    }

    /// Ids of the top `k` nodes.
    pub fn top_k(&self, k: usize) -> Vec<NodeId> {
        self.ranked.iter().take(k).map(|r| r.node).collect()
    }

    /// All ranked node names in order, resolved against the issuing cluster.
    pub fn names<'a>(&self, cluster: &'a ClusterState) -> Vec<&'a str> {
        self.ranked
            .iter()
            .map(|r| cluster.node_name(r.node))
            .collect()
    }

    /// Position (0-based) of a node in the ranking.
    pub fn position_of(&self, node: NodeId) -> Option<usize> {
        self.ranked.iter().position(|r| r.node == node)
    }

    /// Number of candidates ranked.
    pub fn len(&self) -> usize {
        self.ranked.len()
    }

    /// True when no candidates were ranked.
    pub fn is_empty(&self) -> bool {
        self.ranked.is_empty()
    }
}

/// Ranks candidate nodes by predicted completion time.
#[derive(Debug, Clone, Copy, Default)]
pub struct DecisionModule;

impl DecisionModule {
    /// Build a ranking from parallel slices of candidates and predictions.
    /// Ties break by ascending [`NodeId`] (registration order) so decisions
    /// are deterministic and auditable.
    pub fn rank(&self, candidates: &[NodeId], predictions: &[f64]) -> NodeRanking {
        let mut out = NodeRanking::default();
        self.rank_into(candidates, predictions, &mut out);
        out
    }

    /// In-place variant of [`DecisionModule::rank`]: build the ranking into
    /// `out`, reusing its buffer. The sort is unstable, which is
    /// result-identical to a stable sort here because the [`NodeId`]
    /// tie-break makes the comparator a total order over distinct candidates
    /// (for finite predictions).
    pub fn rank_into(&self, candidates: &[NodeId], predictions: &[f64], out: &mut NodeRanking) {
        assert_eq!(
            candidates.len(),
            predictions.len(),
            "one prediction per candidate"
        );
        out.ranked.clear();
        out.ranked.extend(
            candidates
                .iter()
                .zip(predictions)
                .map(|(&node, &p)| RankedNode {
                    node,
                    predicted_seconds: p,
                }),
        );
        out.ranked.sort_unstable_by(|a, b| {
            a.predicted_seconds
                .partial_cmp(&b.predicted_seconds)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.node.cmp(&b.node))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(indices: &[u32]) -> Vec<NodeId> {
        indices.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn ranks_ascending_by_prediction() {
        let ranking = DecisionModule.rank(&ids(&[0, 1, 2]), &[30.0, 10.0, 20.0]);
        assert_eq!(ranking.len(), 3);
        assert_eq!(ranking.best().unwrap().node, NodeId(1));
        assert_eq!(ranking.top_k(2), ids(&[1, 2]));
        assert_eq!(ranking.position_of(NodeId(0)), Some(2));
        assert_eq!(ranking.position_of(NodeId(9)), None);
        assert!(!ranking.is_empty());
    }

    #[test]
    fn ties_break_by_node_id() {
        let ranking = DecisionModule.rank(&ids(&[5, 2]), &[5.0, 5.0]);
        assert_eq!(ranking.best().unwrap().node, NodeId(2));
    }

    #[test]
    fn empty_candidates_give_empty_ranking() {
        let ranking = DecisionModule.rank(&[], &[]);
        assert!(ranking.is_empty());
        assert_eq!(ranking.best(), None);
        assert!(ranking.top_k(3).is_empty());
    }

    #[test]
    fn top_k_clamps_to_length() {
        let ranking = DecisionModule.rank(&ids(&[0, 1]), &[1.0, 2.0]);
        assert_eq!(ranking.top_k(10).len(), 2);
        assert_eq!(ranking.top_k(0).len(), 0);
    }

    #[test]
    #[should_panic(expected = "one prediction per candidate")]
    fn mismatched_lengths_panic() {
        DecisionModule.rank(&ids(&[0]), &[1.0, 2.0]);
    }

    #[test]
    fn nan_predictions_do_not_crash_ranking() {
        let ranking = DecisionModule.rank(&ids(&[0, 1, 2]), &[f64::NAN, 1.0, 2.0]);
        assert_eq!(ranking.len(), 3);
        // All nodes still present.
        assert!(ranking.position_of(NodeId(0)).is_some());
    }

    #[test]
    fn names_resolve_through_cluster() {
        use cluster::{Node, Resources};
        let mut c = ClusterState::new();
        for i in 0..2 {
            c.add_node(Node::new(
                format!("node-{}", i + 1),
                simnet::NodeId(i),
                Resources::from_cores_and_gib(6, 8),
                "SITE",
            ));
        }
        let ranking = DecisionModule.rank(&ids(&[1, 0]), &[1.0, 2.0]);
        assert_eq!(ranking.best_name(&c), Some("node-2"));
        assert_eq!(ranking.names(&c), vec!["node-2", "node-1"]);
    }
}
