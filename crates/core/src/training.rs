//! Offline model training.
//!
//! *"The model is trained offline using historical data collected from real
//! job executions."* The pipeline turns the [`crate::logger::ExecutionLogger`]
//! archive into an `mlcore` dataset, fits one model per requested family and
//! reports held-out accuracy, which is what the experiment harness uses to
//! populate Table 4.

use crate::features::FeatureSchema;
use crate::logger::ExecutionLogger;
use crate::predictor::CompletionTimePredictor;
use mlcore::{evaluate_on, Dataset, ModelKind, RegressionMetrics, TrainedModel};
use serde::{Deserialize, Serialize};
use simcore::rng::Rng;

/// Result of training one model family.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainingOutcome {
    /// Which family was trained.
    pub kind: ModelKind,
    /// The trained predictor (schema + model).
    pub predictor: CompletionTimePredictor,
    /// Metrics on the held-out fraction.
    pub holdout_metrics: RegressionMetrics,
    /// Metrics on the training fraction (to expose over/under-fitting).
    pub train_metrics: RegressionMetrics,
    /// Number of training rows used.
    pub train_rows: usize,
    /// Number of held-out rows used.
    pub holdout_rows: usize,
}

/// Configurable training pipeline.
#[derive(Debug, Clone)]
pub struct TrainingPipeline {
    /// Feature schema the dataset was constructed with.
    pub schema: FeatureSchema,
    /// Hyperparameters for every model family.
    pub model_config: mlcore::model::ModelConfig,
    /// Fraction of rows held out for evaluation.
    pub holdout_fraction: f64,
}

impl Default for TrainingPipeline {
    fn default() -> Self {
        TrainingPipeline {
            schema: FeatureSchema::standard(),
            model_config: mlcore::model::ModelConfig::default(),
            holdout_fraction: 0.25,
        }
    }
}

impl TrainingPipeline {
    /// Create a pipeline for a specific schema (e.g. an ablated one).
    pub fn with_schema(schema: FeatureSchema) -> Self {
        TrainingPipeline {
            schema,
            ..Default::default()
        }
    }

    /// Train one model family on a dataset.
    pub fn train_one(&self, kind: ModelKind, data: &Dataset, rng: &mut Rng) -> TrainingOutcome {
        let (train, holdout) = data.train_test_split(self.holdout_fraction, rng);
        let model = TrainedModel::train(kind, &self.model_config, &train, rng);
        let train_metrics = evaluate_on(&model, &train);
        let holdout_metrics = if holdout.is_empty() {
            train_metrics
        } else {
            evaluate_on(&model, &holdout)
        };
        TrainingOutcome {
            kind,
            // The dataset is built from this pipeline's own schema, so the
            // widths agree by construction.
            predictor: CompletionTimePredictor::new(self.schema.clone(), model)
                .expect("training dataset width matches the pipeline schema"),
            holdout_metrics,
            train_metrics,
            train_rows: train.len(),
            holdout_rows: holdout.len(),
        }
    }

    /// Train every model family on the logger's archive.
    pub fn train_from_logger(
        &self,
        logger: &ExecutionLogger,
        rng: &mut Rng,
    ) -> Vec<TrainingOutcome> {
        let data = logger.to_dataset();
        ModelKind::ALL
            .iter()
            .map(|&kind| self.train_one(kind, &data, rng))
            .collect()
    }
}

/// Convenience function: train all three paper models on a logger archive
/// with the default pipeline.
pub fn train_all_models(logger: &ExecutionLogger, rng: &mut Rng) -> Vec<TrainingOutcome> {
    TrainingPipeline::default().train_from_logger(logger, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::JobRequest;
    use mlcore::{GradientBoostingConfig, RandomForestConfig};
    use simcore::SimTime;
    use sparksim::WorkloadKind;
    use telemetry::{ClusterSnapshot, NodeTelemetry};

    /// Build a logger whose records follow a learnable pattern: completion
    /// time grows with cpu load and rtt.
    fn synthetic_logger(n: usize, seed: u64) -> ExecutionLogger {
        let mut logger = ExecutionLogger::default();
        let mut rng = Rng::seed_from_u64(seed);
        for i in 0..n {
            let load = rng.uniform(0.0, 5.0);
            let rtt = rng.uniform(0.001, 0.08);
            let mut snap = ClusterSnapshot::at(SimTime::from_secs(i as u64));
            snap.insert_node(
                "node-1",
                NodeTelemetry {
                    cpu_load: load,
                    memory_available_bytes: rng.uniform(2e9, 7e9),
                    tx_rate: rng.uniform(0.0, 5e6),
                    rx_rate: rng.uniform(0.0, 5e6),
                },
            );
            snap.insert_rtt("node-1", "node-2", rtt);
            let kind = *rng.choose(&WorkloadKind::PAPER_SET).unwrap();
            let records = 50_000 + rng.gen_range(200_000);
            let request = JobRequest::named(format!("job-{i}"), kind, records, 2);
            let duration =
                15.0 + 6.0 * load + 300.0 * rtt + records as f64 / 20_000.0 + rng.normal(0.0, 0.5);
            logger.log_execution(&snap, &request, "node-1", duration);
        }
        logger
    }

    fn fast_pipeline() -> TrainingPipeline {
        TrainingPipeline {
            model_config: mlcore::model::ModelConfig {
                forest: RandomForestConfig {
                    n_trees: 25,
                    workers: 2,
                    ..Default::default()
                },
                gbdt: GradientBoostingConfig {
                    n_rounds: 60,
                    ..Default::default()
                },
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn trains_all_three_families_with_good_holdout_fit() {
        let logger = synthetic_logger(500, 1);
        let mut rng = Rng::seed_from_u64(2);
        let outcomes = fast_pipeline().train_from_logger(&logger, &mut rng);
        assert_eq!(outcomes.len(), 3);
        for outcome in &outcomes {
            assert!(outcome.train_rows > 0 && outcome.holdout_rows > 0);
            assert!(
                outcome.holdout_metrics.r2 > 0.75,
                "{}: holdout r2 {}",
                outcome.kind,
                outcome.holdout_metrics.r2
            );
            assert!(outcome.train_metrics.r2 >= outcome.holdout_metrics.r2 - 0.2);
            assert_eq!(outcome.predictor.model_kind(), outcome.kind);
        }
        // The three families are distinct.
        let kinds: std::collections::BTreeSet<String> =
            outcomes.iter().map(|o| format!("{}", o.kind)).collect();
        assert_eq!(kinds.len(), 3);
    }

    #[test]
    fn train_all_models_helper_works() {
        let logger = synthetic_logger(120, 3);
        let mut rng = Rng::seed_from_u64(4);
        let outcomes = train_all_models(&logger, &mut rng);
        assert_eq!(outcomes.len(), 3);
    }

    #[test]
    fn zero_holdout_fraction_evaluates_on_train() {
        let logger = synthetic_logger(80, 5);
        let mut rng = Rng::seed_from_u64(6);
        let pipeline = TrainingPipeline {
            holdout_fraction: 0.0,
            ..fast_pipeline()
        };
        let data = logger.to_dataset();
        let outcome = pipeline.train_one(ModelKind::Linear, &data, &mut rng);
        assert_eq!(outcome.holdout_rows, 0);
        assert_eq!(outcome.holdout_metrics, outcome.train_metrics);
    }

    #[test]
    fn with_schema_uses_custom_schema() {
        let schema = FeatureSchema::with_groups(&[crate::features::FeatureGroup::Job]);
        let pipeline = TrainingPipeline::with_schema(schema.clone());
        assert_eq!(pipeline.schema.len(), schema.len());
    }
}
