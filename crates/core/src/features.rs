//! The Feature Constructor (Table 1).
//!
//! For each candidate node the constructor combines the latest telemetry
//! snapshot with the static job configuration into a fixed-width feature
//! vector:
//!
//! | Feature | Description | Type |
//! |---|---|---|
//! | `rtt_mean`, `rtt_max`, `rtt_std` | RTT statistics from the candidate node to all peers | Network |
//! | `tx_rate`, `rx_rate` | transmit / receive throughput (bytes/s) | Network |
//! | `cpu_load` | load average (runnable processes) | Node |
//! | `memory_available` | available memory (bytes) | Node |
//! | `app_*` (one-hot) | categorical application type | Job |
//! | `input_records` | input data size | Job |
//! | `executor_count`, `executor_cores`, `executor_memory_gb`, `shuffle_partitions` | resource configuration | Job |
//!
//! The schema is fixed and versioned by position so a model trained offline
//! keeps working when re-loaded by a long-running scheduler.

use crate::request::JobRequest;
use mlcore::FeatureMatrix;
use serde::{Deserialize, Serialize};
use sparksim::WorkloadKind;
use telemetry::{ClusterSnapshot, NodeTelemetry};

/// Which group a feature belongs to (Table 1's Type column). Used by the
/// ablation experiments to drop whole groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureGroup {
    /// Network telemetry (RTT, throughput).
    Network,
    /// Host telemetry (CPU, memory).
    Node,
    /// Static job configuration.
    Job,
}

/// A named, grouped feature schema with a stable column order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureSchema {
    names: Vec<String>,
    groups: Vec<FeatureGroup>,
}

/// One constructed feature vector (aligned with a [`FeatureSchema`]).
pub type FeatureVector = Vec<f64>;

impl Default for FeatureSchema {
    fn default() -> Self {
        Self::standard()
    }
}

impl FeatureSchema {
    /// The full Table 1 schema.
    pub fn standard() -> Self {
        let mut names: Vec<String> = Vec::new();
        let mut groups: Vec<FeatureGroup> = Vec::new();
        let mut push = |name: &str, group: FeatureGroup| {
            names.push(name.to_string());
            groups.push(group);
        };
        push("rtt_mean_s", FeatureGroup::Network);
        push("rtt_max_s", FeatureGroup::Network);
        push("rtt_std_s", FeatureGroup::Network);
        push("tx_rate_bps", FeatureGroup::Network);
        push("rx_rate_bps", FeatureGroup::Network);
        push("cpu_load", FeatureGroup::Node);
        push("memory_available_bytes", FeatureGroup::Node);
        for kind in WorkloadKind::ALL {
            push(&format!("app_{}", kind.as_str()), FeatureGroup::Job);
        }
        push("input_records", FeatureGroup::Job);
        push("executor_count", FeatureGroup::Job);
        push("executor_cores", FeatureGroup::Job);
        push("executor_memory_gb", FeatureGroup::Job);
        push("shuffle_partitions", FeatureGroup::Job);
        FeatureSchema { names, groups }
    }

    /// A schema restricted to the given groups (ablation variants).
    pub fn with_groups(groups_to_keep: &[FeatureGroup]) -> Self {
        let full = Self::standard();
        let mut names = Vec::new();
        let mut groups = Vec::new();
        for (name, group) in full.names.into_iter().zip(full.groups) {
            if groups_to_keep.contains(&group) {
                names.push(name);
                groups.push(group);
            }
        }
        FeatureSchema { names, groups }
    }

    /// Column names in order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Column groups in order.
    pub fn groups(&self) -> &[FeatureGroup] {
        &self.groups
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Index of a named feature.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Build the feature vector for `candidate_node` given the telemetry
    /// snapshot and the job request. Missing telemetry falls back to zeros,
    /// mirroring how a Prometheus query returns empty vectors for unscraped
    /// instances.
    pub fn construct(
        &self,
        snapshot: &ClusterSnapshot,
        candidate_node: &str,
        job: &JobRequest,
    ) -> FeatureVector {
        let node = snapshot.node(candidate_node).copied().unwrap_or_default();
        let rtt_stats = snapshot.rtt_stats_from(candidate_node);
        let mut out = Vec::with_capacity(self.len());
        self.construct_into(&mut out, &node, rtt_stats, job);
        out
    }

    /// The value of one named feature from pre-resolved telemetry. Shared by
    /// every construction variant so the vector and matrix paths produce the
    /// same floats.
    fn feature_value(
        name: &str,
        node: &NodeTelemetry,
        rtt_stats: (f64, f64, f64),
        job: &JobRequest,
    ) -> f64 {
        let (rtt_mean, rtt_max, rtt_std) = rtt_stats;
        match name {
            "rtt_mean_s" => rtt_mean,
            "rtt_max_s" => rtt_max,
            "rtt_std_s" => rtt_std,
            "tx_rate_bps" => node.tx_rate,
            "rx_rate_bps" => node.rx_rate,
            "cpu_load" => node.cpu_load,
            "memory_available_bytes" => node.memory_available_bytes,
            "input_records" => job.workload.input_records as f64,
            "executor_count" => job.workload.executor_count as f64,
            "executor_cores" => job.workload.executor_cores as f64,
            "executor_memory_gb" => {
                job.workload.executor_memory_bytes as f64 / (1024.0 * 1024.0 * 1024.0)
            }
            "shuffle_partitions" => job.workload.shuffle_partitions as f64,
            other => {
                if let Some(app) = other.strip_prefix("app_") {
                    if app == job.app_type() {
                        1.0
                    } else {
                        0.0
                    }
                } else {
                    0.0
                }
            }
        }
    }

    /// Allocation-free feature construction from pre-resolved telemetry: the
    /// hot-path variant used by the scheduling context, which resolves
    /// per-node telemetry and RTT statistics once per burst. `out` is cleared
    /// and refilled; reuse it across candidates to avoid per-candidate
    /// allocation.
    pub fn construct_into(
        &self,
        out: &mut FeatureVector,
        node: &NodeTelemetry,
        rtt_stats: (f64, f64, f64),
        job: &JobRequest,
    ) {
        out.clear();
        out.reserve(self.len());
        out.extend(
            self.names
                .iter()
                .map(|name| Self::feature_value(name, node, rtt_stats, job)),
        );
    }

    /// Append one candidate's feature row to a contiguous [`FeatureMatrix`]
    /// (the batch-inference input). The matrix stride must match the schema
    /// width; rows are constructed in place, no temporary `Vec`.
    pub fn construct_into_matrix(
        &self,
        matrix: &mut FeatureMatrix,
        node: &NodeTelemetry,
        rtt_stats: (f64, f64, f64),
        job: &JobRequest,
    ) {
        assert_eq!(
            matrix.n_features(),
            self.len(),
            "matrix stride must match the schema width"
        );
        let row = matrix.add_row();
        for (slot, name) in row.iter_mut().zip(&self.names) {
            *slot = Self::feature_value(name, node, rtt_stats, job);
        }
    }

    /// Build the full candidate × feature matrix for one decision, in
    /// candidate order. `matrix` is reset to this schema's stride and
    /// refilled; reuse it across decisions to avoid allocation.
    pub fn construct_batch_into(
        &self,
        matrix: &mut FeatureMatrix,
        snapshot: &ClusterSnapshot,
        candidates: &[String],
        job: &JobRequest,
    ) {
        matrix.reset(self.len());
        for candidate in candidates {
            let node = snapshot.node(candidate).copied().unwrap_or_default();
            self.construct_into_matrix(matrix, &node, snapshot.rtt_stats_from(candidate), job);
        }
    }

    /// Build a vector per candidate node, in the given order.
    pub fn construct_all(
        &self,
        snapshot: &ClusterSnapshot,
        candidates: &[String],
        job: &JobRequest,
    ) -> Vec<FeatureVector> {
        candidates
            .iter()
            .map(|node| self.construct(snapshot, node, job))
            .collect()
    }

    /// Markdown rendering of the schema (used by the Table 1 harness binary).
    pub fn to_markdown_table(&self) -> String {
        let mut out = String::from("| Feature | Type |\n|---|---|\n");
        for (name, group) in self.names.iter().zip(&self.groups) {
            let group = match group {
                FeatureGroup::Network => "Network",
                FeatureGroup::Node => "Node",
                FeatureGroup::Job => "Job",
            };
            out.push_str(&format!("| {name} | {group} |\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimTime;
    use telemetry::NodeTelemetry;

    fn snapshot() -> ClusterSnapshot {
        let mut snap = ClusterSnapshot::at(SimTime::from_secs(100));
        snap.insert_node(
            "node-1",
            NodeTelemetry {
                cpu_load: 2.5,
                memory_available_bytes: 6e9,
                tx_rate: 1e6,
                rx_rate: 2e6,
            },
        );
        snap.insert_node(
            "node-2",
            NodeTelemetry {
                cpu_load: 0.5,
                memory_available_bytes: 7e9,
                tx_rate: 0.0,
                rx_rate: 0.0,
            },
        );
        snap.insert_rtt("node-1", "node-2", 0.010);
        snap.insert_rtt("node-1", "node-3", 0.070);
        snap.insert_rtt("node-2", "node-1", 0.011);
        snap
    }

    fn job() -> JobRequest {
        JobRequest::named("sort-x", WorkloadKind::Sort, 250_000, 3)
    }

    #[test]
    fn standard_schema_has_expected_columns() {
        let schema = FeatureSchema::standard();
        assert!(!schema.is_empty());
        // 7 telemetry + 5 one-hot app + 5 job config = 17.
        assert_eq!(schema.len(), 17);
        assert_eq!(schema.names().len(), schema.groups().len());
        assert_eq!(schema.index_of("cpu_load"), Some(5));
        assert_eq!(schema.index_of("does_not_exist"), None);
        let network = schema
            .groups()
            .iter()
            .filter(|g| **g == FeatureGroup::Network)
            .count();
        let node = schema
            .groups()
            .iter()
            .filter(|g| **g == FeatureGroup::Node)
            .count();
        let jobg = schema
            .groups()
            .iter()
            .filter(|g| **g == FeatureGroup::Job)
            .count();
        assert_eq!((network, node, jobg), (5, 2, 10));
    }

    #[test]
    fn construct_reads_telemetry_and_job_config() {
        let schema = FeatureSchema::standard();
        let vec = schema.construct(&snapshot(), "node-1", &job());
        assert_eq!(vec.len(), schema.len());
        let get = |name: &str| vec[schema.index_of(name).unwrap()];
        assert!((get("rtt_mean_s") - 0.040).abs() < 1e-9);
        assert_eq!(get("rtt_max_s"), 0.070);
        assert!(get("rtt_std_s") > 0.0);
        assert_eq!(get("tx_rate_bps"), 1e6);
        assert_eq!(get("rx_rate_bps"), 2e6);
        assert_eq!(get("cpu_load"), 2.5);
        assert_eq!(get("memory_available_bytes"), 6e9);
        assert_eq!(get("app_sort"), 1.0);
        assert_eq!(get("app_join"), 0.0);
        assert_eq!(get("input_records"), 250_000.0);
        assert_eq!(get("executor_count"), 3.0);
        assert_eq!(get("executor_memory_gb"), 1.0);
        assert_eq!(get("shuffle_partitions"), 8.0);
    }

    #[test]
    fn unknown_node_falls_back_to_zeros() {
        let schema = FeatureSchema::standard();
        let vec = schema.construct(&snapshot(), "node-99", &job());
        let get = |name: &str| vec[schema.index_of(name).unwrap()];
        assert_eq!(get("cpu_load"), 0.0);
        assert_eq!(get("rtt_mean_s"), 0.0);
        // Job features are still present.
        assert_eq!(get("input_records"), 250_000.0);
    }

    #[test]
    fn construct_into_matches_construct_and_reuses_buffer() {
        let schema = FeatureSchema::standard();
        let snap = snapshot();
        let job = job();
        let mut buffer = FeatureVector::new();
        for node in ["node-1", "node-2", "node-99"] {
            let telemetry = snap.node(node).copied().unwrap_or_default();
            schema.construct_into(&mut buffer, &telemetry, snap.rtt_stats_from(node), &job);
            assert_eq!(buffer, schema.construct(&snap, node, &job), "{node}");
        }
    }

    #[test]
    fn matrix_construction_matches_vector_construction() {
        let schema = FeatureSchema::standard();
        let snap = snapshot();
        let job = job();
        let candidates = vec![
            "node-2".to_string(),
            "node-1".to_string(),
            "node-99".to_string(),
        ];
        let mut matrix = FeatureMatrix::new(0);
        schema.construct_batch_into(&mut matrix, &snap, &candidates, &job);
        assert_eq!(matrix.n_rows(), 3);
        assert_eq!(matrix.n_features(), schema.len());
        for (i, candidate) in candidates.iter().enumerate() {
            assert_eq!(
                matrix.row(i),
                schema.construct(&snap, candidate, &job),
                "{candidate}"
            );
        }
        // Refilling reuses the buffer and replaces the rows.
        schema.construct_batch_into(&mut matrix, &snap, &candidates[..1], &job);
        assert_eq!(matrix.n_rows(), 1);
    }

    #[test]
    fn construct_all_orders_by_candidates() {
        let schema = FeatureSchema::standard();
        let candidates = vec!["node-2".to_string(), "node-1".to_string()];
        let vecs = schema.construct_all(&snapshot(), &candidates, &job());
        assert_eq!(vecs.len(), 2);
        let cpu = schema.index_of("cpu_load").unwrap();
        assert_eq!(vecs[0][cpu], 0.5);
        assert_eq!(vecs[1][cpu], 2.5);
    }

    #[test]
    fn group_restricted_schemas() {
        let network_only = FeatureSchema::with_groups(&[FeatureGroup::Network]);
        assert_eq!(network_only.len(), 5);
        assert!(network_only
            .names()
            .iter()
            .all(|n| n.starts_with("rtt") || n.contains("rate")));
        let no_network = FeatureSchema::with_groups(&[FeatureGroup::Node, FeatureGroup::Job]);
        assert_eq!(no_network.len(), 12);
        let vec = no_network.construct(&snapshot(), "node-1", &job());
        assert_eq!(vec.len(), 12);
        let empty = FeatureSchema::with_groups(&[]);
        assert!(empty.is_empty());
    }

    #[test]
    fn one_hot_is_exclusive_across_workloads() {
        let schema = FeatureSchema::standard();
        for kind in WorkloadKind::ALL {
            let job = JobRequest::named("j", kind, 1000, 2);
            let vec = schema.construct(&snapshot(), "node-1", &job);
            let hot: f64 = WorkloadKind::ALL
                .iter()
                .map(|k| vec[schema.index_of(&format!("app_{}", k.as_str())).unwrap()])
                .sum();
            assert_eq!(hot, 1.0, "exactly one app indicator set for {kind}");
        }
    }

    #[test]
    fn markdown_table_lists_every_feature() {
        let schema = FeatureSchema::standard();
        let md = schema.to_markdown_table();
        for name in schema.names() {
            assert!(md.contains(name.as_str()));
        }
        assert!(md.contains("| Feature | Type |"));
        assert!(md.contains("Network"));
        assert!(md.contains("Node"));
        assert!(md.contains("Job"));
    }
}
