//! The Logger.
//!
//! *"The module captures telemetry and performance data at two stages of each
//! job's lifecycle. Before we submit a job, it records network and node-level
//! telemetry ... After the job completes, it collects application-level
//! metrics such as job duration ... The collected data is used to support
//! offline model training."*
//!
//! Each [`TrainingRecord`] stores the feature vector constructed from the
//! pre-submission snapshot (so training uses exactly what the scheduler will
//! see at decision time) together with the measured completion time.

use crate::features::{FeatureSchema, FeatureVector};
use crate::request::JobRequest;
use mlcore::Dataset;
use serde::{Deserialize, Serialize};
use simcore::SimTime;
use telemetry::ClusterSnapshot;

/// One training sample: pre-run features plus the measured duration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingRecord {
    /// When the job was submitted.
    pub submitted_at: SimTime,
    /// Job name.
    pub job_name: String,
    /// Application type (e.g. `sort`).
    pub app_type: String,
    /// Node the driver was launched on.
    pub target_node: String,
    /// The constructed feature vector (aligned with the logger's schema).
    pub features: FeatureVector,
    /// Measured job completion time in seconds (the label).
    pub completion_seconds: f64,
}

/// Collects training records and converts them into an `mlcore` dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecutionLogger {
    schema: FeatureSchema,
    records: Vec<TrainingRecord>,
}

impl Default for ExecutionLogger {
    fn default() -> Self {
        Self::new(FeatureSchema::standard())
    }
}

impl ExecutionLogger {
    /// Create a logger using the given feature schema.
    pub fn new(schema: FeatureSchema) -> Self {
        ExecutionLogger {
            schema,
            records: Vec::new(),
        }
    }

    /// The schema used to construct logged feature vectors.
    pub fn schema(&self) -> &FeatureSchema {
        &self.schema
    }

    /// Number of records collected.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records.
    pub fn records(&self) -> &[TrainingRecord] {
        &self.records
    }

    /// Log one completed execution: the snapshot taken *before* submission,
    /// the request, the node the driver ran on and the measured duration.
    pub fn log_execution(
        &mut self,
        snapshot: &ClusterSnapshot,
        request: &JobRequest,
        target_node: &str,
        completion_seconds: f64,
    ) {
        let features = self.schema.construct(snapshot, target_node, request);
        self.records.push(TrainingRecord {
            submitted_at: snapshot.time,
            job_name: request.name.clone(),
            app_type: request.app_type().to_string(),
            target_node: target_node.to_string(),
            features,
            completion_seconds,
        });
    }

    /// Append an already-constructed record (used when importing archives).
    pub fn push_record(&mut self, record: TrainingRecord) {
        self.records.push(record);
    }

    /// Convert the log into a training dataset: each record's feature slice
    /// is appended straight into the dataset's contiguous matrix, with no
    /// intermediate row-of-`Vec`s copy.
    pub fn to_dataset(&self) -> Dataset {
        let mut data = Dataset::new(self.schema.names().to_vec());
        for record in &self.records {
            // Records imported from archives could have a stale width; skip
            // anything that does not match the current schema.
            if record.features.len() == self.schema.len() {
                data.push_row(&record.features, record.completion_seconds)
                    .expect("width checked above");
            }
        }
        data
    }

    /// Serialize all records to a CSV string (header + one row per record).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str("submitted_at_s,job_name,app_type,target_node,");
        out.push_str(&self.schema.names().join(","));
        out.push_str(",completion_seconds\n");
        for r in &self.records {
            out.push_str(&format!(
                "{:.3},{},{},{}",
                r.submitted_at.as_secs_f64(),
                r.job_name,
                r.app_type,
                r.target_node
            ));
            for v in &r.features {
                out.push_str(&format!(",{v}"));
            }
            out.push_str(&format!(",{}\n", r.completion_seconds));
        }
        out
    }

    /// Serialize to JSON (records + schema).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("logger serialization cannot fail")
    }

    /// Restore a logger from JSON produced by [`ExecutionLogger::to_json`].
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparksim::WorkloadKind;
    use telemetry::NodeTelemetry;

    fn snapshot() -> ClusterSnapshot {
        let mut snap = ClusterSnapshot::at(SimTime::from_secs(42));
        snap.insert_node(
            "node-1",
            NodeTelemetry {
                cpu_load: 1.0,
                memory_available_bytes: 5e9,
                tx_rate: 1e5,
                rx_rate: 2e5,
            },
        );
        snap.insert_rtt("node-1", "node-2", 0.02);
        snap
    }

    fn request() -> JobRequest {
        JobRequest::named("sort-a", WorkloadKind::Sort, 50_000, 2)
    }

    #[test]
    fn logging_builds_dataset_rows() {
        let mut logger = ExecutionLogger::default();
        assert!(logger.is_empty());
        logger.log_execution(&snapshot(), &request(), "node-1", 33.5);
        logger.log_execution(&snapshot(), &request(), "node-1", 40.0);
        assert_eq!(logger.len(), 2);
        assert_eq!(logger.records()[0].target_node, "node-1");
        assert_eq!(logger.records()[0].app_type, "sort");
        assert_eq!(logger.records()[0].completion_seconds, 33.5);
        let data = logger.to_dataset();
        assert_eq!(data.len(), 2);
        assert_eq!(data.n_features(), logger.schema().len());
        assert_eq!(data.targets(), &[33.5, 40.0]);
        // Feature vector contains the snapshot's cpu load.
        let cpu_idx = logger.schema().index_of("cpu_load").unwrap();
        assert_eq!(data.row(0)[cpu_idx], 1.0);
    }

    #[test]
    fn csv_export_has_header_and_rows() {
        let mut logger = ExecutionLogger::default();
        logger.log_execution(&snapshot(), &request(), "node-1", 12.0);
        let csv = logger.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("submitted_at_s,job_name,app_type,target_node,rtt_mean_s"));
        assert!(lines[0].ends_with("completion_seconds"));
        assert!(lines[1].contains("sort-a"));
        assert!(lines[1].ends_with(",12"));
        // Column count is constant across header and data.
        assert_eq!(lines[0].split(',').count(), lines[1].split(',').count());
    }

    #[test]
    fn json_roundtrip() {
        let mut logger = ExecutionLogger::default();
        logger.log_execution(&snapshot(), &request(), "node-1", 22.0);
        let restored = ExecutionLogger::from_json(&logger.to_json()).unwrap();
        assert_eq!(restored.len(), 1);
        assert_eq!(restored.records()[0].completion_seconds, 22.0);
        assert!(ExecutionLogger::from_json("nope").is_err());
    }

    #[test]
    fn mismatched_imported_records_are_skipped_in_dataset() {
        let mut logger = ExecutionLogger::default();
        logger.push_record(TrainingRecord {
            submitted_at: SimTime::ZERO,
            job_name: "old".into(),
            app_type: "sort".into(),
            target_node: "node-1".into(),
            features: vec![1.0, 2.0], // wrong width
            completion_seconds: 10.0,
        });
        logger.log_execution(&snapshot(), &request(), "node-1", 20.0);
        let data = logger.to_dataset();
        assert_eq!(data.len(), 1);
        assert_eq!(data.targets(), &[20.0]);
        assert_eq!(logger.len(), 2, "raw records are kept");
    }
}
