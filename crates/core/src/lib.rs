//! # netsched-core — the network-aware supervised-learning scheduler
//!
//! This crate is the paper's primary contribution: a user-space scheduler that
//! predicts the completion time of a submitted job on every candidate node
//! from live telemetry and job configuration, ranks the nodes and pins the
//! job's driver to the predicted-fastest one.
//!
//! The components mirror Figure 1 / Section 3.2 of the paper:
//!
//! | Paper component | Module |
//! |---|---|
//! | Client (job request) | [`request`] |
//! | Telemetry Fetcher | [`fetcher`] |
//! | Feature Constructor (Table 1) | [`features`] |
//! | Supervised Learning Model | [`predictor`] (backed by `mlcore`) |
//! | Decision Module | [`decision`] |
//! | Job Builder (nodeAffinity injection) | [`builder`] |
//! | Logger (training data collection) | [`logger`] |
//! | Model Training | [`training`] |
//!
//! [`schedulers`] additionally provides the baselines the evaluation compares
//! against (the Kubernetes default scheduler adapter, a uniform-random picker
//! and two telemetry heuristics), all behind one [`schedulers::JobScheduler`]
//! trait, and [`service::SchedulerService`] wires the whole pipeline together.
//!
//! Decisions run against a borrowed [`context::SchedulingContext`]: one
//! burst-scoped view that indexes telemetry by interned [`cluster::NodeId`],
//! caches feasibility filtering and owns the scratch buffers, so ranking a
//! job allocates nothing but its output and batches amortize all shared work
//! ([`schedulers::JobScheduler::select_batch`]).
//!
//! Telemetry reaches decisions through the [`telemetry::SnapshotSource`]
//! seam. Against an **epoch-publishing** source (`telemetry::publish`) the
//! service adopts the published immutable `Arc` snapshot zero-copy and, while
//! no new epoch lands, reuses the held one after a single atomic freshness
//! check — so any number of service clones serve bursts concurrently with
//! live ingest, without touching a store lock.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod context;
pub mod decision;
pub mod features;
pub mod fetcher;
pub mod logger;
pub mod predictor;
pub mod request;
pub mod schedulers;
pub mod service;
pub mod training;

pub use builder::JobBuilder;
pub use context::{ContextScratch, PruningPolicy, SchedulingContext};
pub use decision::{DecisionModule, NodeRanking, RankedNode};
pub use features::{FeatureGroup, FeatureSchema, FeatureVector};
pub use fetcher::TelemetryFetcher;
pub use logger::{ExecutionLogger, TrainingRecord};
pub use predictor::CompletionTimePredictor;
pub use request::JobRequest;
pub use schedulers::{
    JobScheduler, KubeDefaultScheduler, LeastLoadedScheduler, LowestRttScheduler, RandomScheduler,
    SupervisedScheduler,
};
pub use service::{SchedulerConfig, SchedulerService};
pub use training::{train_all_models, TrainingOutcome, TrainingPipeline};
