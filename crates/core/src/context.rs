//! The borrowed, reusable scheduling context.
//!
//! Placement decisions arrive in bursts: many jobs ranked against the same
//! telemetry snapshot and cluster state. [`SchedulingContext`] is the
//! amortization point for such a burst. Built once from a borrowed snapshot +
//! cluster, it:
//!
//! * resolves the name-keyed snapshot into a dense [`NodeId`]-indexed view
//!   (telemetry lookups become array indexing; the RTT mesh is scanned once,
//!   not once per candidate per decision),
//! * caches the feasibility filter result across consecutive jobs with the
//!   same driver sizing (the common case in a burst), and
//! * owns the candidate / prediction / feature scratch buffers every policy
//!   reuses, so steady-state decisions allocate only their output ranking.
//!
//! All [`crate::schedulers::JobScheduler`] policies take `&mut
//! SchedulingContext` in [`crate::schedulers::JobScheduler::select`] and
//! `select_batch`.

use crate::decision::{DecisionModule, NodeRanking};
use crate::predictor::CompletionTimePredictor;
use crate::request::JobRequest;
use cluster::scheduler::FilterResult;
use cluster::{ClusterState, DefaultScheduler, NodeId, PodSpec, Resources};
use mlcore::FeatureMatrix;
use telemetry::{ClusterSnapshot, IndexedTelemetry, NodeTelemetry};

/// The reusable buffers behind a [`SchedulingContext`], detached from any
/// particular snapshot borrow so a long-lived owner (the scheduler service)
/// can carry them across bursts: indexed telemetry, candidate/prediction
/// scratch, the batch feature matrix and the feasibility probe pod.
/// Steady-state bursts over a fixed cluster size re-enter with warm buffers
/// and touch no heap.
#[derive(Debug, Clone)]
pub struct ContextScratch {
    telemetry: IndexedTelemetry,
    /// The current feasible candidate set.
    candidates: Vec<NodeId>,
    /// Driver sizing the cached candidate set was computed for.
    candidate_key: Option<(u64, u64)>,
    /// One prediction per candidate.
    predictions: Vec<f64>,
    /// The candidate × feature matrix one decision's batch inference runs
    /// over (one contiguous buffer, reused across decisions).
    features: FeatureMatrix,
    /// Anonymous unpinned pod whose requests are overwritten per feasibility
    /// check. The default-scheduler filter only reads requests, selector,
    /// affinity and tolerations, so this probe filters identically to the
    /// request's real driver pod without building one.
    probe: PodSpec,
}

impl Default for ContextScratch {
    fn default() -> Self {
        ContextScratch {
            telemetry: IndexedTelemetry::default(),
            candidates: Vec::new(),
            candidate_key: None,
            predictions: Vec::new(),
            features: FeatureMatrix::new(0),
            // Built field-by-field (not via `PodSpec::new`, which allocates
            // its namespace string) so `mem::take`-style swaps of a scratch
            // slot stay heap-free: this default is a placeholder, never
            // filtered against before its requests are overwritten.
            probe: PodSpec {
                name: String::new(),
                namespace: String::new(),
                labels: std::collections::BTreeMap::new(),
                requests: Resources::ZERO,
                limits: Resources::ZERO,
                node_selector: std::collections::BTreeMap::new(),
                affinity: cluster::NodeAffinity::none(),
                tolerations: Vec::new(),
                role: cluster::pod::PodRole::Standalone,
            },
        }
    }
}

/// Per-burst scheduling state: borrowed world view plus reusable scratch.
#[derive(Debug)]
pub struct SchedulingContext<'a> {
    snapshot: &'a ClusterSnapshot,
    cluster: &'a ClusterState,
    scratch: ContextScratch,
}

impl<'a> SchedulingContext<'a> {
    /// Build a context for one burst of decisions against a frozen snapshot
    /// and cluster state. Costs one pass over the snapshot (nodes + RTT
    /// mesh); everything after that is per-decision work.
    pub fn new(snapshot: &'a ClusterSnapshot, cluster: &'a ClusterState) -> Self {
        Self::with_scratch(snapshot, cluster, ContextScratch::default())
    }

    /// Build a context reusing buffers carried over from a previous burst.
    /// The cached feasibility key is invalidated (cluster state may have
    /// changed between bursts); the buffer allocations are kept.
    pub fn with_scratch(
        snapshot: &'a ClusterSnapshot,
        cluster: &'a ClusterState,
        mut scratch: ContextScratch,
    ) -> Self {
        snapshot.index_into(cluster, &mut scratch.telemetry);
        scratch.candidate_key = None;
        SchedulingContext {
            snapshot,
            cluster,
            scratch,
        }
    }

    /// Release the context's buffers for reuse by a later burst.
    pub fn into_scratch(self) -> ContextScratch {
        self.scratch
    }

    /// The telemetry snapshot this burst decides against.
    pub fn snapshot(&self) -> &'a ClusterSnapshot {
        self.snapshot
    }

    /// The cluster state this burst decides against.
    pub fn cluster(&self) -> &'a ClusterState {
        self.cluster
    }

    /// The dense node-indexed telemetry view.
    pub fn telemetry(&self) -> &IndexedTelemetry {
        &self.scratch.telemetry
    }

    /// Host telemetry for one node (`None` when it was not scraped).
    pub fn node_telemetry(&self, id: NodeId) -> Option<&NodeTelemetry> {
        self.scratch.telemetry.node(id)
    }

    /// Precomputed (mean, max, std-dev) RTT statistics from one node.
    pub fn rtt_stats(&self, id: NodeId) -> (f64, f64, f64) {
        self.scratch.telemetry.rtt_stats(id)
    }

    /// Ids of the nodes on which the job's driver pod passes the default
    /// scheduler's filtering phase (resource fit, affinity, taints). All
    /// policies rank within this same candidate set so comparisons are
    /// apples-to-apples.
    ///
    /// The result is cached across consecutive calls with identical driver
    /// sizing — an unpinned driver pod's feasibility depends only on its
    /// resource requests — which amortizes filtering across a burst of
    /// same-shaped jobs.
    pub fn feasible_candidates(&mut self, request: &JobRequest) -> &[NodeId] {
        let key = (request.driver_cpu_millis, request.driver_memory_bytes);
        if self.scratch.candidate_key != Some(key) {
            // The probe pod filters identically to the request's unpinned
            // driver pod (the filter only reads requests, selector, affinity
            // and tolerations) without materializing a JobSpec.
            let requests = request.driver_resources();
            self.scratch.probe.requests = requests;
            self.scratch.probe.limits = requests;
            self.scratch.candidates.clear();
            for (index, node) in self.cluster.nodes().iter().enumerate() {
                if DefaultScheduler::filter(&self.scratch.probe, node) == FilterResult::Feasible {
                    self.scratch.candidates.push(NodeId::from_index(index));
                }
            }
            self.scratch.candidate_key = Some(key);
        }
        &self.scratch.candidates
    }

    /// Rank the feasible candidates for `request` by a per-node score
    /// (lower is better, ties break by [`NodeId`]). This is the shared
    /// scoring scaffold for score-based policies: it owns the
    /// candidates/predictions alignment invariant that
    /// [`DecisionModule::rank`] asserts on, so policies only supply the
    /// score itself.
    pub fn rank_feasible(
        &mut self,
        request: &JobRequest,
        mut score: impl FnMut(&mut Self, NodeId) -> f64,
    ) -> NodeRanking {
        let count = self.feasible_candidates(request).len();
        self.scratch.predictions.clear();
        for i in 0..count {
            let id = self.scratch.candidates[i];
            let value = score(self, id);
            self.scratch.predictions.push(value);
        }
        DecisionModule.rank(&self.scratch.candidates, &self.scratch.predictions)
    }

    /// Rank the feasible candidates by supervised completion-time
    /// predictions via **one batch inference call**: the candidate × feature
    /// matrix is constructed row by row into the context's contiguous
    /// scratch, then the whole batch streams through the model's flat-tree
    /// kernels at once (trees-outer), instead of re-walking every tree per
    /// candidate.
    pub fn rank_feasible_batch(
        &mut self,
        request: &JobRequest,
        predictor: &CompletionTimePredictor,
    ) -> NodeRanking {
        let mut out = NodeRanking::default();
        self.rank_feasible_batch_into(request, predictor, &mut out);
        out
    }

    /// In-place variant of [`SchedulingContext::rank_feasible_batch`]: the
    /// ranking is built into `out`, reusing its buffer, and every
    /// intermediate (feature matrix, predictions, candidate set) lives in
    /// the context's scratch — a steady-state decision touches no heap.
    pub fn rank_feasible_batch_into(
        &mut self,
        request: &JobRequest,
        predictor: &CompletionTimePredictor,
        out: &mut NodeRanking,
    ) {
        let count = self.feasible_candidates(request).len();
        let schema = predictor.schema();
        self.scratch.features.reset(schema.len());
        for i in 0..count {
            let id = self.scratch.candidates[i];
            let node = self.scratch.telemetry.node(id).copied().unwrap_or_default();
            let rtt_stats = self.scratch.telemetry.rtt_stats(id);
            schema.construct_into_matrix(&mut self.scratch.features, &node, rtt_stats, request);
        }
        predictor.predict_batch_into(&self.scratch.features, &mut self.scratch.predictions);
        DecisionModule.rank_into(&self.scratch.candidates, &self.scratch.predictions, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{Node, PodSpec, Resources};
    use simcore::SimTime;
    use sparksim::WorkloadKind;
    use telemetry::NodeTelemetry;

    fn cluster(n: usize) -> ClusterState {
        let mut c = ClusterState::new();
        for i in 0..n {
            c.add_node(Node::new(
                format!("node-{}", i + 1),
                simnet::NodeId(i),
                Resources::from_cores_and_gib(6, 8),
                "SITE",
            ));
        }
        c
    }

    fn snapshot(n: usize) -> ClusterSnapshot {
        let mut snap = ClusterSnapshot::at(SimTime::from_secs(10));
        for i in 0..n {
            let name = format!("node-{}", i + 1);
            snap.insert_node(
                &name,
                NodeTelemetry {
                    cpu_load: i as f64,
                    memory_available_bytes: 6e9,
                    tx_rate: 0.0,
                    rx_rate: 0.0,
                },
            );
            for j in 0..n {
                if i != j {
                    snap.insert_rtt(&name, &format!("node-{}", j + 1), 0.01 * (i + 1) as f64);
                }
            }
        }
        snap
    }

    fn request(name: &str) -> JobRequest {
        JobRequest::named(name, WorkloadKind::Sort, 100_000, 2)
    }

    #[test]
    fn context_exposes_indexed_telemetry() {
        let c = cluster(3);
        let snap = snapshot(3);
        let ctx = SchedulingContext::new(&snap, &c);
        assert_eq!(ctx.cluster().node_count(), 3);
        assert_eq!(ctx.snapshot().time, SimTime::from_secs(10));
        assert_eq!(ctx.telemetry().len(), 3);
        let id = c.node_id("node-2").unwrap();
        assert_eq!(ctx.node_telemetry(id).unwrap().cpu_load, 1.0);
        let (mean, _, _) = ctx.rtt_stats(id);
        assert!((mean - 0.02).abs() < 1e-12);
    }

    #[test]
    fn feasibility_is_cached_per_driver_sizing_and_refreshed_on_change() {
        let mut c = cluster(3);
        // Fill node-2 completely.
        let id = c.create_pod(
            PodSpec::new("hog", Resources::from_cores_and_gib(6, 8)),
            SimTime::ZERO,
        );
        c.bind_pod(id, "node-2", SimTime::ZERO).unwrap();
        let snap = snapshot(3);
        let mut ctx = SchedulingContext::new(&snap, &c);

        let small_a = ctx.feasible_candidates(&request("a")).to_vec();
        assert_eq!(
            small_a,
            vec![c.node_id("node-1").unwrap(), c.node_id("node-3").unwrap()]
        );
        // Same sizing, different job: served from cache (same result).
        let small_b = ctx.feasible_candidates(&request("b")).to_vec();
        assert_eq!(small_a, small_b);

        // An oversized driver fits nowhere; the cache must not serve the
        // small-driver result.
        let huge = request("huge").with_driver_resources(64_000, 64 * 1024 * 1024 * 1024);
        assert!(ctx.feasible_candidates(&huge).is_empty());
        // And switching back recomputes the small set.
        assert_eq!(ctx.feasible_candidates(&request("c")).to_vec(), small_a);
    }
}
