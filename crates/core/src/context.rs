//! The borrowed, reusable scheduling context.
//!
//! Placement decisions arrive in bursts: many jobs ranked against the same
//! telemetry snapshot and cluster state. [`SchedulingContext`] is the
//! amortization point for such a burst. Built once from a borrowed snapshot +
//! cluster, it:
//!
//! * resolves the name-keyed snapshot into a dense [`NodeId`]-indexed view
//!   (telemetry lookups become array indexing; the RTT mesh is scanned once,
//!   not once per candidate per decision),
//! * finds the feasible set through a resource-sorted
//!   [`cluster::FeasibilityIndex`] carried in the scratch — generation-keyed,
//!   so it is rebuilt only when the cluster actually changed, even across
//!   bursts — instead of filtering every node, and caches the answer across
//!   consecutive jobs with the same driver sizing (the common case in a
//!   burst),
//! * optionally **prunes** the candidate set to a configurable top-K
//!   ([`SchedulingContext::set_top_k`]) before the expensive model rank —
//!   the two-stage decision path that keeps 10k-node decisions under a
//!   millisecond. Stage one is selected by [`PruningPolicy`]: a cheap
//!   model-blind prefilter score kept top-K through a bounded heap in the
//!   context scratch ([`SchedulingContext::pruned_candidates`]), or — the
//!   default for the supervised rank — a pooled per-burst coarse scoreboard
//!   of the model's own scores, keyed by the job's cell in the model's
//!   split-threshold partition ([`SchedulingContext::rank_feasible_batch`]),
//!   whose top-K provably preserves the unpruned top-1 decision (equal cells
//!   take identical tree paths), and
//! * owns the candidate / prediction / feature scratch buffers every policy
//!   reuses, so steady-state decisions allocate only their output ranking.
//!
//! All [`crate::schedulers::JobScheduler`] policies take `&mut
//! SchedulingContext` in [`crate::schedulers::JobScheduler::select`] and
//! `select_batch`. With pruning disabled (`top_k = None`, the default) every
//! ranking is byte-identical to the historical full-scan path; with
//! `top_k = K ≥ |feasible|` it still is, by construction.

use crate::decision::{DecisionModule, NodeRanking};
use crate::predictor::CompletionTimePredictor;
use crate::request::JobRequest;
use cluster::{ClusterState, FeasibilityIndex, NodeId};
use mlcore::FeatureMatrix;
use serde::{Deserialize, Serialize};
use telemetry::{ClusterSnapshot, IndexedTelemetry, NodeTelemetry};

/// Which stage-1 scorer the two-stage decision path prunes with when a
/// [`top-K budget`](SchedulingContext::set_top_k) is set.
///
/// The model-blind scorers trade accuracy for independence from the trained
/// model; the `scenario_scale` sweep publishes the measured Top-1 agreement
/// and winner-survival rate of each so the trade is a number, not a guess.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PruningPolicy {
    /// Supervised ranks prune by a coarse scoreboard of the decision model's
    /// *own* per-node scores (exact: the pruned top-1 equals the unpruned
    /// top-1 at every `K ≥ 1`); non-supervised paths fall back to the linear
    /// blend. The default.
    #[default]
    ModelAligned,
    /// A linear blend over the same telemetry columns the feature schema
    /// reads: current CPU load + mean peer RTT − a free-memory credit.
    /// Model-blind, so supervised ranks pay a measurable accuracy cost.
    LinearBlend,
    /// A kube-style least-allocated score: the mean of the node's free CPU
    /// and free memory fractions (most headroom survives). Telemetry-blind
    /// as well as model-blind.
    LeastAllocated,
}

/// One cached stage-1 scoreboard: the predictor's score for every node at a
/// fixed job-feature signature (one workload class × input size).
#[derive(Debug, Clone)]
struct CoarseBoard {
    /// Stable identity folded into the model-pruned cache key; unlike the
    /// board's position in the pool it survives FIFO eviction.
    id: u64,
    /// The burst the scores were computed in. Telemetry changes between
    /// bursts, so a board from an older epoch is stale; its buffers are
    /// recycled in place instead of reallocated.
    epoch: u64,
    /// `(address, signature-row prediction)` fingerprint of the predictor the
    /// scores were computed with.
    predictor: (usize, f64),
    /// The job-feature signature row the scores belong to.
    sig: Vec<f64>,
    /// One coarse score per node (index = `NodeId::index`).
    scores: Vec<f64>,
}

/// The reusable buffers behind a [`SchedulingContext`], detached from any
/// particular snapshot borrow so a long-lived owner (the scheduler service)
/// can carry them across bursts: indexed telemetry, the generation-keyed
/// feasibility index, candidate/pruning/prediction scratch, the batch
/// feature matrix and the coarse scoreboard pool. Steady-state bursts over a
/// fixed cluster size re-enter with warm buffers and touch no heap.
///
/// The scratch must be reused against the same logical cluster: staleness of
/// the feasibility index is detected through
/// [`ClusterState::generation`](cluster::ClusterState::generation), which is
/// monotone per cluster instance, not globally unique.
#[derive(Debug, Clone, Default)]
pub struct ContextScratch {
    telemetry: IndexedTelemetry,
    /// Resource-sorted feasibility index, synced lazily against the cluster
    /// generation on first use each burst.
    index: FeasibilityIndex,
    /// The current full feasible candidate set (pre-pruning).
    candidates: Vec<NodeId>,
    /// Driver sizing the cached candidate set was computed for.
    candidate_key: Option<(u64, u64)>,
    /// The pruned candidate set the rankers actually run over (equal to
    /// `candidates` when pruning is off or `K ≥ |feasible|`).
    pruned: Vec<NodeId>,
    /// `(driver sizing, top_k, policy)` the cached pruned set was computed
    /// for.
    pruned_key: Option<(u64, u64, Option<usize>, PruningPolicy)>,
    /// `(score, id)` bounded max-heap scratch for top-K selection: the worst
    /// survivor sits at the root and is evicted when a better candidate
    /// arrives, so selection is `O(n log K)` with no allocation past warmup.
    heap: Vec<(f64, NodeId)>,
    /// Pool of coarse stage-1 scoreboards, one per (predictor, job-feature
    /// signature) seen this burst, FIFO-bounded — so bursts that interleave
    /// workload classes still amortize the full-cluster inference each board
    /// costs (see [`SchedulingContext::rank_feasible_batch`]).
    coarse_boards: Vec<CoarseBoard>,
    /// Monotone id source for scoreboards (stable across pool eviction, used
    /// in the model-pruned cache key).
    coarse_next_id: u64,
    /// The current burst number; boards from earlier bursts are stale (their
    /// scores read retired telemetry) and get recycled in place.
    board_epoch: u64,
    /// Scratch for building the signature row without allocating.
    sig_scratch: Vec<f64>,
    /// The model-pruned candidate set (supervised stage-1 output).
    model_pruned: Vec<NodeId>,
    /// `(driver sizing, k, scoreboard id)` the cached model-pruned set was
    /// computed for.
    model_pruned_key: Option<(u64, u64, usize, u64)>,
    /// One prediction per candidate.
    predictions: Vec<f64>,
    /// The candidate × feature matrix one decision's batch inference runs
    /// over (one contiguous buffer, reused across decisions).
    features: FeatureMatrix,
}

impl ContextScratch {
    /// How many times the carried feasibility index was actually rebuilt
    /// (generation changes observed), as opposed to answered from cache.
    pub fn feasibility_rebuilds(&self) -> u64 {
        self.index.rebuilds()
    }
}

/// Offer `entry` to a bounded max-heap of the `k` smallest `(score, id)`
/// pairs under `(total_cmp, id)` order: while under budget the entry is
/// pushed and sifted up; at budget it replaces the root (the worst survivor)
/// only when strictly better, then sifts down. The total order makes
/// membership deterministic for equal scores.
fn bounded_heap_offer(heap: &mut Vec<(f64, NodeId)>, k: usize, entry: (f64, NodeId)) {
    fn worse(a: &(f64, NodeId), b: &(f64, NodeId)) -> bool {
        a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)).is_gt()
    }
    if heap.len() < k {
        heap.push(entry);
        let mut at = heap.len() - 1;
        while at > 0 {
            let parent = (at - 1) / 2;
            if worse(&heap[at], &heap[parent]) {
                heap.swap(at, parent);
                at = parent;
            } else {
                break;
            }
        }
    } else if worse(&heap[0], &entry) {
        heap[0] = entry;
        let mut at = 0;
        loop {
            let left = 2 * at + 1;
            let right = 2 * at + 2;
            let mut worst = at;
            if left < heap.len() && worse(&heap[left], &heap[worst]) {
                worst = left;
            }
            if right < heap.len() && worse(&heap[right], &heap[worst]) {
                worst = right;
            }
            if worst == at {
                break;
            }
            heap.swap(at, worst);
            at = worst;
        }
    }
}

/// Per-burst scheduling state: borrowed world view plus reusable scratch.
#[derive(Debug)]
pub struct SchedulingContext<'a> {
    snapshot: &'a ClusterSnapshot,
    cluster: &'a ClusterState,
    scratch: ContextScratch,
    /// Candidate-pruning budget: rank at most this many prefiltered
    /// candidates. `None` disables pruning.
    top_k: Option<usize>,
    /// Which stage-1 scorer a budget prunes with.
    policy: PruningPolicy,
}

impl<'a> SchedulingContext<'a> {
    /// Build a context for one burst of decisions against a frozen snapshot
    /// and cluster state. Costs one pass over the snapshot (nodes + RTT
    /// mesh); everything after that is per-decision work.
    pub fn new(snapshot: &'a ClusterSnapshot, cluster: &'a ClusterState) -> Self {
        Self::with_scratch(snapshot, cluster, ContextScratch::default())
    }

    /// Build a context reusing buffers carried over from a previous burst.
    /// The cached feasibility / pruning keys and the scoreboard pool are
    /// invalidated (snapshot and cluster state may have changed between
    /// bursts); the buffer allocations — and the feasibility index, which
    /// re-validates itself against the cluster generation — are kept.
    pub fn with_scratch(
        snapshot: &'a ClusterSnapshot,
        cluster: &'a ClusterState,
        mut scratch: ContextScratch,
    ) -> Self {
        snapshot.index_into(cluster, &mut scratch.telemetry);
        scratch.candidate_key = None;
        scratch.pruned_key = None;
        scratch.model_pruned_key = None;
        scratch.board_epoch += 1;
        SchedulingContext {
            snapshot,
            cluster,
            scratch,
            top_k: None,
            policy: PruningPolicy::default(),
        }
    }

    /// Release the context's buffers for reuse by a later burst.
    pub fn into_scratch(self) -> ContextScratch {
        self.scratch
    }

    /// Set the candidate-pruning budget: rankers score at most `k`
    /// prefiltered candidates per decision. `None` (the default) ranks the
    /// full feasible set; any `k ≥ |feasible|` is equivalent to `None`.
    pub fn set_top_k(&mut self, k: Option<usize>) {
        self.top_k = k;
    }

    /// The current candidate-pruning budget.
    pub fn top_k(&self) -> Option<usize> {
        self.top_k
    }

    /// Select the stage-1 scorer a top-K budget prunes with.
    pub fn set_pruning_policy(&mut self, policy: PruningPolicy) {
        self.policy = policy;
    }

    /// The current stage-1 pruning policy.
    pub fn pruning_policy(&self) -> PruningPolicy {
        self.policy
    }

    /// The telemetry snapshot this burst decides against.
    pub fn snapshot(&self) -> &'a ClusterSnapshot {
        self.snapshot
    }

    /// The cluster state this burst decides against.
    pub fn cluster(&self) -> &'a ClusterState {
        self.cluster
    }

    /// The dense node-indexed telemetry view.
    pub fn telemetry(&self) -> &IndexedTelemetry {
        &self.scratch.telemetry
    }

    /// Host telemetry for one node (`None` when it was not scraped).
    pub fn node_telemetry(&self, id: NodeId) -> Option<&NodeTelemetry> {
        self.scratch.telemetry.node(id)
    }

    /// Precomputed (mean, max, std-dev) RTT statistics from one node.
    pub fn rtt_stats(&self, id: NodeId) -> (f64, f64, f64) {
        self.scratch.telemetry.rtt_stats(id)
    }

    /// Ids of the nodes on which the job's driver pod passes the default
    /// scheduler's filtering phase (resource fit, affinity, taints). All
    /// policies rank within this same candidate set so comparisons are
    /// apples-to-apples.
    ///
    /// The set is answered by the scratch-carried resource-sorted
    /// [`FeasibilityIndex`] — two `partition_point` binary searches plus a
    /// walk of the shorter matching suffix, instead of a scan of every node
    /// — and is byte-identical (membership and ascending-id order) to
    /// filtering every node with [`cluster::DefaultScheduler::filter`], which
    /// driver pods reduce to exactly (they carry no selector, affinity or
    /// tolerations).
    ///
    /// The result is cached across consecutive calls with identical driver
    /// sizing — an unpinned driver pod's feasibility depends only on its
    /// resource requests — which amortizes filtering across a burst of
    /// same-shaped jobs.
    pub fn feasible_candidates(&mut self, request: &JobRequest) -> &[NodeId] {
        let key = (request.driver_cpu_millis, request.driver_memory_bytes);
        if self.scratch.candidate_key != Some(key) {
            self.scratch.index.sync(self.cluster);
            self.scratch
                .index
                .query_into(&request.driver_resources(), &mut self.scratch.candidates);
            self.scratch.candidate_key = Some(key);
        }
        &self.scratch.candidates
    }

    /// The cheap stage-1 prefilter score for one node under the current
    /// [`PruningPolicy`]. Lower is better.
    ///
    /// [`PruningPolicy::LinearBlend`] (and the non-supervised fallback of
    /// [`PruningPolicy::ModelAligned`]) blends the same telemetry columns the
    /// feature schema reads — current CPU load, mean peer RTT (the
    /// network-awareness term) and a free-memory credit; unscraped nodes
    /// score as if idle and unprobed, mirroring the defaults the model rank
    /// uses for them. [`PruningPolicy::LeastAllocated`] is the kube-style
    /// negated mean of the node's free CPU/memory fractions.
    pub fn prefilter_score(&self, id: NodeId) -> f64 {
        const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
        match self.policy {
            PruningPolicy::ModelAligned | PruningPolicy::LinearBlend => {
                let node = self.scratch.telemetry.node(id).copied().unwrap_or_default();
                let (rtt_mean, _, _) = self.scratch.telemetry.rtt_stats(id);
                node.cpu_load + 1000.0 * rtt_mean - node.memory_available_bytes / (64.0 * GIB)
            }
            PruningPolicy::LeastAllocated => {
                let node = &self.cluster.nodes()[id.index()];
                let free = node.available();
                let cpu_frac = free.cpu_millis as f64 / node.allocatable.cpu_millis.max(1) as f64;
                let mem_frac =
                    free.memory_bytes as f64 / node.allocatable.memory_bytes.max(1) as f64;
                -(cpu_frac + mem_frac) / 2.0
            }
        }
    }

    /// The candidate set the score-closure rankers and non-supervised
    /// policies run over: the full feasible set when pruning is off (or
    /// `K ≥ |feasible|`), otherwise the top-K nodes by
    /// [`SchedulingContext::prefilter_score`] (ties broken by ascending id),
    /// selected through the bounded heap in the context scratch. Always in
    /// ascending [`NodeId`] order, so downstream ranking and RNG-consuming
    /// policies behave identically to the unpruned path at `K = ∞`. Cached
    /// per `(driver sizing, top_k, policy)` like the feasible set.
    pub fn pruned_candidates(&mut self, request: &JobRequest) -> &[NodeId] {
        let key = (
            request.driver_cpu_millis,
            request.driver_memory_bytes,
            self.top_k,
            self.policy,
        );
        if self.scratch.pruned_key != Some(key) {
            self.feasible_candidates(request);
            match self.top_k {
                Some(k) if k < self.scratch.candidates.len() => {
                    let mut heap = std::mem::take(&mut self.scratch.heap);
                    heap.clear();
                    if k > 0 {
                        let count = self.scratch.candidates.len();
                        for i in 0..count {
                            let id = self.scratch.candidates[i];
                            let score = self.prefilter_score(id);
                            bounded_heap_offer(&mut heap, k, (score, id));
                        }
                    }
                    self.scratch.pruned.clear();
                    self.scratch.pruned.extend(heap.iter().map(|&(_, id)| id));
                    self.scratch.pruned.sort_unstable();
                    self.scratch.heap = heap;
                }
                _ => {
                    self.scratch.pruned.clear();
                    self.scratch
                        .pruned
                        .extend_from_slice(&self.scratch.candidates);
                }
            }
            self.scratch.pruned_key = Some(key);
        }
        &self.scratch.pruned
    }

    /// Rank the (pruned) feasible candidates for `request` by a per-node
    /// score (lower is better, ties break by [`NodeId`]). This is the shared
    /// scoring scaffold for score-based policies: it owns the
    /// candidates/predictions alignment invariant that
    /// [`DecisionModule::rank`] asserts on, so policies only supply the
    /// score itself.
    pub fn rank_feasible(
        &mut self,
        request: &JobRequest,
        mut score: impl FnMut(&mut Self, NodeId) -> f64,
    ) -> NodeRanking {
        let count = self.pruned_candidates(request).len();
        self.scratch.predictions.clear();
        for i in 0..count {
            let id = self.scratch.pruned[i];
            let value = score(self, id);
            self.scratch.predictions.push(value);
        }
        DecisionModule.rank(&self.scratch.pruned, &self.scratch.predictions)
    }

    /// Rank the (pruned) feasible candidates by supervised completion-time
    /// predictions via **one batch inference call** (see
    /// [`SchedulingContext::rank_feasible_batch_into`]).
    pub fn rank_feasible_batch(
        &mut self,
        request: &JobRequest,
        predictor: &CompletionTimePredictor,
    ) -> NodeRanking {
        let mut out = NodeRanking::default();
        self.rank_feasible_batch_into(request, predictor, &mut out);
        out
    }

    /// Rank the (pruned) feasible candidates by supervised completion-time
    /// predictions via **one batch inference call**: the candidate × feature
    /// matrix is constructed row by row into the context's contiguous
    /// scratch, then the whole batch streams through the model's flat-tree
    /// kernels at once (trees-outer), instead of re-walking every tree per
    /// candidate. The ranking is built into `out`, reusing its buffer, and
    /// every intermediate lives in the context's scratch — a steady-state
    /// decision touches no heap.
    ///
    /// With pruning enabled (`top_k = Some(K) < |feasible|`) this is a true
    /// two-stage path. Under [`PruningPolicy::ModelAligned`] (the default)
    /// stage one is — unlike the policy-agnostic
    /// [`SchedulingContext::pruned_candidates`] heuristic — **model-aligned**:
    /// a per-node *coarse scoreboard* of the predictor's own scores, computed
    /// once per (predictor, job-signature **cell**) and reused for every
    /// decision in the burst. The cell is the job's feature row collapsed
    /// onto the model's own split-threshold partition
    /// ([`CompletionTimePredictor::signature_cells`]): jobs in the same cell
    /// take identical paths through every tree, so they share *identical*
    /// per-node scores (linear models shift every node by the same constant),
    /// and the scoreboard's node-ordering is exactly the full rank's
    /// ordering. Taking the board's top-K therefore keeps exactly the first
    /// K nodes of the unpruned ranking — the top-1 decision is byte-identical
    /// to the full scan at every `K ≥ 1`, and the board key space is bounded
    /// by the model's split granularity, not the stream's diversity. A
    /// forest rank over 10k nodes costs milliseconds — paid once per burst
    /// per cell here, instead of once per decision — while the per-decision
    /// cost drops to an `O(n)` top-K selection plus a K-row exact re-rank.
    ///
    /// Under the model-blind policies stage one is the same prefilter +
    /// bounded heap the other rankers use, and the survivors get the exact
    /// model re-rank — cheaper stage one, measurable accuracy cost (the
    /// `scenario_scale` sweep publishes both).
    pub fn rank_feasible_batch_into(
        &mut self,
        request: &JobRequest,
        predictor: &CompletionTimePredictor,
        out: &mut NodeRanking,
    ) {
        let feasible_len = self.feasible_candidates(request).len();
        let mut use_model = false;
        let count = match self.top_k {
            Some(k) if k < feasible_len && self.policy == PruningPolicy::ModelAligned => {
                use_model = true;
                let board = self.sync_coarse_scores(request, predictor);
                self.model_pruned_for(request, k, board);
                self.scratch.model_pruned.len()
            }
            _ => self.pruned_candidates(request).len(),
        };
        let schema = predictor.schema();
        self.scratch.features.reset(schema.len());
        for i in 0..count {
            let id = if use_model {
                self.scratch.model_pruned[i]
            } else {
                self.scratch.pruned[i]
            };
            let node = self.scratch.telemetry.node(id).copied().unwrap_or_default();
            let rtt_stats = self.scratch.telemetry.rtt_stats(id);
            schema.construct_into_matrix(&mut self.scratch.features, &node, rtt_stats, request);
        }
        predictor.predict_batch_into(&self.scratch.features, &mut self.scratch.predictions);
        let ranked: &[NodeId] = if use_model {
            &self.scratch.model_pruned
        } else {
            &self.scratch.pruned
        };
        DecisionModule.rank_into(ranked, &self.scratch.predictions, out);
    }

    /// How many coarse scoreboards the pool keeps before evicting the
    /// oldest. Bursts interleaving up to this many (predictor, job signature
    /// cell) pairs pay the full-cluster inference once per pair, not once
    /// per decision; at 10k nodes a board is ~80 KB, so even a full pool
    /// stays a few MB of scratch.
    const MAX_COARSE_BOARDS: usize = 64;

    /// Ensure a coarse scoreboard covering every node exists for this
    /// (predictor, job-signature cell) pair, and return its index in the
    /// pool. The signature is the job's feature row over a default node,
    /// collapsed to the model's own partition cells
    /// ([`CompletionTimePredictor::signature_cells`]): every job whose
    /// columns land in the same inter-threshold cells shares one board, and
    /// — because equal cells mean identical tree paths — shares the *exact*
    /// scores, so the key space is bounded by the model's split granularity
    /// rather than the stream's diversity. A build is one batch inference
    /// over the *whole* cluster; the cell row doubles as a predictor
    /// fingerprint so a different model (even one reusing the same
    /// allocation) can't serve stale scores. Boards are pooled FIFO so
    /// request streams that alternate workload classes don't thrash a single
    /// cache slot, and stale boards from earlier bursts (retired telemetry)
    /// are recycled in place, buffers and all.
    fn sync_coarse_scores(
        &mut self,
        request: &JobRequest,
        predictor: &CompletionTimePredictor,
    ) -> usize {
        let schema = predictor.schema();
        let mut sig = std::mem::take(&mut self.scratch.sig_scratch);
        schema.construct_into(
            &mut sig,
            &NodeTelemetry::default(),
            (0.0, 0.0, 0.0),
            request,
        );
        predictor.signature_cells(&mut sig);
        let ident = (
            std::ptr::from_ref(predictor) as usize,
            predictor.predict_from_features(&sig),
        );
        let epoch = self.scratch.board_epoch;
        let hit = self
            .scratch
            .coarse_boards
            .iter()
            .position(|b| b.epoch == epoch && b.predictor == ident && b.sig == sig);
        let board = match hit {
            Some(at) => at,
            None => {
                // Recycle a stale board's buffers in place when one exists;
                // otherwise evict the oldest once full, or grow the pool.
                let at = match self
                    .scratch
                    .coarse_boards
                    .iter()
                    .position(|b| b.epoch != epoch)
                {
                    Some(stale) => stale,
                    None => {
                        if self.scratch.coarse_boards.len() >= Self::MAX_COARSE_BOARDS {
                            let recycled = self.scratch.coarse_boards.remove(0);
                            self.scratch.coarse_boards.push(recycled);
                        } else {
                            self.scratch.coarse_boards.push(CoarseBoard {
                                id: 0,
                                epoch,
                                predictor: (0, 0.0),
                                sig: Vec::new(),
                                scores: Vec::new(),
                            });
                        }
                        self.scratch.coarse_boards.len() - 1
                    }
                };
                self.scratch.coarse_boards[at].id = self.scratch.coarse_next_id;
                self.scratch.coarse_next_id += 1;
                self.scratch.coarse_boards[at].epoch = epoch;
                self.scratch.coarse_boards[at].predictor = ident;
                std::mem::swap(&mut self.scratch.coarse_boards[at].sig, &mut sig);
                self.scratch.features.reset(schema.len());
                for idx in 0..self.cluster.node_count() {
                    let id = NodeId(idx as u32);
                    let node = self.scratch.telemetry.node(id).copied().unwrap_or_default();
                    let rtt_stats = self.scratch.telemetry.rtt_stats(id);
                    schema.construct_into_matrix(
                        &mut self.scratch.features,
                        &node,
                        rtt_stats,
                        request,
                    );
                }
                predictor.predict_batch_into(
                    &self.scratch.features,
                    &mut self.scratch.coarse_boards[at].scores,
                );
                at
            }
        };
        sig.clear();
        self.scratch.sig_scratch = sig;
        board
    }

    /// Select the K best feasible candidates by the given scoreboard's score
    /// (ties by ascending id — the same total order the exact rank uses), in
    /// ascending [`NodeId`] order, through the scratch's bounded heap.
    /// Cached per `(driver sizing, K, board)`.
    fn model_pruned_for(&mut self, request: &JobRequest, k: usize, board: usize) {
        let board_id = self.scratch.coarse_boards[board].id;
        let key = (
            request.driver_cpu_millis,
            request.driver_memory_bytes,
            k,
            board_id,
        );
        if self.scratch.model_pruned_key != Some(key) {
            self.feasible_candidates(request);
            let mut heap = std::mem::take(&mut self.scratch.heap);
            heap.clear();
            if k > 0 {
                let count = self.scratch.candidates.len();
                for i in 0..count {
                    let id = self.scratch.candidates[i];
                    let score = self.scratch.coarse_boards[board].scores[id.index()];
                    bounded_heap_offer(&mut heap, k, (score, id));
                }
            }
            self.scratch.model_pruned.clear();
            self.scratch
                .model_pruned
                .extend(heap.iter().map(|&(_, id)| id));
            self.scratch.model_pruned.sort_unstable();
            self.scratch.heap = heap;
            self.scratch.model_pruned_key = Some(key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{Node, PodSpec, Resources};
    use simcore::SimTime;
    use sparksim::WorkloadKind;
    use telemetry::NodeTelemetry;

    fn cluster(n: usize) -> ClusterState {
        let mut c = ClusterState::new();
        for i in 0..n {
            c.add_node(Node::new(
                format!("node-{}", i + 1),
                simnet::NodeId(i),
                Resources::from_cores_and_gib(6, 8),
                "SITE",
            ));
        }
        c
    }

    fn snapshot(n: usize) -> ClusterSnapshot {
        let mut snap = ClusterSnapshot::at(SimTime::from_secs(10));
        for i in 0..n {
            let name = format!("node-{}", i + 1);
            snap.insert_node(
                &name,
                NodeTelemetry {
                    cpu_load: i as f64,
                    memory_available_bytes: 6e9,
                    tx_rate: 0.0,
                    rx_rate: 0.0,
                },
            );
            for j in 0..n {
                if i != j {
                    snap.insert_rtt(&name, &format!("node-{}", j + 1), 0.01 * (i + 1) as f64);
                }
            }
        }
        snap
    }

    fn request(name: &str) -> JobRequest {
        JobRequest::named(name, WorkloadKind::Sort, 100_000, 2)
    }

    #[test]
    fn context_exposes_indexed_telemetry() {
        let c = cluster(3);
        let snap = snapshot(3);
        let ctx = SchedulingContext::new(&snap, &c);
        assert_eq!(ctx.cluster().node_count(), 3);
        assert_eq!(ctx.snapshot().time, SimTime::from_secs(10));
        assert_eq!(ctx.telemetry().len(), 3);
        let id = c.node_id("node-2").unwrap();
        assert_eq!(ctx.node_telemetry(id).unwrap().cpu_load, 1.0);
        let (mean, _, _) = ctx.rtt_stats(id);
        assert!((mean - 0.02).abs() < 1e-12);
    }

    #[test]
    fn feasibility_is_cached_per_driver_sizing_and_refreshed_on_change() {
        let mut c = cluster(3);
        // Fill node-2 completely.
        let id = c.create_pod(
            PodSpec::new("hog", Resources::from_cores_and_gib(6, 8)),
            SimTime::ZERO,
        );
        c.bind_pod(id, "node-2", SimTime::ZERO).unwrap();
        let snap = snapshot(3);
        let mut ctx = SchedulingContext::new(&snap, &c);

        let small_a = ctx.feasible_candidates(&request("a")).to_vec();
        assert_eq!(
            small_a,
            vec![c.node_id("node-1").unwrap(), c.node_id("node-3").unwrap()]
        );
        // Same sizing, different job: served from cache (same result).
        let small_b = ctx.feasible_candidates(&request("b")).to_vec();
        assert_eq!(small_a, small_b);

        // An oversized driver fits nowhere; the cache must not serve the
        // small-driver result.
        let huge = request("huge").with_driver_resources(64_000, 64 * 1024 * 1024 * 1024);
        assert!(ctx.feasible_candidates(&huge).is_empty());
        // And switching back recomputes the small set.
        assert_eq!(ctx.feasible_candidates(&request("c")).to_vec(), small_a);
    }

    #[test]
    fn pruning_off_or_oversized_k_returns_the_full_feasible_set() {
        let c = cluster(5);
        let snap = snapshot(5);
        let mut ctx = SchedulingContext::new(&snap, &c);
        let full = ctx.feasible_candidates(&request("a")).to_vec();
        assert_eq!(full.len(), 5);

        // Default (no pruning).
        assert_eq!(ctx.pruned_candidates(&request("a")), full.as_slice());
        // K equal to and beyond the feasible count, under every policy.
        for policy in [
            PruningPolicy::ModelAligned,
            PruningPolicy::LinearBlend,
            PruningPolicy::LeastAllocated,
        ] {
            ctx.set_pruning_policy(policy);
            for k in [5, 6, 1000] {
                ctx.set_top_k(Some(k));
                assert_eq!(
                    ctx.pruned_candidates(&request("a")),
                    full.as_slice(),
                    "{policy:?} K = {k}"
                );
            }
        }
        // K = 0 is a degenerate but well-defined budget: nothing to rank.
        ctx.set_top_k(Some(0));
        assert!(ctx.pruned_candidates(&request("a")).is_empty());
    }

    #[test]
    fn pruning_keeps_the_best_prefilter_scores_in_ascending_id_order() {
        let c = cluster(6);
        // The snapshot fixture gives node i cpu_load = i and rtt mean
        // 0.01 * (i + 1): the prefilter score strictly increases with the
        // node index, so top-K must keep the K lowest-indexed nodes.
        let snap = snapshot(6);
        let mut ctx = SchedulingContext::new(&snap, &c);
        let full = ctx.feasible_candidates(&request("a")).to_vec();
        let mut scored: Vec<(f64, NodeId)> = full
            .iter()
            .map(|&id| (ctx.prefilter_score(id), id))
            .collect();
        scored.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));

        for k in 1..=6usize {
            ctx.set_top_k(Some(k));
            let pruned = ctx.pruned_candidates(&request("a")).to_vec();
            let mut expected: Vec<NodeId> = scored[..k].iter().map(|&(_, id)| id).collect();
            expected.sort_unstable();
            assert_eq!(pruned, expected, "K = {k}");
            // Ascending id order is part of the contract.
            assert!(pruned.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn least_allocated_policy_prunes_by_headroom() {
        let mut c = cluster(4);
        // Load node-1 and node-2 (most to least), leaving 3 and 4 idle:
        // least-allocated must keep the idle nodes first.
        for (name, cores) in [("node-1", 5), ("node-2", 3)] {
            let id = c.create_pod(
                PodSpec::new(
                    format!("hog-{name}"),
                    Resources::from_cores_and_gib(cores, 1),
                ),
                SimTime::ZERO,
            );
            c.bind_pod(id, name, SimTime::ZERO).unwrap();
        }
        let snap = snapshot(4);
        let mut ctx = SchedulingContext::new(&snap, &c);
        ctx.set_pruning_policy(PruningPolicy::LeastAllocated);
        ctx.set_top_k(Some(2));
        let pruned = ctx.pruned_candidates(&request("a")).to_vec();
        assert_eq!(
            pruned,
            vec![c.node_id("node-3").unwrap(), c.node_id("node-4").unwrap()]
        );
        // The telemetry blend would have kept node-1 (lowest cpu_load in the
        // snapshot fixture) — the policy dimension really changes the set.
        ctx.set_pruning_policy(PruningPolicy::LinearBlend);
        let blended = ctx.pruned_candidates(&request("a")).to_vec();
        assert_eq!(
            blended,
            vec![c.node_id("node-1").unwrap(), c.node_id("node-2").unwrap()]
        );
    }

    #[test]
    fn pruned_cache_tracks_driver_sizing_budget_and_policy() {
        let mut c = cluster(4);
        let id = c.create_pod(
            PodSpec::new("hog", Resources::from_cores_and_gib(6, 8)),
            SimTime::ZERO,
        );
        c.bind_pod(id, "node-4", SimTime::ZERO).unwrap();
        let snap = snapshot(4);
        let mut ctx = SchedulingContext::new(&snap, &c);

        ctx.set_top_k(Some(2));
        let pruned = ctx.pruned_candidates(&request("a")).to_vec();
        assert_eq!(pruned.len(), 2);
        // Budget change must invalidate the cached pruned set…
        ctx.set_top_k(Some(1));
        assert_eq!(ctx.pruned_candidates(&request("a")).len(), 1);
        // …and so must a sizing change (the oversized driver fits nowhere).
        let huge = request("huge").with_driver_resources(64_000, 64 * 1024 * 1024 * 1024);
        assert!(ctx.pruned_candidates(&huge).is_empty());
        ctx.set_top_k(Some(2));
        assert_eq!(ctx.pruned_candidates(&request("b")).to_vec(), pruned);
    }

    #[test]
    fn budgeted_batch_rank_preserves_the_unpruned_decision_prefix() {
        use crate::features::FeatureSchema;
        use mlcore::{Dataset, ModelConfig, ModelKind, TrainedModel};
        use simcore::rng::Rng;

        // Trained to prefer *high*-load nodes — the opposite of the linear
        // prefilter's ordering — so this test fails if the supervised path
        // ever prunes by the heuristic instead of the model-aligned coarse
        // scoreboard.
        let schema = FeatureSchema::standard();
        let mut data = Dataset::new(schema.names().to_vec());
        let job = request("train");
        for load in 0..30 {
            let mut snap = snapshot(1);
            snap.node_mut("node-1").unwrap().cpu_load = load as f64 / 5.0;
            let features = schema.construct(&snap, "node-1", &job);
            data.push(features, 40.0 - 4.0 * load as f64 / 5.0).unwrap();
        }
        let mut rng = Rng::seed_from_u64(5);
        let model =
            TrainedModel::train(ModelKind::Linear, &ModelConfig::default(), &data, &mut rng);
        let predictor = CompletionTimePredictor::new(schema, model).unwrap();

        let c = cluster(8);
        let snap = snapshot(8);
        let mut ctx = SchedulingContext::new(&snap, &c);
        let full = ctx.rank_feasible_batch(&request("a"), &predictor);
        assert_eq!(full.len(), 8);
        // The model's winner is the highest-load node — the *worst* by
        // prefilter score.
        assert_eq!(full.best().unwrap().node, c.node_id("node-8").unwrap());

        // At every budget the pruned ranking is exactly the first K entries
        // of the unpruned one (scores included): stage one kept the K best
        // nodes by the model's own ordering.
        for k in 1..=8usize {
            ctx.set_top_k(Some(k));
            let pruned = ctx.rank_feasible_batch(&request("a"), &predictor);
            assert_eq!(pruned.ranked.as_slice(), &full.ranked[..k], "K = {k}");
        }
        ctx.set_top_k(Some(1_000));
        let oversized = ctx.rank_feasible_batch(&request("a"), &predictor);
        assert_eq!(oversized, full);

        // A different workload class re-keys the scoreboard and stays exact.
        let other = JobRequest::named("b", WorkloadKind::Join, 50_000, 3);
        ctx.set_top_k(None);
        let full_other = ctx.rank_feasible_batch(&other, &predictor);
        ctx.set_top_k(Some(2));
        let pruned_other = ctx.rank_feasible_batch(&other, &predictor);
        assert_eq!(pruned_other.ranked.as_slice(), &full_other.ranked[..2]);

        // The model-blind policies keep the heuristic stage even for the
        // supervised rank: at K = 1 the survivor is the *lowest*-scoring
        // node by the linear prefilter (node-1), which the model then ranks
        // — a measurably different decision from the model-aligned one.
        ctx.set_pruning_policy(PruningPolicy::LinearBlend);
        ctx.set_top_k(Some(1));
        let blend = ctx.rank_feasible_batch(&request("a"), &predictor);
        assert_eq!(blend.best().unwrap().node, c.node_id("node-1").unwrap());
        assert_eq!(
            ctx.pruned_candidates(&request("a")),
            &[c.node_id("node-1").unwrap()]
        );
    }

    #[test]
    fn scratch_reuse_keeps_the_feasibility_index_warm() {
        let mut c = cluster(4);
        let snap = snapshot(4);
        let ctx = SchedulingContext::new(&snap, &c);
        let mut scratch = ctx.into_scratch();
        assert_eq!(scratch.feasibility_rebuilds(), 0, "no query yet");

        // First burst syncs the index once; a second burst over the
        // unchanged cluster reuses it (generation-keyed).
        for _ in 0..2 {
            let mut ctx = SchedulingContext::with_scratch(&snap, &c, scratch);
            assert_eq!(ctx.feasible_candidates(&request("a")).len(), 4);
            scratch = ctx.into_scratch();
        }
        assert_eq!(scratch.feasibility_rebuilds(), 1);

        // A cluster mutation between bursts forces exactly one rebuild.
        c.node_mut("node-4").unwrap().schedulable = false;
        let mut ctx = SchedulingContext::with_scratch(&snap, &c, scratch);
        assert_eq!(ctx.feasible_candidates(&request("a")).len(), 3);
        scratch = ctx.into_scratch();
        assert_eq!(scratch.feasibility_rebuilds(), 2);
    }
}
