//! Job requests: what the client submits.

use cluster::{JobSpec, Resources};
use serde::{Deserialize, Serialize};
use sparksim::{WorkloadKind, WorkloadRequest};

/// A client job submission: the application to run plus its configuration.
///
/// This corresponds to the paper's client component: *"a job submission
/// request, which includes application-specific parameters such as job type
/// (e.g., sort, join), input data size, and resource configuration (e.g.,
/// executor count, memory)."*
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRequest {
    /// Unique job name.
    pub name: String,
    /// The workload to run (type, input size, executors, memory, partitions).
    pub workload: WorkloadRequest,
    /// CPU requested by the driver pod, millicores.
    pub driver_cpu_millis: u64,
    /// Memory requested by the driver pod, bytes.
    pub driver_memory_bytes: u64,
}

impl JobRequest {
    /// Create a request with default driver sizing (1 core, 1 GiB).
    pub fn new(name: impl Into<String>, workload: WorkloadRequest) -> Self {
        JobRequest {
            name: name.into(),
            workload,
            driver_cpu_millis: 1000,
            driver_memory_bytes: 1024 * 1024 * 1024,
        }
    }

    /// Convenience constructor from workload parameters.
    pub fn named(
        name: impl Into<String>,
        kind: WorkloadKind,
        input_records: u64,
        executors: u32,
    ) -> Self {
        JobRequest::new(
            name,
            WorkloadRequest::new(kind, input_records).with_executors(executors),
        )
    }

    /// Builder-style: driver resources.
    pub fn with_driver_resources(mut self, cpu_millis: u64, memory_bytes: u64) -> Self {
        self.driver_cpu_millis = cpu_millis;
        self.driver_memory_bytes = memory_bytes;
        self
    }

    /// The application type string (feature + manifest field).
    pub fn app_type(&self) -> &'static str {
        self.workload.kind.as_str()
    }

    /// Driver resource requests as a [`Resources`] bundle.
    pub fn driver_resources(&self) -> Resources {
        Resources::new(self.driver_cpu_millis, self.driver_memory_bytes)
    }

    /// Per-executor resource requests as a [`Resources`] bundle.
    pub fn executor_resources(&self) -> Resources {
        Resources::new(
            self.workload.executor_cores as u64 * 1000,
            self.workload.executor_memory_bytes,
        )
    }

    /// Convert into a cluster-level [`JobSpec`] (driver + executor templates).
    pub fn to_job_spec(&self) -> JobSpec {
        let mut spec = JobSpec::new(String::new(), String::new(), 0);
        self.to_job_spec_into(&mut spec);
        spec
    }

    /// In-place variant of [`JobRequest::to_job_spec`]: overwrite every field
    /// of `spec`, reusing its string allocations.
    pub fn to_job_spec_into(&self, spec: &mut JobSpec) {
        spec.name.clone_from(&self.name);
        spec.app_type.clear();
        spec.app_type.push_str(self.app_type());
        spec.input_records = self.workload.input_records;
        spec.executor_count = self.workload.executor_count;
        spec.driver_requests = self.driver_resources();
        spec.executor_requests = self.executor_resources();
        spec.shuffle_partitions = self.workload.shuffle_partitions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let req = JobRequest::named("sort-1", WorkloadKind::Sort, 100_000, 3)
            .with_driver_resources(2000, 2 * 1024 * 1024 * 1024);
        assert_eq!(req.name, "sort-1");
        assert_eq!(req.app_type(), "sort");
        assert_eq!(req.workload.executor_count, 3);
        assert_eq!(req.driver_resources().cpu_cores(), 2.0);
        assert_eq!(req.driver_resources().memory_gib(), 2.0);
        assert_eq!(req.executor_resources().cpu_millis, 1000);
    }

    #[test]
    fn job_spec_conversion_carries_all_fields() {
        let req = JobRequest::named("join-5", WorkloadKind::Join, 500_000, 4);
        let spec = req.to_job_spec();
        assert_eq!(spec.name, "join-5");
        assert_eq!(spec.app_type, "join");
        assert_eq!(spec.input_records, 500_000);
        assert_eq!(spec.executor_count, 4);
        assert_eq!(spec.driver_requests, req.driver_resources());
        assert_eq!(spec.executor_requests, req.executor_resources());
        assert_eq!(spec.shuffle_partitions, req.workload.shuffle_partitions);
    }
}
