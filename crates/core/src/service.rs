//! The end-to-end scheduler service.
//!
//! [`SchedulerService`] wires the paper's pipeline together: fetch telemetry,
//! construct features, predict per-node completion times, rank, build the
//! pinned job manifest, and log the outcome for retraining. It runs entirely
//! in user space against the metrics server and the cluster API — no control
//! plane modification, exactly as the paper emphasizes.

use crate::builder::{BuiltJob, JobBuilder};
use crate::context::PruningPolicy;
use crate::context::{ContextScratch, SchedulingContext};
use crate::decision::{NodeRanking, RankedNode};
use crate::fetcher::TelemetryFetcher;
use crate::logger::ExecutionLogger;
use crate::predictor::CompletionTimePredictor;
use crate::request::JobRequest;
use crate::schedulers::{JobScheduler, SupervisedScheduler};
use crate::training::TrainingPipeline;
use cluster::ClusterState;
use mlcore::ModelKind;
use serde::{Deserialize, Serialize};
use simcore::rng::Rng;
use simcore::{SimDuration, SimTime};
use std::sync::Arc;
use telemetry::{ClusterSnapshot, SnapshotSource};

/// Service configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Which model family to use once trained.
    pub model_kind: ModelKind,
    /// Telemetry rate window for throughput derivation.
    pub rate_window: SimDuration,
    /// Minimum number of logged executions before the service switches from
    /// fallback placement to supervised placement.
    pub min_training_samples: usize,
    /// Candidate-pruning budget: rank at most this many prefiltered
    /// candidates per decision (the two-stage decision path for large
    /// worlds). `None` (the default) ranks the full feasible set; any value
    /// `≥ |feasible|` is byte-identical to `None`.
    pub prune_top_k: Option<usize>,
    /// Which stage-1 scorer a `prune_top_k` budget prunes with. The default,
    /// [`PruningPolicy::ModelAligned`], keeps supervised decisions
    /// byte-identical to the unpruned rank at every K; the model-blind
    /// policies are cheaper but approximate (the `scenario_scale` sweep
    /// publishes their measured accuracy).
    pub pruning_policy: PruningPolicy,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            model_kind: ModelKind::RandomForest,
            rate_window: SimDuration::from_secs(30),
            min_training_samples: 50,
            prune_top_k: None,
            pruning_policy: PruningPolicy::default(),
        }
    }
}

/// The result of one scheduling decision.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SchedulingDecision {
    /// The job as built (manifests, pinned driver pod).
    pub job: BuiltJob,
    /// The ranking over candidate nodes.
    pub ranking: NodeRanking,
    /// The telemetry snapshot the decision was based on. Shared (not deep
    /// copied) across every decision of a batch.
    pub snapshot: Arc<ClusterSnapshot>,
    /// Whether the supervised model was used (false = fallback placement
    /// because no model is trained yet).
    pub used_model: bool,
}

/// The user-space scheduling service.
///
/// The supervised scheduler is built once when a model becomes available and
/// cached on the service; it is invalidated only by [`SchedulerService::retrain`].
/// Decisions never clone the predictor.
#[derive(Debug, Clone)]
pub struct SchedulerService {
    config: SchedulerConfig,
    fetcher: TelemetryFetcher,
    builder: JobBuilder,
    logger: ExecutionLogger,
    pipeline: TrainingPipeline,
    scheduler: Option<SupervisedScheduler>,
    fallback_rng: Rng,
    /// Reusable snapshot buffer: each fetch overwrites it in place instead of
    /// rebuilding the node table and RTT mesh. Decisions share it via `Arc`;
    /// when a caller still holds a previous decision's snapshot the next
    /// fetch transparently copies on write. Against an epoch-publishing
    /// metrics server this *is* the published epoch's own `Arc` — adopted,
    /// never copied.
    snapshot_scratch: Arc<ClusterSnapshot>,
    /// Epoch of the published snapshot currently held in `snapshot_scratch`
    /// (`None` when the last fetch went through a non-publishing source).
    /// The freshness fast-path: when the metrics server has published
    /// nothing new since the last burst, the fetch is skipped entirely and
    /// the held `Arc` is reused — one atomic load per burst.
    held_epoch: Option<u64>,
    /// Context buffers carried across bursts (indexed telemetry, the
    /// generation-keyed feasibility index, candidate/pruning/prediction
    /// scratch, the batch feature matrix): each burst takes them, decides,
    /// and puts them back warm. On the held-epoch fast path — and any burst
    /// where the cluster did not change — feasibility costs one integer
    /// compare instead of an index rebuild.
    ctx_scratch: ContextScratch,
}

impl SchedulerService {
    /// Create a service with no trained model yet.
    pub fn new(config: SchedulerConfig, seed: u64) -> Self {
        let pipeline = TrainingPipeline::default();
        SchedulerService {
            fetcher: TelemetryFetcher::new(config.rate_window),
            builder: JobBuilder,
            logger: ExecutionLogger::new(pipeline.schema.clone()),
            pipeline,
            scheduler: None,
            config,
            fallback_rng: Rng::seed_from_u64(seed),
            snapshot_scratch: Arc::new(ClusterSnapshot::default()),
            held_epoch: None,
            ctx_scratch: ContextScratch::default(),
        }
    }

    /// Create a service from an already trained predictor.
    pub fn with_predictor(
        config: SchedulerConfig,
        predictor: CompletionTimePredictor,
        seed: u64,
    ) -> Self {
        let mut service = Self::new(config, seed);
        service.logger = ExecutionLogger::new(predictor.schema().clone());
        service.pipeline = TrainingPipeline::with_schema(predictor.schema().clone());
        service.scheduler = Some(SupervisedScheduler::new(predictor));
        service
    }

    /// The active predictor, if trained.
    pub fn predictor(&self) -> Option<&CompletionTimePredictor> {
        self.scheduler.as_ref().map(SupervisedScheduler::predictor)
    }

    /// The execution log collected so far.
    pub fn logger(&self) -> &ExecutionLogger {
        &self.logger
    }

    /// Number of logged executions.
    pub fn logged_executions(&self) -> usize {
        self.logger.len()
    }

    /// Whether the service currently schedules with the supervised model.
    pub fn is_model_active(&self) -> bool {
        self.scheduler.is_some()
    }

    /// How many times the persistent feasibility index was actually rebuilt
    /// (as opposed to reused after a generation match). A burst against an
    /// unchanged cluster — e.g. the held-epoch fast path — must not bump
    /// this.
    pub fn feasibility_rebuilds(&self) -> u64 {
        self.ctx_scratch.feasibility_rebuilds()
    }

    /// Make a placement decision for `request` at time `now`.
    ///
    /// Telemetry is fetched from `metrics_server` — any
    /// [`SnapshotSource`], including a [`telemetry::TelemetryReader`] over a
    /// concurrent ingest running on another thread, so decision bursts can
    /// overlap with scraping. A [`telemetry::PublishedSnapshot`] handle is
    /// the fastest source: the decision adopts the published epoch's
    /// immutable snapshot without locks or copies, and an unchanged epoch
    /// skips the fetch entirely. Feasibility comes from the cluster state.
    /// Before a model is available the service falls back to a uniformly
    /// random feasible node (matching how the paper bootstraps its training
    /// data with varied `target_node` assignments).
    pub fn schedule<S: SnapshotSource + ?Sized>(
        &mut self,
        request: &JobRequest,
        metrics_server: &S,
        cluster: &ClusterState,
        now: SimTime,
    ) -> SchedulingDecision {
        let snapshot = self.fetch_shared(metrics_server, now);
        let scratch = std::mem::take(&mut self.ctx_scratch);
        let mut ctx = SchedulingContext::with_scratch(&snapshot, cluster, scratch);
        ctx.set_top_k(self.config.prune_top_k);
        ctx.set_pruning_policy(self.config.pruning_policy);
        let mut ranking = NodeRanking::default();
        let used_model = self.decide_into(request, &mut ctx, &mut ranking);
        self.ctx_scratch = ctx.into_scratch();
        let job = self.builder.build(request, ranking.best_name(cluster));
        SchedulingDecision {
            job,
            ranking,
            snapshot,
            used_model,
        }
    }

    /// Make placement decisions for a whole burst of requests against one
    /// telemetry fetch and one [`SchedulingContext`], amortizing snapshot
    /// indexing and feasibility filtering across the burst.
    pub fn schedule_batch<S: SnapshotSource + ?Sized>(
        &mut self,
        requests: &[JobRequest],
        metrics_server: &S,
        cluster: &ClusterState,
        now: SimTime,
    ) -> Vec<SchedulingDecision> {
        let mut out = Vec::with_capacity(requests.len());
        self.schedule_batch_into(requests, metrics_server, cluster, now, &mut out);
        out
    }

    /// In-place variant of [`SchedulerService::schedule_batch`]: decisions
    /// are written into `out`, reusing the rankings, job specs, pod specs
    /// and manifest strings of the decisions already there (slots are added
    /// or dropped to match `requests`). Combined with the epoch fast-path
    /// and the carried context scratch, a steady-state burst against a
    /// published snapshot performs **zero heap allocations** — the property
    /// the `hot_path_alloc` harness pins at runtime.
    pub fn schedule_batch_into<S: SnapshotSource + ?Sized>(
        &mut self,
        requests: &[JobRequest],
        metrics_server: &S,
        cluster: &ClusterState,
        now: SimTime,
        out: &mut Vec<SchedulingDecision>,
    ) {
        let snapshot = self.fetch_shared(metrics_server, now);
        let scratch = std::mem::take(&mut self.ctx_scratch);
        let mut ctx = SchedulingContext::with_scratch(&snapshot, cluster, scratch);
        ctx.set_top_k(self.config.prune_top_k);
        ctx.set_pruning_policy(self.config.pruning_policy);
        out.truncate(requests.len());
        while out.len() < requests.len() {
            out.push(SchedulingDecision {
                job: BuiltJob::empty(),
                ranking: NodeRanking::default(),
                snapshot: Arc::clone(&snapshot),
                used_model: false,
            });
        }
        for (request, decision) in requests.iter().zip(out.iter_mut()) {
            decision.used_model = self.decide_into(request, &mut ctx, &mut decision.ranking);
            self.builder.build_into(
                request,
                decision.ranking.best_name(cluster),
                &mut decision.job,
            );
            decision.snapshot = Arc::clone(&snapshot);
        }
        self.ctx_scratch = ctx.into_scratch();
    }

    /// Fetch the current telemetry snapshot into the service's reusable
    /// scratch buffer and hand out a shared reference. The buffer is
    /// overwritten in place (no node-table or mesh reallocation) unless a
    /// caller still holds a previous decision's snapshot, in which case the
    /// scratch is replaced with a fresh buffer (cheaper than cloning the old
    /// contents only to overwrite them).
    ///
    /// Against an **epoch-publishing** metrics server (see
    /// [`telemetry::publish`]) no assembly happens at all: the published
    /// epoch's immutable `Arc` is adopted as-is (an atomic load plus a
    /// refcount bump), and while no new epoch has been published since the
    /// last burst even that is skipped — the held `Arc` is reused after a
    /// single atomic freshness check. Published snapshots carry their own
    /// scrape time, so `now` only stamps the non-published fallback.
    fn fetch_shared<S: SnapshotSource + ?Sized>(
        &mut self,
        metrics_server: &S,
        now: SimTime,
    ) -> Arc<ClusterSnapshot> {
        if let Some(epoch) = self.fetcher.published_epoch(metrics_server) {
            if self.held_epoch == Some(epoch) {
                return Arc::clone(&self.snapshot_scratch);
            }
            if let Some(published) = self.fetcher.fetch_published(metrics_server) {
                self.held_epoch = Some(published.epoch);
                self.snapshot_scratch = published.snapshot;
                return Arc::clone(&self.snapshot_scratch);
            }
        }
        self.held_epoch = None;
        let fetcher = self.fetcher;
        if Arc::get_mut(&mut self.snapshot_scratch).is_none() {
            self.snapshot_scratch = Arc::new(ClusterSnapshot::default());
        }
        // Always `Some`: the branch above replaced any shared buffer with a
        // freshly created (uniquely owned) one.
        if let Some(scratch) = Arc::get_mut(&mut self.snapshot_scratch) {
            fetcher.fetch_into(metrics_server, now, scratch);
        }
        Arc::clone(&self.snapshot_scratch)
    }

    /// The core decision: supervised when a model is cached, random-feasible
    /// fallback otherwise. Uses the cached scheduler — no predictor clone.
    /// The ranking is built into `out` (buffer reused); returns whether the
    /// supervised model decided.
    fn decide_into(
        &mut self,
        request: &JobRequest,
        ctx: &mut SchedulingContext<'_>,
        out: &mut NodeRanking,
    ) -> bool {
        match &mut self.scheduler {
            Some(scheduler) => {
                scheduler.select_into(request, ctx, out);
                true
            }
            None => {
                // Shuffling the ranked slice draws the RNG exactly like the
                // historical shuffle over a `Vec<NodeId>` of the same length,
                // so fallback decision streams are unchanged with pruning off
                // (the pruned set *is* the feasible set at `top_k = None`).
                out.ranked.clear();
                out.ranked.extend(
                    ctx.pruned_candidates(request)
                        .iter()
                        .map(|&node| RankedNode {
                            node,
                            predicted_seconds: 0.0,
                        }),
                );
                self.fallback_rng.shuffle(&mut out.ranked);
                for (i, ranked) in out.ranked.iter_mut().enumerate() {
                    ranked.predicted_seconds = i as f64;
                }
                false
            }
        }
    }

    /// Record a completed execution for future retraining.
    pub fn record_outcome(
        &mut self,
        snapshot: &ClusterSnapshot,
        request: &JobRequest,
        target_node: &str,
        completion_seconds: f64,
    ) {
        self.logger
            .log_execution(snapshot, request, target_node, completion_seconds);
    }

    /// Retrain the configured model family from the accumulated log. Returns
    /// `false` (and leaves any existing model untouched) when fewer than
    /// `min_training_samples` executions have been recorded. This is the only
    /// point that invalidates the cached supervised scheduler.
    pub fn retrain(&mut self, rng: &mut Rng) -> bool {
        if self.logger.len() < self.config.min_training_samples {
            return false;
        }
        let data = self.logger.to_dataset();
        let outcome = self.pipeline.train_one(self.config.model_kind, &data, rng);
        match &mut self.scheduler {
            Some(scheduler) => scheduler.set_predictor(outcome.predictor),
            None => self.scheduler = Some(SupervisedScheduler::new(outcome.predictor)),
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{Node, Resources};
    use simcore::SimDuration;
    use simnet::{gbps, mbps, Network, NodeId, TopologyBuilder};
    use sparksim::WorkloadKind;
    use telemetry::{ScrapeConfig, ScrapeManager};

    fn test_world() -> (ClusterState, Network, ScrapeManager) {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_site("UCSD", SimDuration::from_micros(200), gbps(10.0));
        let s1 = b.add_site("FIU", SimDuration::from_micros(200), gbps(10.0));
        for i in 0..2 {
            b.add_node(format!("node-{}", i + 1), s0, gbps(1.0), gbps(1.0));
        }
        for i in 2..4 {
            b.add_node(format!("node-{}", i + 1), s1, gbps(1.0), gbps(1.0));
        }
        b.connect_sites(s0, s1, SimDuration::from_millis(30), mbps(500.0));
        let network = Network::new(b.build().unwrap());
        let mut cluster = ClusterState::new();
        for i in 0..4 {
            cluster.add_node(Node::new(
                format!("node-{}", i + 1),
                NodeId(i),
                Resources::from_cores_and_gib(6, 8),
                if i < 2 { "UCSD" } else { "FIU" },
            ));
        }
        let mut scrape = ScrapeManager::new(ScrapeConfig::default());
        scrape.scrape(&cluster, &network, SimTime::from_secs(1));
        (cluster, network, scrape)
    }

    fn request(i: usize) -> JobRequest {
        JobRequest::named(format!("sort-{i}"), WorkloadKind::Sort, 100_000, 2)
    }

    #[test]
    fn fallback_placement_before_any_training() {
        let (cluster, _network, scrape) = test_world();
        let mut service = SchedulerService::new(SchedulerConfig::default(), 7);
        assert!(!service.is_model_active());
        let decision = service.schedule(&request(0), &scrape, &cluster, SimTime::from_secs(2));
        assert!(!decision.used_model);
        assert_eq!(decision.ranking.len(), 4);
        assert!(decision.job.target_node.is_some());
        assert!(decision.job.manifest_yaml.contains("SparkApplication"));
        assert!(!decision.snapshot.is_empty());
    }

    #[test]
    fn retrain_requires_minimum_samples_then_activates_model() {
        let (cluster, _network, scrape) = test_world();
        let mut service = SchedulerService::new(
            SchedulerConfig {
                min_training_samples: 30,
                model_kind: ModelKind::Linear,
                ..Default::default()
            },
            3,
        );
        let mut rng = Rng::seed_from_u64(4);
        assert!(!service.retrain(&mut rng), "no data yet");

        // Log synthetic executions whose duration depends on cpu load.
        for i in 0..40 {
            let decision = service.schedule(&request(i), &scrape, &cluster, SimTime::from_secs(2));
            let node = decision.job.target_node.clone().unwrap();
            let load = decision
                .snapshot
                .node(&node)
                .map(|t| t.cpu_load)
                .unwrap_or(0.0);
            let duration = 20.0 + 5.0 * load + (i % 3) as f64;
            service.record_outcome(&decision.snapshot, &request(i), &node, duration);
        }
        assert_eq!(service.logged_executions(), 40);
        assert!(service.retrain(&mut rng));
        assert!(service.is_model_active());
        assert!(service.predictor().is_some());

        // Decisions now use the model and produce a full ranking.
        let decision = service.schedule(&request(99), &scrape, &cluster, SimTime::from_secs(3));
        assert!(decision.used_model);
        assert_eq!(decision.ranking.len(), 4);
        assert!(decision
            .ranking
            .ranked
            .iter()
            .all(|r| r.predicted_seconds.is_finite()));
    }

    #[test]
    fn with_predictor_constructor_is_active_immediately() {
        let (cluster, _network, scrape) = test_world();
        // Train a tiny predictor via the service path first.
        let mut bootstrap = SchedulerService::new(
            SchedulerConfig {
                min_training_samples: 5,
                model_kind: ModelKind::Linear,
                ..Default::default()
            },
            1,
        );
        let mut rng = Rng::seed_from_u64(2);
        for i in 0..10 {
            let d = bootstrap.schedule(&request(i), &scrape, &cluster, SimTime::from_secs(2));
            let node = d.job.target_node.clone().unwrap();
            bootstrap.record_outcome(&d.snapshot, &request(i), &node, 25.0 + i as f64);
        }
        assert!(bootstrap.retrain(&mut rng));
        let predictor = bootstrap.predictor().unwrap().clone();

        let service = SchedulerService::with_predictor(SchedulerConfig::default(), predictor, 9);
        assert!(service.is_model_active());
        assert_eq!(service.logged_executions(), 0);
    }

    #[test]
    fn schedule_batch_matches_sequential_decisions() {
        let (cluster, _network, scrape) = test_world();
        let requests: Vec<JobRequest> = (0..5).map(request).collect();
        let now = SimTime::from_secs(2);

        // Fallback (pre-training) path: the RNG stream must advance the same
        // way through the batch as through sequential calls.
        let mut batch_service = SchedulerService::new(SchedulerConfig::default(), 7);
        let mut seq_service = SchedulerService::new(SchedulerConfig::default(), 7);
        let batch = batch_service.schedule_batch(&requests, &scrape, &cluster, now);
        assert_eq!(batch.len(), requests.len());
        for (request, batched) in requests.iter().zip(&batch) {
            let sequential = seq_service.schedule(request, &scrape, &cluster, now);
            assert_eq!(batched.ranking, sequential.ranking);
            assert_eq!(batched.job.target_node, sequential.job.target_node);
            assert_eq!(batched.used_model, sequential.used_model);
            assert_eq!(batched.snapshot, sequential.snapshot);
        }
    }

    #[test]
    fn decisions_overlap_with_concurrent_ingest() {
        use telemetry::ConcurrentScrapeManager;

        let (cluster, network, _) = test_world();
        let mut manager = ConcurrentScrapeManager::new(ScrapeConfig::default());
        manager.scrape(&cluster, &network, SimTime::from_secs(1));
        let reader = manager.reader();

        // Ingest a long scrape schedule on another thread while this thread
        // keeps scheduling against the reader handle: every decision sees a
        // consistent (whole-round) snapshot, never a torn one.
        let times: Vec<SimTime> = (1..300u64).map(|i| SimTime::from_secs(1 + i * 5)).collect();
        let mut service = SchedulerService::new(SchedulerConfig::default(), 7);
        let decisions = std::thread::scope(|scope| {
            let ingest = scope.spawn(|| {
                manager.ingest(&cluster, &network, &times);
                manager
            });
            let mut decisions = Vec::new();
            for i in 0..50 {
                decisions.push(service.schedule(
                    &request(i),
                    &reader,
                    &cluster,
                    SimTime::from_secs(2000),
                ));
            }
            ingest.join().expect("ingest thread");
            decisions
        });
        for decision in &decisions {
            assert_eq!(decision.ranking.len(), 4);
            assert!(!decision.snapshot.is_empty());
            // Whole-round consistency: a scrape writes every node's load in
            // one round, so a snapshot must never see only a subset.
            assert_eq!(decision.snapshot.node_names().len(), 4);
        }
        // After the ingest completes the reader serves the final state.
        let decision = service.schedule(&request(99), &reader, &cluster, SimTime::from_secs(2000));
        assert_eq!(decision.snapshot.node_names().len(), 4);
    }

    #[test]
    fn published_source_decisions_match_store_backed_decisions() {
        let (cluster, network, mut scrape) = test_world();
        let published = scrape.published_handle();
        // A publisher-free manager over the same scrape history: the
        // store-backed reference the published path must agree with.
        let mut plain = ScrapeManager::new(ScrapeConfig::default());
        plain.scrape(&cluster, &network, SimTime::from_secs(1));
        // Same seed, same world: adopting the published epoch's snapshot must
        // produce the exact decisions the store-backed fetch produces.
        let mut via_published = SchedulerService::new(SchedulerConfig::default(), 7);
        let mut via_store = SchedulerService::new(SchedulerConfig::default(), 7);
        // The published snapshot carries its own scrape time (t = 1), so the
        // store-backed reference fetches at that same instant.
        let now = SimTime::from_secs(1);
        for i in 0..4 {
            let p = via_published.schedule(&request(i), &published, &cluster, now);
            let s = via_store.schedule(&request(i), &plain, &cluster, now);
            assert_eq!(p.ranking, s.ranking);
            assert_eq!(p.job.target_node, s.job.target_node);
            assert_eq!(*p.snapshot, *s.snapshot);
        }
        // A fresh scrape publishes a new epoch; decisions pick it up.
        scrape.scrape(&cluster, &network, SimTime::from_secs(6));
        let d = via_published.schedule(&request(9), &published, &cluster, now);
        assert_eq!(d.snapshot.time, SimTime::from_secs(6));
        // Epoch numbers surface through the fetcher seam too.
        assert_eq!(via_published.fetcher.published_epoch(&published), Some(2));
    }

    #[test]
    fn unchanged_epoch_reuses_the_held_snapshot_arc() {
        let (cluster, network, mut scrape) = test_world();
        let published = scrape.published_handle();
        let mut service = SchedulerService::new(SchedulerConfig::default(), 7);
        let now = SimTime::from_secs(2);

        // No epoch published between bursts: the service must hand out the
        // very same Arc without refetching (the freshness fast-path).
        let first = service.schedule(&request(0), &published, &cluster, now);
        let second = service.schedule(&request(1), &published, &cluster, now);
        assert!(Arc::ptr_eq(&first.snapshot, &second.snapshot));

        // A new epoch invalidates the held snapshot.
        scrape.scrape(&cluster, &network, SimTime::from_secs(6));
        let third = service.schedule(&request(2), &published, &cluster, now);
        assert!(!Arc::ptr_eq(&second.snapshot, &third.snapshot));
        assert_eq!(third.snapshot.time, SimTime::from_secs(6));

        // Switching to a non-publishing source falls back to assembly (and
        // resets the held epoch so the next published fetch re-adopts).
        let mut plain = ScrapeManager::new(ScrapeConfig::default());
        plain.scrape(&cluster, &network, SimTime::from_secs(1));
        let fourth = service.schedule(&request(3), &plain, &cluster, now);
        assert!(!fourth.snapshot.is_empty());
        let fifth = service.schedule(&request(4), &published, &cluster, now);
        assert_eq!(fifth.snapshot.time, SimTime::from_secs(6));
    }

    #[test]
    fn reused_epoch_does_not_rebuild_the_feasibility_index() {
        let (mut cluster, network, mut scrape) = test_world();
        let published = scrape.published_handle();
        let mut service = SchedulerService::new(SchedulerConfig::default(), 7);
        let now = SimTime::from_secs(2);

        // First burst builds the index once.
        service.schedule(&request(0), &published, &cluster, now);
        assert_eq!(service.feasibility_rebuilds(), 1);

        // Same epoch, unchanged cluster: the held-epoch fast path must reuse
        // the feasibility index too — a rebuild here would undo the fast
        // path's whole point on large worlds.
        service.schedule(&request(1), &published, &cluster, now);
        service.schedule_batch(
            &(2..5).map(request).collect::<Vec<_>>(),
            &published,
            &cluster,
            now,
        );
        assert_eq!(service.feasibility_rebuilds(), 1);

        // A new epoch alone (cluster untouched) still reuses the index…
        scrape.scrape(&cluster, &network, SimTime::from_secs(6));
        service.schedule(&request(5), &published, &cluster, now);
        assert_eq!(service.feasibility_rebuilds(), 1);

        // …while a cluster mutation (bind bumps the generation) forces
        // exactly one rebuild on the next burst.
        let pod = cluster.create_pod(
            cluster::PodSpec::new("hog", Resources::from_cores_and_gib(1, 1)),
            SimTime::ZERO,
        );
        cluster.bind_pod(pod, "node-1", SimTime::ZERO).unwrap();
        service.schedule(&request(6), &published, &cluster, now);
        assert_eq!(service.feasibility_rebuilds(), 2);
        service.schedule(&request(7), &published, &cluster, now);
        assert_eq!(service.feasibility_rebuilds(), 2);
    }

    #[test]
    fn oversized_prune_budget_matches_unpruned_decisions() {
        let (cluster, _network, scrape) = test_world();
        let requests: Vec<JobRequest> = (0..6).map(request).collect();
        let now = SimTime::from_secs(2);
        // K ≥ |feasible| must be byte-identical to pruning disabled, on both
        // the fallback path (RNG stream included) and the supervised path.
        let mut unpruned = SchedulerService::new(SchedulerConfig::default(), 7);
        let mut pruned = SchedulerService::new(
            SchedulerConfig {
                prune_top_k: Some(100),
                ..Default::default()
            },
            7,
        );
        let mut rng_a = Rng::seed_from_u64(4);
        let mut rng_b = Rng::seed_from_u64(4);
        for (i, req) in requests.iter().enumerate() {
            let u = unpruned.schedule(req, &scrape, &cluster, now);
            let p = pruned.schedule(req, &scrape, &cluster, now);
            assert_eq!(u.ranking, p.ranking, "request {i}");
            assert_eq!(u.job.target_node, p.job.target_node);
            let node = u.job.target_node.clone().unwrap();
            unpruned.record_outcome(&u.snapshot, req, &node, 20.0 + i as f64);
            pruned.record_outcome(&p.snapshot, req, &node, 20.0 + i as f64);
        }
        // Force-train both on the identical logs (below the default minimum,
        // so lower the bar), then compare supervised decisions.
        for service in [&mut unpruned, &mut pruned] {
            service.config.min_training_samples = 5;
        }
        assert!(unpruned.retrain(&mut rng_a));
        assert!(pruned.retrain(&mut rng_b));
        let u = unpruned.schedule(&request(50), &scrape, &cluster, now);
        let p = pruned.schedule(&request(50), &scrape, &cluster, now);
        assert!(u.used_model && p.used_model);
        assert_eq!(u.ranking, p.ranking);
        assert_eq!(u.job.target_node, p.job.target_node);

        // A genuinely binding budget ranks exactly K candidates.
        let mut tight = SchedulerService::new(
            SchedulerConfig {
                prune_top_k: Some(2),
                ..Default::default()
            },
            7,
        );
        let d = tight.schedule(&request(0), &scrape, &cluster, now);
        assert_eq!(d.ranking.len(), 2);
    }

    #[test]
    fn logged_outcomes_are_exported_via_logger() {
        let (cluster, _network, scrape) = test_world();
        let mut service = SchedulerService::new(SchedulerConfig::default(), 5);
        let d = service.schedule(&request(0), &scrape, &cluster, SimTime::from_secs(2));
        service.record_outcome(&d.snapshot, &request(0), "node-1", 17.5);
        assert_eq!(service.logger().len(), 1);
        assert!(service.logger().to_csv().contains("sort-0"));
    }
}
