//! The Job Builder.
//!
//! *"The module generates and submits jobs to the Kubernetes cluster based on
//! the placement decision. It renders a declarative YAML manifest ... Node
//! placement is enforced by injecting nodeAffinity rules into the generated
//! specification."*

use crate::request::JobRequest;
use cluster::manifest::{render_job_manifest_into, render_pod_manifest};
use cluster::pod::PodSpec;
use cluster::{JobSpec, Resources};
use serde::{Deserialize, Serialize};

/// A fully rendered job ready for submission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BuiltJob {
    /// The cluster-level job specification.
    pub spec: JobSpec,
    /// The driver pod spec, pinned to the selected node.
    pub driver_pod: PodSpec,
    /// Executor pod specs (left to the default scheduler).
    pub executor_pods: Vec<PodSpec>,
    /// The node the driver is pinned to (None = no pinning, default behaviour).
    pub target_node: Option<String>,
    /// The rendered SparkApplication YAML manifest.
    pub manifest_yaml: String,
}

impl BuiltJob {
    /// An empty shell for in-place building via [`JobBuilder::build_into`].
    pub fn empty() -> Self {
        BuiltJob {
            spec: JobSpec::new(String::new(), String::new(), 0),
            driver_pod: PodSpec::new(String::new(), Resources::ZERO),
            executor_pods: Vec::new(),
            target_node: None,
            manifest_yaml: String::new(),
        }
    }
}

/// Overwrite an optional-string slot in place, keeping its allocation when
/// it already holds a value.
fn set_target(slot: &mut Option<String>, target: Option<&str>) {
    match (slot.as_mut(), target) {
        (Some(held), Some(node)) => {
            held.clear();
            held.push_str(node);
        }
        (None, Some(node)) => *slot = Some(node.to_string()),
        (_, None) => *slot = None,
    }
}

/// Builds Kubernetes-style job objects from a request and a placement decision.
#[derive(Debug, Clone, Copy, Default)]
pub struct JobBuilder;

impl JobBuilder {
    /// Build the job pinned to `target_node` (or unpinned when `None`, which
    /// reproduces the default-scheduler baseline behaviour).
    pub fn build(&self, request: &JobRequest, target_node: Option<&str>) -> BuiltJob {
        let mut out = BuiltJob::empty();
        self.build_into(request, target_node, &mut out);
        out
    }

    /// In-place variant of [`JobBuilder::build`]: rebuild `out` for this
    /// request and placement, reusing its spec, pod, manifest and name
    /// allocations. Steady-state bursts over same-shaped requests rebuild
    /// whole jobs without touching the heap.
    pub fn build_into(&self, request: &JobRequest, target_node: Option<&str>, out: &mut BuiltJob) {
        request.to_job_spec_into(&mut out.spec);
        out.spec.driver_pod_into(target_node, &mut out.driver_pod);
        out.spec.executor_pods_into(&mut out.executor_pods);
        render_job_manifest_into(&mut out.manifest_yaml, &out.spec, target_node);
        set_target(&mut out.target_node, target_node);
    }

    /// Render just the driver pod manifest (useful for debugging/logging).
    pub fn driver_manifest(&self, request: &JobRequest, target_node: Option<&str>) -> String {
        let spec = request.to_job_spec();
        render_pod_manifest(&spec.driver_pod(target_node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparksim::WorkloadKind;
    use std::collections::BTreeMap;

    fn request() -> JobRequest {
        JobRequest::named("sort-42", WorkloadKind::Sort, 100_000, 3)
    }

    #[test]
    fn pinned_build_injects_affinity_everywhere() {
        let built = JobBuilder.build(&request(), Some("node-5"));
        assert_eq!(built.target_node.as_deref(), Some("node-5"));
        // Driver pod has the required-hostname affinity.
        let mut labels = BTreeMap::new();
        labels.insert("kubernetes.io/hostname".to_string(), "node-5".to_string());
        assert!(built.driver_pod.affinity.required_matches(&labels));
        // Executors are not pinned.
        assert!(built.executor_pods.iter().all(|e| e.affinity.is_empty()));
        assert_eq!(built.executor_pods.len(), 3);
        // Manifest carries the injection.
        assert!(built
            .manifest_yaml
            .contains("requiredDuringSchedulingIgnoredDuringExecution"));
        assert!(built.manifest_yaml.contains("- node-5"));
        assert!(built.manifest_yaml.contains("kind: SparkApplication"));
    }

    #[test]
    fn unpinned_build_has_no_affinity() {
        let built = JobBuilder.build(&request(), None);
        assert_eq!(built.target_node, None);
        assert!(built.driver_pod.affinity.is_empty());
        assert!(!built.manifest_yaml.contains("requiredDuringScheduling"));
    }

    #[test]
    fn driver_manifest_is_pod_yaml() {
        let yaml = JobBuilder.driver_manifest(&request(), Some("node-2"));
        assert!(yaml.contains("kind: Pod"));
        assert!(yaml.contains("sort-42-driver"));
        assert!(yaml.contains("- node-2"));
    }

    #[test]
    fn spec_matches_request() {
        let built = JobBuilder.build(&request(), Some("node-1"));
        assert_eq!(built.spec.executor_count, 3);
        assert_eq!(built.spec.app_type, "sort");
        assert_eq!(built.spec.input_records, 100_000);
    }
}
