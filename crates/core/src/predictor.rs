//! The supervised completion-time predictor.
//!
//! Wraps a trained `mlcore` model together with the feature schema it was
//! trained on, so callers can go straight from (telemetry snapshot, candidate
//! node, job request) to a predicted completion time in seconds.

use crate::features::{FeatureSchema, FeatureVector};
use crate::request::JobRequest;
use mlcore::{ModelKind, Regressor, TrainedModel};
use serde::{Deserialize, Serialize};
use telemetry::ClusterSnapshot;

/// A trained model plus its feature schema.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompletionTimePredictor {
    schema: FeatureSchema,
    model: TrainedModel,
}

impl CompletionTimePredictor {
    /// Wrap a trained model with the schema its training features used.
    pub fn new(schema: FeatureSchema, model: TrainedModel) -> Self {
        CompletionTimePredictor { schema, model }
    }

    /// The feature schema.
    pub fn schema(&self) -> &FeatureSchema {
        &self.schema
    }

    /// The model family.
    pub fn model_kind(&self) -> ModelKind {
        self.model.kind()
    }

    /// Access the underlying model.
    pub fn model(&self) -> &TrainedModel {
        &self.model
    }

    /// Predict the completion time (seconds) of `job` if its driver were
    /// placed on `candidate_node`. Predictions are clamped to be non-negative.
    pub fn predict(
        &self,
        snapshot: &ClusterSnapshot,
        candidate_node: &str,
        job: &JobRequest,
    ) -> f64 {
        let features = self.schema.construct(snapshot, candidate_node, job);
        self.predict_from_features(&features)
    }

    /// Predict directly from an already constructed feature vector.
    pub fn predict_from_features(&self, features: &FeatureVector) -> f64 {
        self.model.predict_row(features).max(0.0)
    }

    /// Predict for every candidate node, in order.
    pub fn predict_all(
        &self,
        snapshot: &ClusterSnapshot,
        candidates: &[String],
        job: &JobRequest,
    ) -> Vec<f64> {
        candidates
            .iter()
            .map(|node| self.predict(snapshot, node, job))
            .collect()
    }

    /// Serialize (schema + model) to JSON for persistence.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("predictor serialization cannot fail")
    }

    /// Load a predictor previously saved with [`CompletionTimePredictor::to_json`].
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcore::{Dataset, ModelConfig, RandomForestConfig};
    use simcore::rng::Rng;
    use simcore::SimTime;
    use sparksim::WorkloadKind;
    use telemetry::NodeTelemetry;

    fn snapshot_with(load1: f64, load2: f64) -> ClusterSnapshot {
        let mut snap = ClusterSnapshot::at(SimTime::from_secs(10));
        for (name, load) in [("node-1", load1), ("node-2", load2)] {
            snap.insert_node(
                name,
                NodeTelemetry {
                    cpu_load: load,
                    memory_available_bytes: 6e9,
                    tx_rate: 0.0,
                    rx_rate: 0.0,
                },
            );
        }
        snap.insert_rtt("node-1", "node-2", 0.01);
        snap.insert_rtt("node-2", "node-1", 0.01);
        snap
    }

    /// Train a predictor on synthetic data where completion time grows with
    /// the candidate's CPU load — so the fitted model should prefer idle nodes.
    fn trained_predictor(kind: ModelKind) -> CompletionTimePredictor {
        let schema = FeatureSchema::standard();
        let mut data = Dataset::new(schema.names().to_vec());
        let mut rng = Rng::seed_from_u64(7);
        let job = JobRequest::named("sort", WorkloadKind::Sort, 100_000, 2);
        for _ in 0..400 {
            let load = rng.uniform(0.0, 6.0);
            let snap = snapshot_with(load, 0.0);
            let features = schema.construct(&snap, "node-1", &job);
            let duration = 20.0 + 5.0 * load + rng.normal(0.0, 0.2);
            data.push(features, duration).unwrap();
        }
        let config = ModelConfig {
            forest: RandomForestConfig {
                n_trees: 30,
                workers: 2,
                ..Default::default()
            },
            ..Default::default()
        };
        let model = TrainedModel::train(kind, &config, &data, &mut rng);
        CompletionTimePredictor::new(schema, model)
    }

    #[test]
    fn predicts_longer_times_on_loaded_nodes() {
        for kind in [ModelKind::Linear, ModelKind::RandomForest] {
            let predictor = trained_predictor(kind);
            assert_eq!(predictor.model_kind(), kind);
            let job = JobRequest::named("sort", WorkloadKind::Sort, 100_000, 2);
            let snap = snapshot_with(5.0, 0.2);
            let busy = predictor.predict(&snap, "node-1", &job);
            let idle = predictor.predict(&snap, "node-2", &job);
            assert!(busy > idle, "{kind}: busy {busy} should exceed idle {idle}");
            let all = predictor.predict_all(&snap, &["node-1".into(), "node-2".into()], &job);
            assert_eq!(all, vec![busy, idle]);
        }
    }

    #[test]
    fn predictions_are_never_negative() {
        let predictor = trained_predictor(ModelKind::Linear);
        let job = JobRequest::named("sort", WorkloadKind::Sort, 1, 1);
        // An absurd snapshot far outside the training distribution.
        let snap = snapshot_with(-100.0, -100.0);
        assert!(predictor.predict(&snap, "node-1", &job) >= 0.0);
    }

    #[test]
    fn json_roundtrip_preserves_behaviour() {
        let predictor = trained_predictor(ModelKind::RandomForest);
        let json = predictor.to_json();
        let restored = CompletionTimePredictor::from_json(&json).unwrap();
        assert_eq!(restored.model_kind(), ModelKind::RandomForest);
        assert_eq!(restored.schema().len(), predictor.schema().len());
        let job = JobRequest::named("sort", WorkloadKind::Sort, 100_000, 2);
        let snap = snapshot_with(3.0, 1.0);
        assert_eq!(
            predictor.predict(&snap, "node-1", &job),
            restored.predict(&snap, "node-1", &job)
        );
        assert!(CompletionTimePredictor::from_json("{").is_err());
    }

    #[test]
    fn predict_from_features_matches_predict() {
        let predictor = trained_predictor(ModelKind::Linear);
        let job = JobRequest::named("sort", WorkloadKind::Sort, 100_000, 2);
        let snap = snapshot_with(2.0, 0.5);
        let features = predictor.schema().construct(&snap, "node-1", &job);
        assert_eq!(
            predictor.predict(&snap, "node-1", &job),
            predictor.predict_from_features(&features)
        );
        assert!(predictor.model().predict_row(&features).is_finite());
    }
}
