//! The supervised completion-time predictor.
//!
//! Wraps a trained `mlcore` model together with the feature schema it was
//! trained on, so callers can go straight from (telemetry snapshot, candidate
//! node, job request) to a predicted completion time in seconds. The
//! constructor is the feature-width boundary: a schema whose column count
//! does not match the model's fitted feature count is rejected loudly
//! instead of silently predicting from zero-padded or truncated rows.
//!
//! Inference is batch-first: [`CompletionTimePredictor::predict_batch_into`]
//! streams a whole candidate batch (one contiguous [`FeatureMatrix`]) through
//! the model's flat-tree kernels in one call.

use crate::features::{FeatureSchema, FeatureVector};
use crate::request::JobRequest;
use mlcore::{FeatureMatrix, ModelKind, Regressor, TrainedModel};
use serde::{Deserialize, Serialize};
use std::fmt;
use telemetry::ClusterSnapshot;

/// Errors raised when assembling a predictor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PredictorError {
    /// The schema's column count does not match the model's fitted width.
    SchemaMismatch {
        /// Number of columns in the feature schema.
        schema_features: usize,
        /// Number of features the model was fitted on.
        model_features: usize,
    },
}

impl fmt::Display for PredictorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredictorError::SchemaMismatch {
                schema_features,
                model_features,
            } => write!(
                f,
                "feature schema has {schema_features} columns but the model was fitted on \
                 {model_features} features"
            ),
        }
    }
}

impl std::error::Error for PredictorError {}

/// A trained model plus its feature schema.
#[derive(Debug, Clone)]
pub struct CompletionTimePredictor {
    schema: FeatureSchema,
    model: TrainedModel,
    /// The model's split thresholds per schema column (sorted, deduplicated),
    /// cached at construction for [`CompletionTimePredictor::signature_cells`].
    /// Derived state — not serialized, rebuilt on load.
    signature_grid: Vec<Vec<f64>>,
}

/// The serialized form: schema + model only — the signature grid is derived
/// state, rebuilt by [`CompletionTimePredictor::new`] on load. Field names
/// match the predictor's own, so archives saved before the grid existed load
/// unchanged.
#[derive(Serialize, Deserialize)]
struct PredictorArchive {
    schema: FeatureSchema,
    model: TrainedModel,
}

impl Serialize for CompletionTimePredictor {
    fn serialize_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            (
                serde::Value::Str("schema".into()),
                self.schema.serialize_value(),
            ),
            (
                serde::Value::Str("model".into()),
                self.model.serialize_value(),
            ),
        ])
    }
}

impl Deserialize for CompletionTimePredictor {
    fn deserialize_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let archive = PredictorArchive::deserialize_value(v)?;
        CompletionTimePredictor::new(archive.schema, archive.model)
            .map_err(|e| serde::Error::custom(e.to_string()))
    }
}

impl CompletionTimePredictor {
    /// Wrap a trained model with the schema its training features used.
    ///
    /// Fails when the schema width disagrees with the model's fitted feature
    /// count — the boundary check that lets the prediction hot path index
    /// rows directly instead of zero-padding malformed vectors. A model that
    /// was never successfully fitted (it predicts a constant 0) has no fitted
    /// width and pairs with any schema.
    pub fn new(schema: FeatureSchema, model: TrainedModel) -> Result<Self, PredictorError> {
        if let Some(model_features) = model.n_features() {
            if model_features != schema.len() {
                return Err(PredictorError::SchemaMismatch {
                    schema_features: schema.len(),
                    model_features,
                });
            }
        }
        let signature_grid = model.split_grid(schema.len());
        Ok(CompletionTimePredictor {
            schema,
            model,
            signature_grid,
        })
    }

    /// Collapse a feature row to the model's partition-cell coordinates in
    /// place: each value becomes the index of the inter-threshold cell it
    /// falls in on that column (`0` everywhere for a linear model). Rows with
    /// identical cell coordinates take identical paths through every tree and
    /// receive **identical predictions** from tree ensembles — and
    /// ordering-identical scores from linear models, whose job columns only
    /// shift every candidate by the same constant — which is what makes equal
    /// cells safe to share a coarse scoreboard in the two-stage decision
    /// path.
    pub fn signature_cells(&self, row: &mut [f64]) {
        for (value, thresholds) in row.iter_mut().zip(&self.signature_grid) {
            // `x <= t` sends a row left: two values agree on every split of
            // this column iff the same prefix of the sorted thresholds lies
            // strictly below them.
            *value = thresholds.partition_point(|t| *t < *value) as f64;
        }
    }

    /// The feature schema.
    pub fn schema(&self) -> &FeatureSchema {
        &self.schema
    }

    /// The model family.
    pub fn model_kind(&self) -> ModelKind {
        self.model.kind()
    }

    /// Access the underlying model.
    pub fn model(&self) -> &TrainedModel {
        &self.model
    }

    /// Predict the completion time (seconds) of `job` if its driver were
    /// placed on `candidate_node`. Predictions are clamped to be non-negative.
    pub fn predict(
        &self,
        snapshot: &ClusterSnapshot,
        candidate_node: &str,
        job: &JobRequest,
    ) -> f64 {
        let features = self.schema.construct(snapshot, candidate_node, job);
        self.predict_from_features(&features)
    }

    /// Predict directly from an already constructed feature vector.
    pub fn predict_from_features(&self, features: &FeatureVector) -> f64 {
        self.model.predict_row(features).max(0.0)
    }

    /// Batch inference: predict one completion time per row of `features`
    /// into a reused output buffer (cleared and refilled), clamped
    /// non-negative. One call walks the whole candidate batch through the
    /// model's flat trees-outer kernels.
    pub fn predict_batch_into(&self, features: &FeatureMatrix, out: &mut Vec<f64>) {
        self.model.predict_into(features, out);
        for v in out.iter_mut() {
            *v = v.max(0.0);
        }
    }

    /// Predict for every candidate node via one batch inference call,
    /// constructing the candidate × feature matrix into `matrix` (reused
    /// across decisions).
    pub fn predict_batch(
        &self,
        snapshot: &ClusterSnapshot,
        candidates: &[String],
        job: &JobRequest,
        matrix: &mut FeatureMatrix,
        out: &mut Vec<f64>,
    ) {
        self.schema
            .construct_batch_into(matrix, snapshot, candidates, job);
        self.predict_batch_into(matrix, out);
    }

    /// Predict for every candidate node, in order (owning convenience over
    /// [`CompletionTimePredictor::predict_batch`]).
    pub fn predict_all(
        &self,
        snapshot: &ClusterSnapshot,
        candidates: &[String],
        job: &JobRequest,
    ) -> Vec<f64> {
        let mut matrix = FeatureMatrix::new(self.schema.len());
        let mut out = Vec::with_capacity(candidates.len());
        self.predict_batch(snapshot, candidates, job, &mut matrix, &mut out);
        out
    }

    /// Serialize (schema + model) to JSON for persistence.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("predictor serialization cannot fail")
    }

    /// Load a predictor previously saved with [`CompletionTimePredictor::to_json`].
    /// The schema/model width check is re-applied, so a tampered archive
    /// cannot smuggle in a mismatched pair.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureGroup;
    use mlcore::{Dataset, ModelConfig, RandomForestConfig};
    use simcore::rng::Rng;
    use simcore::SimTime;
    use sparksim::WorkloadKind;
    use telemetry::NodeTelemetry;

    fn snapshot_with(load1: f64, load2: f64) -> ClusterSnapshot {
        let mut snap = ClusterSnapshot::at(SimTime::from_secs(10));
        for (name, load) in [("node-1", load1), ("node-2", load2)] {
            snap.insert_node(
                name,
                NodeTelemetry {
                    cpu_load: load,
                    memory_available_bytes: 6e9,
                    tx_rate: 0.0,
                    rx_rate: 0.0,
                },
            );
        }
        snap.insert_rtt("node-1", "node-2", 0.01);
        snap.insert_rtt("node-2", "node-1", 0.01);
        snap
    }

    /// Train a predictor on synthetic data where completion time grows with
    /// the candidate's CPU load — so the fitted model should prefer idle nodes.
    fn trained_predictor(kind: ModelKind) -> CompletionTimePredictor {
        let schema = FeatureSchema::standard();
        let mut data = Dataset::new(schema.names().to_vec());
        let mut rng = Rng::seed_from_u64(7);
        let job = JobRequest::named("sort", WorkloadKind::Sort, 100_000, 2);
        for _ in 0..400 {
            let load = rng.uniform(0.0, 6.0);
            let snap = snapshot_with(load, 0.0);
            let features = schema.construct(&snap, "node-1", &job);
            let duration = 20.0 + 5.0 * load + rng.normal(0.0, 0.2);
            data.push(features, duration).unwrap();
        }
        let config = ModelConfig {
            forest: RandomForestConfig {
                n_trees: 30,
                workers: 2,
                ..Default::default()
            },
            ..Default::default()
        };
        let model = TrainedModel::train(kind, &config, &data, &mut rng);
        CompletionTimePredictor::new(schema, model).expect("schema matches training data")
    }

    #[test]
    fn predicts_longer_times_on_loaded_nodes() {
        for kind in [ModelKind::Linear, ModelKind::RandomForest] {
            let predictor = trained_predictor(kind);
            assert_eq!(predictor.model_kind(), kind);
            let job = JobRequest::named("sort", WorkloadKind::Sort, 100_000, 2);
            let snap = snapshot_with(5.0, 0.2);
            let busy = predictor.predict(&snap, "node-1", &job);
            let idle = predictor.predict(&snap, "node-2", &job);
            assert!(busy > idle, "{kind}: busy {busy} should exceed idle {idle}");
            let all = predictor.predict_all(&snap, &["node-1".into(), "node-2".into()], &job);
            assert_eq!(all, vec![busy, idle]);
        }
    }

    #[test]
    fn mismatched_schema_is_rejected_at_construction() {
        let predictor = trained_predictor(ModelKind::Linear);
        let narrow = FeatureSchema::with_groups(&[FeatureGroup::Node]);
        let err = CompletionTimePredictor::new(narrow.clone(), predictor.model().clone())
            .expect_err("2-column schema cannot drive a 17-feature model");
        assert_eq!(
            err,
            PredictorError::SchemaMismatch {
                schema_features: narrow.len(),
                model_features: FeatureSchema::standard().len(),
            }
        );
        assert!(err.to_string().contains("fitted on"));
        // A tampered archive fails the same check on load.
        let mut sabotaged = CompletionTimePredictor {
            schema: narrow,
            model: predictor.model().clone(),
            signature_grid: Vec::new(),
        };
        let json = sabotaged.to_json();
        assert!(CompletionTimePredictor::from_json(&json).is_err());
        // An unfitted model has no fitted width and pairs with any schema.
        sabotaged.model = TrainedModel::train(
            ModelKind::Linear,
            &ModelConfig::default(),
            &Dataset::new(vec!["x".into()]),
            &mut Rng::seed_from_u64(1),
        );
        assert!(CompletionTimePredictor::new(sabotaged.schema, sabotaged.model).is_ok());
    }

    #[test]
    fn predictions_are_never_negative() {
        let predictor = trained_predictor(ModelKind::Linear);
        let job = JobRequest::named("sort", WorkloadKind::Sort, 1, 1);
        // An absurd snapshot far outside the training distribution.
        let snap = snapshot_with(-100.0, -100.0);
        assert!(predictor.predict(&snap, "node-1", &job) >= 0.0);
        let batch = predictor.predict_all(&snap, &["node-1".into(), "node-2".into()], &job);
        assert!(batch.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn json_roundtrip_preserves_behaviour() {
        let predictor = trained_predictor(ModelKind::RandomForest);
        let json = predictor.to_json();
        let restored = CompletionTimePredictor::from_json(&json).unwrap();
        assert_eq!(restored.model_kind(), ModelKind::RandomForest);
        assert_eq!(restored.schema().len(), predictor.schema().len());
        let job = JobRequest::named("sort", WorkloadKind::Sort, 100_000, 2);
        let snap = snapshot_with(3.0, 1.0);
        assert_eq!(
            predictor.predict(&snap, "node-1", &job),
            restored.predict(&snap, "node-1", &job)
        );
        assert!(CompletionTimePredictor::from_json("{").is_err());
    }

    #[test]
    fn predict_from_features_matches_predict() {
        let predictor = trained_predictor(ModelKind::Linear);
        let job = JobRequest::named("sort", WorkloadKind::Sort, 100_000, 2);
        let snap = snapshot_with(2.0, 0.5);
        let features = predictor.schema().construct(&snap, "node-1", &job);
        assert_eq!(
            predictor.predict(&snap, "node-1", &job),
            predictor.predict_from_features(&features)
        );
        assert!(predictor.model().predict_row(&features).is_finite());
    }

    #[test]
    fn batch_inference_is_bit_identical_to_per_candidate_predictions() {
        for kind in ModelKind::ALL {
            let predictor = trained_predictor(kind);
            let job = JobRequest::named("sort", WorkloadKind::Sort, 100_000, 2);
            let snap = snapshot_with(4.0, 0.5);
            let candidates: Vec<String> = vec!["node-1".into(), "node-2".into(), "node-99".into()];
            let mut matrix = FeatureMatrix::new(predictor.schema().len());
            let mut batch = Vec::new();
            predictor.predict_batch(&snap, &candidates, &job, &mut matrix, &mut batch);
            assert_eq!(batch.len(), 3);
            for (candidate, &b) in candidates.iter().zip(&batch) {
                assert_eq!(b, predictor.predict(&snap, candidate, &job), "{candidate}");
            }
            // Empty candidate set produces an empty batch.
            predictor.predict_batch(&snap, &[], &job, &mut matrix, &mut batch);
            assert!(batch.is_empty());
        }
    }
}
