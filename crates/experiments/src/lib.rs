//! # experiments — reproduction harness for every table and figure
//!
//! This crate drives the full evaluation of Sections 4–6 of the paper on the
//! simulated substrate:
//!
//! * [`fabric`] — the Figure 4 testbed: three FABRIC sites (UCSD, FIU, SRI),
//!   two nodes per site (6 CPUs / 8 GB each), inter-site RTTs of 66/10/72 ms,
//!   and asymmetric WAN capacities.
//! * [`world`] — a self-contained simulated world (cluster + network +
//!   metrics server + background-load pods) that can execute one Spark-like
//!   job for a chosen driver node while background traffic keeps flowing.
//! * [`config`] — the Section 5.2 job matrix: 60 distinct configurations over
//!   the three paper workloads, input sizes, executor counts and memory.
//! * [`workflow`] — the batch experiment workflow: for every configuration ×
//!   repeat it snapshots telemetry, runs the job once per candidate driver
//!   node under identical conditions, and logs the 3600-sample dataset.
//! * [`evaluation`] — Table 4: Top-1 / Top-2 node-selection accuracy of the
//!   Kubernetes default scheduler and the three supervised models, plus
//!   per-cell completion-time speedups over the default.
//! * [`scenarios`] — the scenario matrix: declarative testbeds
//!   ([`scenarios::TestbedSpec`]; the FABRIC slice is one named spec, the
//!   `simnet` topology generators supply the rest) × workload mixes ×
//!   background-load levels × seeds, swept in parallel with one
//!   machine-readable JSON report (`results/scenario_sweep.json`).
//! * [`figures`] — Figures 2 and 3 (per-node latency and transmit bandwidth
//!   across five Sort runs) and the Figure 4 RTT matrix.
//! * [`tables`] — Tables 1, 2 and 3 (feature schema, workload
//!   characterization, representative training row).
//! * [`ablation`] — feature-group, model and background-load ablations.
//! * [`report`] — markdown/CSV rendering helpers shared by the harness
//!   binaries (one binary per table/figure, see `src/bin/`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod config;
pub mod evaluation;
pub mod fabric;
pub mod figures;
pub mod report;
pub mod scale;
pub mod scenarios;
pub mod tables;
pub mod workflow;
pub mod world;

pub use config::{job_matrix, JobConfig};
pub use evaluation::{
    evaluate_cell, evaluate_table4, CellEvaluation, MethodSpeedup, SchedulerAccuracy, Table4Report,
};
pub use fabric::{FabricConfig, FabricTestbed};
pub use scenarios::{
    run_sweep, CellReport, LoadLevel, ScenarioMatrix, ScenarioSpec, SweepOptions, SweepReport,
    TestbedSpec,
};
pub use workflow::{ExperimentConfig, ExperimentDataset, ScenarioRecord, Workflow};
pub use world::{SimWorld, Testbed};
