//! Table 4: Top-1 / Top-2 node-selection accuracy.
//!
//! For every held-out scenario, each scheduling method ranks the candidate
//! nodes. The method scores a Top-1 hit when its first choice is the node that
//! actually ran the job fastest, and a Top-2 hit when the fastest node appears
//! among its first two choices. The paper reports (Table 4):
//!
//! | Method | Top-1 | Top-2 |
//! |---|---|---|
//! | Kubernetes Default | 0.160 | 0.260 |
//! | Linear Regression  | 0.500 | 0.600 |
//! | XGBoost            | 0.560 | 0.720 |
//! | Random Forest      | 0.700 | 0.880 |
//!
//! The reproduction is judged on the *shape*: every supervised model beats the
//! default scheduler by a wide margin, tree ensembles beat linear regression,
//! and Top-2 dominates Top-1.

use crate::fabric::FabricTestbed;
use crate::workflow::{ExperimentDataset, ScenarioRecord};
use mlcore::metrics::top_k_contains_best;
use mlcore::{evaluate_on, ModelConfig, ModelKind, RegressionMetrics, TrainedModel};
use netsched_core::context::SchedulingContext;
use netsched_core::predictor::CompletionTimePredictor;
use netsched_core::schedulers::{JobScheduler, KubeDefaultScheduler, SupervisedScheduler};
use serde::{Deserialize, Serialize};
use simcore::rng::Rng;

/// Accuracy of one scheduling method.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulerAccuracy {
    /// Method name (matching the paper's Table 4 rows).
    pub method: String,
    /// Fraction of held-out scenarios where the first choice was the fastest node.
    pub top1: f64,
    /// Fraction where the fastest node was within the first two choices.
    pub top2: f64,
    /// Number of evaluated scenarios.
    pub evaluated: usize,
}

/// Regression quality of one trained model on held-out samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelFit {
    /// Model family.
    pub kind: ModelKind,
    /// Held-out regression metrics.
    pub metrics: RegressionMetrics,
}

/// The full Table 4 report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table4Report {
    /// One row per method (default scheduler + the three supervised models).
    pub rows: Vec<SchedulerAccuracy>,
    /// Held-out regression quality per model (supporting detail).
    pub model_fits: Vec<ModelFit>,
    /// Number of training scenarios.
    pub train_scenarios: usize,
    /// Number of held-out scenarios.
    pub test_scenarios: usize,
    /// Number of training samples (rows) used for model fitting.
    pub train_samples: usize,
}

impl Table4Report {
    /// Look up a row by method name.
    pub fn row(&self, method: &str) -> Option<&SchedulerAccuracy> {
        self.rows.iter().find(|r| r.method == method)
    }

    /// Render the report as a markdown table in the paper's format.
    pub fn to_markdown(&self) -> String {
        let mut out = String::from("| Method | Top-1 | Top-2 |\n|---|---|---|\n");
        for row in &self.rows {
            out.push_str(&format!(
                "| {} | {:.3} | {:.3} |\n",
                row.method, row.top1, row.top2
            ));
        }
        out
    }
}

/// Count Top-1/Top-2 hits of a ranking-producing closure over scenarios.
fn accuracy_over<F>(name: &str, scenarios: &[&ScenarioRecord], mut rank: F) -> SchedulerAccuracy
where
    F: FnMut(&ScenarioRecord) -> Vec<String>,
{
    let mut top1 = 0usize;
    let mut top2 = 0usize;
    let mut evaluated = 0usize;
    for scenario in scenarios {
        let ranking = rank(scenario);
        if ranking.is_empty() || scenario.outcomes.is_empty() {
            continue;
        }
        evaluated += 1;
        let fastest = scenario.fastest_node();
        if ranking.first().map(String::as_str) == Some(fastest) {
            top1 += 1;
        }
        if ranking.iter().take(2).any(|n| n == fastest) {
            top2 += 1;
        }
    }
    let denom = evaluated.max(1) as f64;
    SchedulerAccuracy {
        method: name.to_string(),
        top1: top1 as f64 / denom,
        top2: top2 as f64 / denom,
        evaluated,
    }
}

/// Evaluate the default scheduler and the three supervised models on a
/// dataset, holding out `test_fraction` of the scenarios.
pub fn evaluate_table4(
    dataset: &ExperimentDataset,
    test_fraction: f64,
    model_config: &ModelConfig,
    seed: u64,
) -> Table4Report {
    let mut rng = Rng::seed_from_u64(seed);
    let (train_idx, test_idx) = dataset.split_scenarios(test_fraction, &mut rng);
    let train_logger = dataset.logger_for(&train_idx);
    let train_data = train_logger.to_dataset();
    let test_logger = dataset.logger_for(&test_idx);
    let test_data = test_logger.to_dataset();
    let test_scenarios: Vec<&ScenarioRecord> =
        test_idx.iter().map(|&i| &dataset.scenarios[i]).collect();

    // An empty cluster (no jobs bound) for the default-scheduler baseline —
    // exactly what kube-scheduler sees at decision time in the paper's runs.
    let baseline_cluster = FabricTestbed::paper().cluster;

    let mut rows = Vec::with_capacity(4);
    let mut model_fits = Vec::with_capacity(3);

    // --- Kubernetes default scheduler baseline. ---
    let mut kube = KubeDefaultScheduler::new(seed ^ 0xAB);
    rows.push(accuracy_over(
        "Kubernetes Default",
        &test_scenarios,
        |scenario| {
            let mut ctx = SchedulingContext::new(&scenario.snapshot, &baseline_cluster);
            let ranking = kube.select(&scenario.request(), &mut ctx);
            ranking
                .names(&baseline_cluster)
                .into_iter()
                .map(str::to_string)
                .collect()
        },
    ));

    // --- Supervised models. ---
    for kind in ModelKind::ALL {
        let model = TrainedModel::train(kind, model_config, &train_data, &mut rng);
        let fit = if test_data.is_empty() {
            evaluate_on(&model, &train_data)
        } else {
            evaluate_on(&model, &test_data)
        };
        model_fits.push(ModelFit { kind, metrics: fit });
        let predictor = CompletionTimePredictor::new(dataset.schema.clone(), model);
        let scheduler = SupervisedScheduler::new(predictor);
        rows.push(accuracy_over(
            kind.display_name(),
            &test_scenarios,
            |scenario| {
                // Rank over the scenario's own candidate set (the nodes that
                // actually ran the job) using its snapshot.
                let candidates = scenario.candidate_nodes();
                let predictions = scheduler.predictor().predict_all(
                    &scenario.snapshot,
                    &candidates,
                    &scenario.request(),
                );
                let mut ids: Vec<cluster::NodeId> = Vec::with_capacity(candidates.len());
                let mut aligned: Vec<f64> = Vec::with_capacity(candidates.len());
                for (name, &p) in candidates.iter().zip(&predictions) {
                    if let Some(id) = baseline_cluster.node_id(name) {
                        ids.push(id);
                        aligned.push(p);
                    }
                }
                let ranking = netsched_core::decision::DecisionModule.rank(&ids, &aligned);
                ranking
                    .names(&baseline_cluster)
                    .into_iter()
                    .map(str::to_string)
                    .collect()
            },
        ));
    }

    Table4Report {
        rows,
        model_fits,
        train_scenarios: train_idx.len(),
        test_scenarios: test_idx.len(),
        train_samples: train_data.len(),
    }
}

/// Convenience: per-scenario predicted-vs-actual top-k hit for an arbitrary
/// prediction vector (used by ablations).
pub fn ranking_hits(predictions: &[f64], actuals: &[f64]) -> (bool, bool) {
    (
        top_k_contains_best(predictions, actuals, 1),
        top_k_contains_best(predictions, actuals, 2),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::{ExperimentConfig, Workflow};
    use mlcore::{GradientBoostingConfig, RandomForestConfig};

    fn fast_model_config() -> ModelConfig {
        ModelConfig {
            forest: RandomForestConfig {
                n_trees: 30,
                workers: 2,
                ..Default::default()
            },
            gbdt: GradientBoostingConfig {
                n_rounds: 80,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    /// A moderately sized dataset shared by the evaluation tests.
    fn dataset() -> ExperimentDataset {
        let config = ExperimentConfig {
            workers: simcore::parallel::default_workers(),
            ..ExperimentConfig::quick(3, 4, 11)
        };
        Workflow::new(config).run()
    }

    #[test]
    fn table4_has_four_rows_and_reasonable_shape() {
        let data = dataset();
        let report = evaluate_table4(&data, 0.3, &fast_model_config(), 5);
        assert_eq!(report.rows.len(), 4);
        assert_eq!(report.model_fits.len(), 3);
        assert!(report.train_scenarios > 0 && report.test_scenarios > 0);
        assert_eq!(report.train_samples, report.train_scenarios * 6);
        for row in &report.rows {
            assert!(row.top1 >= 0.0 && row.top1 <= 1.0);
            assert!(
                row.top2 >= row.top1 - 1e-9,
                "{}: top2 must dominate top1",
                row.method
            );
            assert_eq!(row.evaluated, report.test_scenarios);
        }
        // The default scheduler is blind to telemetry: near-uniform accuracy.
        let default = report.row("Kubernetes Default").unwrap();
        assert!(default.top1 < 0.5, "default top1 {}", default.top1);
        // The best supervised model beats the default scheduler on Top-1.
        let best_supervised = report
            .rows
            .iter()
            .filter(|r| r.method != "Kubernetes Default")
            .map(|r| r.top1)
            .fold(0.0, f64::max);
        assert!(
            best_supervised > default.top1,
            "supervised {best_supervised} vs default {}",
            default.top1
        );
        // Markdown rendering includes every method.
        let md = report.to_markdown();
        for row in &report.rows {
            assert!(md.contains(&row.method));
        }
    }

    #[test]
    fn model_fits_are_informative() {
        let data = dataset();
        let report = evaluate_table4(&data, 0.25, &fast_model_config(), 7);
        for fit in &report.model_fits {
            assert!(fit.metrics.count > 0);
            assert!(fit.metrics.rmse.is_finite());
        }
        // At least one model should explain a good part of the variance.
        let best_r2 = report
            .model_fits
            .iter()
            .map(|f| f.metrics.r2)
            .fold(f64::MIN, f64::max);
        assert!(best_r2 > 0.3, "best r2 {best_r2}");
    }

    #[test]
    fn ranking_hits_helper() {
        assert_eq!(
            ranking_hits(&[1.0, 2.0, 3.0], &[5.0, 1.0, 9.0]),
            (false, true)
        );
        assert_eq!(ranking_hits(&[2.0, 1.0], &[9.0, 1.0]), (true, true));
    }

    #[test]
    fn row_lookup() {
        let report = Table4Report {
            rows: vec![SchedulerAccuracy {
                method: "X".into(),
                top1: 0.5,
                top2: 0.7,
                evaluated: 10,
            }],
            model_fits: vec![],
            train_scenarios: 1,
            test_scenarios: 1,
            train_samples: 6,
        };
        assert!(report.row("X").is_some());
        assert!(report.row("Y").is_none());
    }
}
