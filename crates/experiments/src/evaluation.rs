//! Table 4: Top-1 / Top-2 node-selection accuracy (plus per-cell speedups).
//!
//! For every held-out scenario, each scheduling method ranks the candidate
//! nodes. The method scores a Top-1 hit when its first choice is the node that
//! actually ran the job fastest, and a Top-2 hit when the fastest node appears
//! among its first two choices. The paper reports (Table 4):
//!
//! | Method | Top-1 | Top-2 |
//! |---|---|---|
//! | Kubernetes Default | 0.160 | 0.260 |
//! | Linear Regression  | 0.500 | 0.600 |
//! | XGBoost            | 0.560 | 0.720 |
//! | Random Forest      | 0.700 | 0.880 |
//!
//! The reproduction is judged on the *shape*: every supervised model beats the
//! default scheduler by a wide margin, tree ensembles beat linear regression,
//! and Top-2 dominates Top-1.
//!
//! [`evaluate_cell`] additionally reports each method's **completion-time
//! speedup over the Kubernetes default**: for every held-out scenario it looks
//! up the measured completion time of the node each method would have picked
//! and divides the default's pick by the method's pick. The scenario-matrix
//! sweep runs this whole pipeline once per cell.

use crate::workflow::{ExperimentDataset, ScenarioRecord};
use mlcore::metrics::top_k_contains_best;
use mlcore::{evaluate_on, ModelConfig, ModelKind, RegressionMetrics, TrainedModel};
use netsched_core::context::SchedulingContext;
use netsched_core::predictor::CompletionTimePredictor;
use netsched_core::schedulers::{JobScheduler, KubeDefaultScheduler};
use serde::{Deserialize, Serialize};
use simcore::rng::Rng;

/// The baseline method's display name (the paper's Table 4 first row).
pub const KUBE_DEFAULT_METHOD: &str = "Kubernetes Default";

/// Accuracy of one scheduling method.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulerAccuracy {
    /// Method name (matching the paper's Table 4 rows).
    pub method: String,
    /// Fraction of held-out scenarios where the first choice was the fastest node.
    pub top1: f64,
    /// Fraction where the fastest node was within the first two choices.
    pub top2: f64,
    /// Number of evaluated scenarios.
    pub evaluated: usize,
}

/// Completion-time speedup of one method over the Kubernetes default: for
/// every held-out scenario, the default's picked-node completion time divided
/// by this method's picked-node completion time (> 1 means faster jobs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodSpeedup {
    /// Method name.
    pub method: String,
    /// Geometric mean of the per-scenario speedups.
    pub geomean_speedup: f64,
    /// Arithmetic mean of the per-scenario speedups.
    pub mean_speedup: f64,
    /// Number of scenarios the speedup was measured on.
    pub evaluated: usize,
}

/// Regression quality of one trained model on held-out samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelFit {
    /// Model family.
    pub kind: ModelKind,
    /// Held-out regression metrics.
    pub metrics: RegressionMetrics,
}

/// The full Table 4 report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table4Report {
    /// One row per method (default scheduler + the three supervised models).
    pub rows: Vec<SchedulerAccuracy>,
    /// Held-out regression quality per model (supporting detail).
    pub model_fits: Vec<ModelFit>,
    /// Number of training scenarios.
    pub train_scenarios: usize,
    /// Number of held-out scenarios.
    pub test_scenarios: usize,
    /// Number of training samples (rows) used for model fitting.
    pub train_samples: usize,
}

impl Table4Report {
    /// Look up a row by method name.
    pub fn row(&self, method: &str) -> Option<&SchedulerAccuracy> {
        self.rows.iter().find(|r| r.method == method)
    }

    /// Render the report as a markdown table in the paper's format.
    pub fn to_markdown(&self) -> String {
        let mut out = String::from("| Method | Top-1 | Top-2 |\n|---|---|---|\n");
        for row in &self.rows {
            out.push_str(&format!(
                "| {} | {:.3} | {:.3} |\n",
                row.method, row.top1, row.top2
            ));
        }
        out
    }
}

/// One cell's worth of evaluation: the Table 4 accuracy report plus each
/// method's completion-time speedup over the default scheduler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellEvaluation {
    /// Top-1/Top-2 accuracy and model fits.
    pub table4: Table4Report,
    /// Per-method speedup over the Kubernetes default.
    pub speedups: Vec<MethodSpeedup>,
}

/// One method's node rankings over the held-out scenarios (first = predicted
/// fastest), aligned with the test-scenario list.
struct MethodRankings {
    method: String,
    rankings: Vec<Vec<String>>,
}

/// Count Top-1/Top-2 hits of precomputed rankings over scenarios.
///
/// Tie-aware, consistent with [`mlcore::metrics::top_k_contains_best`]: a
/// ranked node scores a hit when its *recorded completion time* equals the
/// scenario minimum, so when two nodes are actually equally fastest a method
/// that picks either one is credited — not only the one that happens to
/// appear first in the outcome list.
fn accuracy_from(method: &MethodRankings, scenarios: &[&ScenarioRecord]) -> SchedulerAccuracy {
    let mut top1 = 0usize;
    let mut top2 = 0usize;
    let mut evaluated = 0usize;
    for (scenario, ranking) in scenarios.iter().zip(&method.rankings) {
        if ranking.is_empty() || scenario.outcomes.is_empty() {
            continue;
        }
        evaluated += 1;
        let best = scenario
            .outcomes
            .iter()
            .map(|o| o.completion_seconds)
            .fold(f64::INFINITY, f64::min);
        let is_fastest = |name: &String| {
            scenario
                .outcomes
                .iter()
                .any(|o| &o.node == name && o.completion_seconds == best)
        };
        if ranking.first().map(is_fastest) == Some(true) {
            top1 += 1;
        }
        if ranking.iter().take(2).any(is_fastest) {
            top2 += 1;
        }
    }
    let denom = evaluated.max(1) as f64;
    SchedulerAccuracy {
        method: method.method.clone(),
        top1: top1 as f64 / denom,
        top2: top2 as f64 / denom,
        evaluated,
    }
}

/// Measured completion time of the node a ranking would pick for `scenario`.
fn picked_completion(scenario: &ScenarioRecord, ranking: &[String]) -> Option<f64> {
    let choice = ranking.first()?;
    scenario
        .outcomes
        .iter()
        .find(|o| &o.node == choice)
        .map(|o| o.completion_seconds)
}

/// Per-method speedup over the default scheduler's picks.
fn speedups_from(methods: &[MethodRankings], scenarios: &[&ScenarioRecord]) -> Vec<MethodSpeedup> {
    let default = methods
        .iter()
        .find(|m| m.method == KUBE_DEFAULT_METHOD)
        .expect("the default scheduler is always evaluated");
    methods
        .iter()
        .map(|method| {
            let mut log_sum = 0.0;
            let mut sum = 0.0;
            let mut evaluated = 0usize;
            for (i, scenario) in scenarios.iter().enumerate() {
                let (Some(t_default), Some(t_method)) = (
                    picked_completion(scenario, &default.rankings[i]),
                    picked_completion(scenario, &method.rankings[i]),
                ) else {
                    continue;
                };
                if t_default <= 0.0 || t_method <= 0.0 {
                    continue;
                }
                let speedup = t_default / t_method;
                log_sum += speedup.ln();
                sum += speedup;
                evaluated += 1;
            }
            let denom = evaluated.max(1) as f64;
            MethodSpeedup {
                method: method.method.clone(),
                geomean_speedup: if evaluated == 0 {
                    1.0
                } else {
                    (log_sum / denom).exp()
                },
                mean_speedup: if evaluated == 0 { 1.0 } else { sum / denom },
                evaluated,
            }
        })
        .collect()
}

/// Run the full per-cell evaluation pipeline: split scenarios, train the
/// three supervised models, rank every held-out scenario with every method,
/// and score Top-1/Top-2 accuracy plus speedup over the default scheduler.
pub fn evaluate_cell(
    dataset: &ExperimentDataset,
    test_fraction: f64,
    model_config: &ModelConfig,
    seed: u64,
) -> CellEvaluation {
    let mut rng = Rng::seed_from_u64(seed);
    let (train_idx, test_idx) = dataset.split_scenarios(test_fraction, &mut rng);
    let train_data = dataset.logger_for(&train_idx).to_dataset();
    let test_data = dataset.logger_for(&test_idx).to_dataset();
    let test_scenarios: Vec<&ScenarioRecord> =
        test_idx.iter().map(|&i| &dataset.scenarios[i]).collect();

    // An empty cluster (no jobs bound) over the dataset's own substrate for
    // the default-scheduler baseline — exactly what kube-scheduler sees at
    // decision time in the paper's runs.
    let baseline_cluster = dataset.testbed.build().cluster;

    let mut methods: Vec<MethodRankings> = Vec::with_capacity(4);
    let mut model_fits = Vec::with_capacity(3);

    // --- Kubernetes default scheduler baseline. ---
    let mut kube = KubeDefaultScheduler::new(seed ^ 0xAB);
    methods.push(MethodRankings {
        method: KUBE_DEFAULT_METHOD.to_string(),
        rankings: test_scenarios
            .iter()
            .map(|scenario| {
                let mut ctx = SchedulingContext::new(&scenario.snapshot, &baseline_cluster);
                let ranking = kube.select(&scenario.request(), &mut ctx);
                ranking
                    .names(&baseline_cluster)
                    .into_iter()
                    .map(str::to_string)
                    .collect()
            })
            .collect(),
    });

    // --- Supervised models. ---
    // Per-scenario inference runs through the batch path: one candidate ×
    // feature matrix (reused across scenarios) and one model walk per
    // decision instead of one per candidate.
    let mut matrix = mlcore::FeatureMatrix::new(dataset.schema.len());
    let mut predictions: Vec<f64> = Vec::new();
    for kind in ModelKind::ALL {
        let model = TrainedModel::train(kind, model_config, &train_data, &mut rng);
        let fit = if test_data.is_empty() {
            evaluate_on(&model, &train_data)
        } else {
            evaluate_on(&model, &test_data)
        };
        model_fits.push(ModelFit { kind, metrics: fit });
        let predictor = CompletionTimePredictor::new(dataset.schema.clone(), model)
            .expect("experiment datasets are built from their own schema");
        methods.push(MethodRankings {
            method: kind.display_name().to_string(),
            rankings: test_scenarios
                .iter()
                .map(|scenario| {
                    // Rank over the scenario's own candidate set (the nodes
                    // that actually ran the job) using its snapshot.
                    let candidates = scenario.candidate_nodes();
                    predictor.predict_batch(
                        &scenario.snapshot,
                        &candidates,
                        &scenario.request(),
                        &mut matrix,
                        &mut predictions,
                    );
                    let mut ids: Vec<cluster::ClusterNodeId> = Vec::with_capacity(candidates.len());
                    let mut aligned: Vec<f64> = Vec::with_capacity(candidates.len());
                    for (name, &p) in candidates.iter().zip(&predictions) {
                        if let Some(id) = baseline_cluster.node_id(name) {
                            ids.push(id);
                            aligned.push(p);
                        }
                    }
                    let ranking = netsched_core::decision::DecisionModule.rank(&ids, &aligned);
                    ranking
                        .names(&baseline_cluster)
                        .into_iter()
                        .map(str::to_string)
                        .collect()
                })
                .collect(),
        });
    }

    let rows = methods
        .iter()
        .map(|m| accuracy_from(m, &test_scenarios))
        .collect();
    let speedups = speedups_from(&methods, &test_scenarios);

    CellEvaluation {
        table4: Table4Report {
            rows,
            model_fits,
            train_scenarios: train_idx.len(),
            test_scenarios: test_idx.len(),
            train_samples: train_data.len(),
        },
        speedups,
    }
}

/// Evaluate the default scheduler and the three supervised models on a
/// dataset, holding out `test_fraction` of the scenarios (the Table 4 view of
/// [`evaluate_cell`]).
pub fn evaluate_table4(
    dataset: &ExperimentDataset,
    test_fraction: f64,
    model_config: &ModelConfig,
    seed: u64,
) -> Table4Report {
    evaluate_cell(dataset, test_fraction, model_config, seed).table4
}

/// Convenience: per-scenario predicted-vs-actual top-k hit for an arbitrary
/// prediction vector (used by ablations).
pub fn ranking_hits(predictions: &[f64], actuals: &[f64]) -> (bool, bool) {
    (
        top_k_contains_best(predictions, actuals, 1),
        top_k_contains_best(predictions, actuals, 2),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::{ExperimentConfig, Workflow};
    use mlcore::{GradientBoostingConfig, RandomForestConfig};

    fn fast_model_config() -> ModelConfig {
        ModelConfig {
            forest: RandomForestConfig {
                n_trees: 30,
                workers: 2,
                ..Default::default()
            },
            gbdt: GradientBoostingConfig {
                n_rounds: 80,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    /// A moderately sized dataset shared by the evaluation tests.
    fn dataset() -> ExperimentDataset {
        let config = ExperimentConfig {
            workers: simcore::parallel::default_workers(),
            ..ExperimentConfig::quick(3, 4, 11)
        };
        Workflow::new(config).run()
    }

    #[test]
    fn table4_has_four_rows_and_reasonable_shape() {
        let data = dataset();
        let report = evaluate_table4(&data, 0.3, &fast_model_config(), 5);
        assert_eq!(report.rows.len(), 4);
        assert_eq!(report.model_fits.len(), 3);
        assert!(report.train_scenarios > 0 && report.test_scenarios > 0);
        assert_eq!(report.train_samples, report.train_scenarios * 6);
        for row in &report.rows {
            assert!(row.top1 >= 0.0 && row.top1 <= 1.0);
            assert!(
                row.top2 >= row.top1 - 1e-9,
                "{}: top2 must dominate top1",
                row.method
            );
            assert_eq!(row.evaluated, report.test_scenarios);
        }
        // The default scheduler is blind to telemetry: near-uniform accuracy.
        let default = report.row(KUBE_DEFAULT_METHOD).unwrap();
        assert!(default.top1 < 0.5, "default top1 {}", default.top1);
        // The best supervised model beats the default scheduler on Top-1.
        let best_supervised = report
            .rows
            .iter()
            .filter(|r| r.method != KUBE_DEFAULT_METHOD)
            .map(|r| r.top1)
            .fold(0.0, f64::max);
        assert!(
            best_supervised > default.top1,
            "supervised {best_supervised} vs default {}",
            default.top1
        );
        // Markdown rendering includes every method.
        let md = report.to_markdown();
        for row in &report.rows {
            assert!(md.contains(&row.method));
        }
    }

    #[test]
    fn cell_evaluation_reports_speedups_over_default() {
        let data = dataset();
        let evaluation = evaluate_cell(&data, 0.3, &fast_model_config(), 5);
        assert_eq!(evaluation.speedups.len(), 4);
        let default = evaluation
            .speedups
            .iter()
            .find(|s| s.method == KUBE_DEFAULT_METHOD)
            .unwrap();
        // The default's speedup over itself is identically 1.
        assert!((default.geomean_speedup - 1.0).abs() < 1e-12);
        assert!((default.mean_speedup - 1.0).abs() < 1e-12);
        assert_eq!(default.evaluated, evaluation.table4.test_scenarios);
        for speedup in &evaluation.speedups {
            assert!(speedup.geomean_speedup > 0.0);
            assert!(speedup.mean_speedup > 0.0);
            assert_eq!(speedup.evaluated, evaluation.table4.test_scenarios);
        }
        // The best supervised model's picks are at least as fast as the
        // default's on geometric mean.
        let best = evaluation
            .speedups
            .iter()
            .filter(|s| s.method != KUBE_DEFAULT_METHOD)
            .map(|s| s.geomean_speedup)
            .fold(0.0, f64::max);
        assert!(best >= 1.0, "best supervised speedup {best}");
        // And the accuracy side of the same evaluation matches evaluate_table4.
        let table4 = evaluate_table4(&data, 0.3, &fast_model_config(), 5);
        assert_eq!(table4, evaluation.table4);
    }

    #[test]
    fn model_fits_are_informative() {
        let data = dataset();
        let report = evaluate_table4(&data, 0.25, &fast_model_config(), 7);
        for fit in &report.model_fits {
            assert!(fit.metrics.count > 0);
            assert!(fit.metrics.rmse.is_finite());
        }
        // At least one model should explain a good part of the variance.
        let best_r2 = report
            .model_fits
            .iter()
            .map(|f| f.metrics.r2)
            .fold(f64::MIN, f64::max);
        assert!(best_r2 > 0.3, "best r2 {best_r2}");
    }

    #[test]
    fn accuracy_counts_any_tied_fastest_node_as_a_hit() {
        use crate::config::JobConfig;
        use crate::workflow::NodeOutcome;
        use sparksim::WorkloadKind;

        let outcome = |node: &str, completion_seconds: f64| NodeOutcome {
            node: node.to_string(),
            completion_seconds,
            executor_nodes: vec![],
            spill_count: 0,
        };
        // node-a and node-b are actually equally fastest; node-c is slower.
        let scenario = ScenarioRecord {
            scenario_id: 0,
            config: JobConfig {
                id: 0,
                kind: WorkloadKind::Sort,
                input_records: 1000,
                executor_count: 2,
                executor_memory_bytes: 1 << 30,
                shuffle_partitions: 4,
                arrival_offset_seconds: 0.0,
            },
            repeat: 0,
            background_hosts: vec![],
            snapshot: telemetry::ClusterSnapshot::default(),
            outcomes: vec![
                outcome("node-a", 10.0),
                outcome("node-b", 10.0),
                outcome("node-c", 20.0),
            ],
        };
        let scenarios = vec![&scenario];
        let rank = |names: &[&str]| MethodRankings {
            method: "M".into(),
            rankings: vec![names.iter().map(|n| n.to_string()).collect()],
        };

        // fastest_node() returns the first minimum (node-a), but a method
        // picking the tied node-b first must score a Top-1 hit too —
        // consistent with mlcore::metrics::top_k_contains_best.
        assert_eq!(scenario.fastest_node(), "node-a");
        let picks_b = accuracy_from(&rank(&["node-b", "node-c", "node-a"]), &scenarios);
        assert_eq!((picks_b.top1, picks_b.top2), (1.0, 1.0));
        let picks_a = accuracy_from(&rank(&["node-a", "node-b", "node-c"]), &scenarios);
        assert_eq!((picks_a.top1, picks_a.top2), (1.0, 1.0));
        // A slow first pick with a tied-fastest second pick is a Top-2 hit.
        let second = accuracy_from(&rank(&["node-c", "node-b", "node-a"]), &scenarios);
        assert_eq!((second.top1, second.top2), (0.0, 1.0));
        // Missing both tied nodes in the top 2 is a miss.
        let miss = accuracy_from(&rank(&["node-c", "node-c"]), &scenarios);
        assert_eq!((miss.top1, miss.top2), (0.0, 0.0));
        // The ranking-vs-outcome agreement matches the Top-k primitive: rank
        // predictions aligned with (a, b, c) actuals.
        assert_eq!(
            ranking_hits(&[2.0, 1.0, 3.0], &[10.0, 10.0, 20.0]),
            (true, true)
        );
    }

    #[test]
    fn ranking_hits_helper() {
        assert_eq!(
            ranking_hits(&[1.0, 2.0, 3.0], &[5.0, 1.0, 9.0]),
            (false, true)
        );
        assert_eq!(ranking_hits(&[2.0, 1.0], &[9.0, 1.0]), (true, true));
    }

    #[test]
    fn row_lookup() {
        let report = Table4Report {
            rows: vec![SchedulerAccuracy {
                method: "X".into(),
                top1: 0.5,
                top2: 0.7,
                evaluated: 10,
            }],
            model_fits: vec![],
            train_scenarios: 1,
            test_scenarios: 1,
            train_samples: 6,
        };
        assert!(report.row("X").is_some());
        assert!(report.row("Y").is_none());
    }
}
