//! Figures 2, 3 and 4.
//!
//! * **Figure 2** — average latency (ms) per node across five runs of Sort.
//! * **Figure 3** — average transmit bandwidth (MB/s) per node across the same
//!   five Sort runs.
//! * **Figure 4** — the geographical cluster layout with inter-site RTTs.
//!
//! The per-node latency is the mean RTT from the node to its peers as seen by
//! the ping mesh immediately after each run; the transmit bandwidth is the
//! node's interface-counter delta over the run divided by the run duration —
//! the same quantities the paper derives from Prometheus.

use crate::fabric::{FabricConfig, FabricTestbed};
use crate::world::SimWorld;
use netsched_core::request::JobRequest;
use serde::{Deserialize, Serialize};
use simcore::{OnlineStats, SimDuration};
use simnet::BackgroundLoadConfig;
use sparksim::WorkloadKind;

/// Per-node series for Figures 2 and 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSeries {
    /// Node name (`node-1` ... `node-6`).
    pub node: String,
    /// Mean latency to peers in milliseconds, averaged over runs (Figure 2).
    pub avg_latency_ms: f64,
    /// Mean transmit bandwidth in MB/s, averaged over runs (Figure 3).
    pub avg_tx_bandwidth_mbps: f64,
    /// Mean receive bandwidth in MB/s (extra detail, not in the paper figure).
    pub avg_rx_bandwidth_mbps: f64,
}

/// The data behind Figures 2 and 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SortTelemetryFigures {
    /// One series entry per node.
    pub per_node: Vec<NodeSeries>,
    /// Number of Sort runs aggregated (paper: 5).
    pub runs: usize,
    /// Completion time of each run, seconds.
    pub run_completions: Vec<f64>,
}

impl SortTelemetryFigures {
    /// Figure 2 series: `(node, latency_ms)` pairs.
    pub fn figure2_latency(&self) -> Vec<(String, f64)> {
        self.per_node
            .iter()
            .map(|n| (n.node.clone(), n.avg_latency_ms))
            .collect()
    }

    /// Figure 3 series: `(node, MB/s)` pairs.
    pub fn figure3_tx_bandwidth(&self) -> Vec<(String, f64)> {
        self.per_node
            .iter()
            .map(|n| (n.node.clone(), n.avg_tx_bandwidth_mbps))
            .collect()
    }

    /// Markdown rendering of both figures' data.
    pub fn to_markdown(&self) -> String {
        let mut out = String::from(
            "| Node | Avg latency (ms) | Avg Tx bandwidth (MB/s) | Avg Rx bandwidth (MB/s) |\n|---|---|---|---|\n",
        );
        for n in &self.per_node {
            out.push_str(&format!(
                "| {} | {:.2} | {:.2} | {:.2} |\n",
                n.node, n.avg_latency_ms, n.avg_tx_bandwidth_mbps, n.avg_rx_bandwidth_mbps
            ));
        }
        out
    }
}

/// Run `runs` Sort executions (with background contention) and aggregate the
/// per-node telemetry of Figures 2 and 3.
pub fn sort_telemetry_figures(runs: usize, input_records: u64, seed: u64) -> SortTelemetryFigures {
    let mut world = SimWorld::new(FabricTestbed::paper(), seed);
    world.place_background_load(2, &BackgroundLoadConfig::default());
    world.advance_by(SimDuration::from_secs(10));

    let node_names = world.cluster.node_names();
    let mut latency: Vec<OnlineStats> = node_names.iter().map(|_| OnlineStats::new()).collect();
    let mut tx: Vec<OnlineStats> = node_names.iter().map(|_| OnlineStats::new()).collect();
    let mut rx: Vec<OnlineStats> = node_names.iter().map(|_| OnlineStats::new()).collect();
    let mut run_completions = Vec::with_capacity(runs);

    for run in 0..runs.max(1) {
        // Rotate the driver across nodes as the batch workflow does.
        let driver = &node_names[run % node_names.len()];
        let request = JobRequest::named(
            format!("sort-fig-{run}"),
            WorkloadKind::Sort,
            input_records,
            2,
        );
        // Interface counters before the run.
        let before: Vec<simnet::InterfaceCounters> = world
            .cluster
            .nodes()
            .iter()
            .map(|n| world.network.counters(n.net_id))
            .collect();
        let Some(outcome) = world.run_job(&request, driver) else {
            continue;
        };
        let duration = outcome.result.completion_seconds().max(1e-6);
        run_completions.push(duration);
        // Post-run telemetry.
        let snapshot = world.snapshot();
        for (i, name) in node_names.iter().enumerate() {
            let (mean_rtt, _, _) = snapshot.rtt_stats_from(name);
            latency[i].push(mean_rtt * 1000.0);
            let counters = world
                .network
                .counters(world.cluster.node(name).expect("node exists").net_id);
            tx[i].push((counters.tx_bytes - before[i].tx_bytes) / duration / 1e6);
            rx[i].push((counters.rx_bytes - before[i].rx_bytes) / duration / 1e6);
        }
        // A short gap between runs, as in a batch script.
        world.advance_by(SimDuration::from_secs(5));
    }

    SortTelemetryFigures {
        per_node: node_names
            .iter()
            .enumerate()
            .map(|(i, node)| NodeSeries {
                node: node.clone(),
                avg_latency_ms: latency[i].mean(),
                avg_tx_bandwidth_mbps: tx[i].mean(),
                avg_rx_bandwidth_mbps: rx[i].mean(),
            })
            .collect(),
        runs: run_completions.len(),
        run_completions,
    }
}

/// One inter-site edge of Figure 4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteEdge {
    /// One site.
    pub a: String,
    /// The other site.
    pub b: String,
    /// Configured round-trip time in milliseconds.
    pub rtt_ms: f64,
    /// Measured (ping-mesh) round-trip time in milliseconds between
    /// representative nodes of the two sites.
    pub measured_rtt_ms: f64,
}

/// The data behind Figure 4: sites, node assignment and inter-site RTTs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure4Topology {
    /// `(site, nodes)` assignment.
    pub sites: Vec<(String, Vec<String>)>,
    /// Inter-site edges with configured and measured RTTs.
    pub edges: Vec<SiteEdge>,
}

impl Figure4Topology {
    /// Markdown rendering.
    pub fn to_markdown(&self) -> String {
        let mut out = String::from("| Site | Nodes |\n|---|---|\n");
        for (site, nodes) in &self.sites {
            out.push_str(&format!("| {} | {} |\n", site, nodes.join(", ")));
        }
        out.push_str("\n| Link | Configured RTT (ms) | Measured RTT (ms) |\n|---|---|---|\n");
        for edge in &self.edges {
            out.push_str(&format!(
                "| {} ↔ {} | {:.1} | {:.1} |\n",
                edge.a, edge.b, edge.rtt_ms, edge.measured_rtt_ms
            ));
        }
        out
    }
}

/// Build the Figure 4 description from the testbed and a quick ping-mesh probe.
pub fn figure4_topology(seed: u64) -> Figure4Topology {
    let config = FabricConfig::default();
    let testbed = FabricTestbed::build(config.clone());
    let mut world = SimWorld::new(testbed, seed);
    world.advance_by(SimDuration::from_secs(6));
    let snapshot = world.snapshot();

    let mut sites: Vec<(String, Vec<String>)> = Vec::new();
    for site in crate::fabric::SITE_NAMES {
        let nodes: Vec<String> = world
            .cluster
            .nodes()
            .iter()
            .filter(|n| {
                n.labels
                    .get("topology.kubernetes.io/zone")
                    .map(String::as_str)
                    == Some(site)
            })
            .map(|n| n.name.clone())
            .collect();
        sites.push((site.to_string(), nodes));
    }

    // Representative node per site = first node of the site.
    let rep = |site: &str| -> String {
        sites
            .iter()
            .find(|(s, _)| s == site)
            .and_then(|(_, nodes)| nodes.first().cloned())
            .unwrap_or_default()
    };
    let measured = |a: &str, b: &str| -> f64 {
        snapshot
            .rtt_between(&rep(a), &rep(b))
            .map(|s| s * 1000.0)
            .unwrap_or(0.0)
    };

    let edges = vec![
        SiteEdge {
            a: "UCSD".into(),
            b: "FIU".into(),
            rtt_ms: config.rtt_ucsd_fiu_ms,
            measured_rtt_ms: measured("UCSD", "FIU"),
        },
        SiteEdge {
            a: "FIU".into(),
            b: "SRI".into(),
            rtt_ms: config.rtt_fiu_sri_ms,
            measured_rtt_ms: measured("FIU", "SRI"),
        },
        SiteEdge {
            a: "UCSD".into(),
            b: "SRI".into(),
            rtt_ms: config.rtt_ucsd_sri_ms,
            measured_rtt_ms: measured("UCSD", "SRI"),
        },
    ];

    Figure4Topology { sites, edges }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_figures_aggregate_five_runs() {
        let figures = sort_telemetry_figures(3, 100_000, 21);
        assert_eq!(figures.runs, 3);
        assert_eq!(figures.per_node.len(), 6);
        assert_eq!(figures.run_completions.len(), 3);
        assert!(figures.run_completions.iter().all(|&c| c > 0.0));
        // Latency varies across nodes (geo-distributed sites) and every node
        // has a non-negative bandwidth figure.
        let latencies: Vec<f64> = figures.per_node.iter().map(|n| n.avg_latency_ms).collect();
        let min = latencies.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = latencies.iter().cloned().fold(0.0, f64::max);
        assert!(max > min, "latency must differ across nodes: {latencies:?}");
        assert!(
            max > 10.0,
            "WAN nodes see tens of milliseconds: {latencies:?}"
        );
        assert!(figures
            .per_node
            .iter()
            .all(|n| n.avg_tx_bandwidth_mbps >= 0.0));
        // Some node transmitted shuffle data.
        assert!(figures
            .per_node
            .iter()
            .any(|n| n.avg_tx_bandwidth_mbps > 0.1));
        // Figure accessors and markdown.
        assert_eq!(figures.figure2_latency().len(), 6);
        assert_eq!(figures.figure3_tx_bandwidth().len(), 6);
        let md = figures.to_markdown();
        assert!(md.contains("node-1") && md.contains("Avg latency"));
    }

    #[test]
    fn figure4_matches_paper_layout() {
        let fig = figure4_topology(3);
        assert_eq!(fig.sites.len(), 3);
        assert!(fig.sites.iter().all(|(_, nodes)| nodes.len() == 2));
        assert_eq!(fig.edges.len(), 3);
        let ucsd_fiu = fig
            .edges
            .iter()
            .find(|e| e.a == "UCSD" && e.b == "FIU")
            .unwrap();
        assert_eq!(ucsd_fiu.rtt_ms, 66.0);
        // Measured RTT is within jitter/congestion tolerance of the configured value.
        assert!(
            (ucsd_fiu.measured_rtt_ms - 66.0).abs() < 10.0,
            "{}",
            ucsd_fiu.measured_rtt_ms
        );
        let md = fig.to_markdown();
        assert!(md.contains("UCSD") && md.contains("Measured RTT"));
    }
}
