//! The FABRIC testbed of Figure 4.
//!
//! Three sites — UC San Diego (UCSD), Florida International University (FIU)
//! and SRI International (SRI) — with two nodes each. The figure annotates the
//! inter-site links with RTTs of 66 ms (UCSD–FIU), 10 ms (FIU–SRI) and 72 ms
//! (UCSD–SRI). Nodes have 6 CPUs and 8 GB of RAM (Section 5.1).
//!
//! The paper's nodes use 100 Gbps SR-IOV NICs, but application throughput over
//! FABNetv4 is far lower (Figure 3 tops out around 5 MB/s per node during
//! Sort); the substitution here gives the WAN paths sub-gigabit capacities so
//! that the 10 MB background downloads and shuffle traffic actually contend,
//! which is the effect the scheduler must learn. See DESIGN.md.

use crate::world::Testbed;
use cluster::ClusterState;
use serde::{Deserialize, Serialize};
use simcore::SimDuration;
use simnet::{gbps, mbps, Network, SimNodeId, Topology, TopologyBuilder};

/// Site names in the order used throughout the experiments.
pub const SITE_NAMES: [&str; 3] = ["UCSD", "FIU", "SRI"];

/// Parameters of the reproduced testbed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricConfig {
    /// Nodes per site (paper: 2).
    pub nodes_per_site: usize,
    /// CPU cores per node (paper: 6).
    pub cores_per_node: u64,
    /// Memory per node in GiB (paper: 8).
    pub memory_gib_per_node: u64,
    /// Round-trip UCSD–FIU in milliseconds (paper: 66).
    pub rtt_ucsd_fiu_ms: f64,
    /// Round-trip FIU–SRI in milliseconds (paper: 10).
    pub rtt_fiu_sri_ms: f64,
    /// Round-trip UCSD–SRI in milliseconds (paper: 72).
    pub rtt_ucsd_sri_ms: f64,
    /// WAN capacity UCSD–FIU (bytes/sec).
    pub wan_ucsd_fiu_bps: f64,
    /// WAN capacity FIU–SRI (bytes/sec).
    pub wan_fiu_sri_bps: f64,
    /// WAN capacity UCSD–SRI (bytes/sec).
    pub wan_ucsd_sri_bps: f64,
    /// Node NIC capacity (bytes/sec).
    pub nic_bps: f64,
    /// Intra-site fabric capacity (bytes/sec).
    pub lan_bps: f64,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            nodes_per_site: 2,
            cores_per_node: 6,
            memory_gib_per_node: 8,
            rtt_ucsd_fiu_ms: 66.0,
            rtt_fiu_sri_ms: 10.0,
            rtt_ucsd_sri_ms: 72.0,
            wan_ucsd_fiu_bps: mbps(600.0),
            wan_fiu_sri_bps: mbps(900.0),
            wan_ucsd_sri_bps: mbps(400.0),
            nic_bps: gbps(1.0),
            lan_bps: gbps(10.0),
        }
    }
}

/// The built testbed: topology, network and cluster, with aligned node names
/// (`node-1` ... `node-6`, numbered across sites in round-robin order so each
/// site holds a mix of low/high indices, like the paper's Figure 4 labels).
#[derive(Debug, Clone)]
pub struct FabricTestbed {
    /// The experiment configuration used to build the testbed.
    pub config: FabricConfig,
    /// The flow-level network.
    pub network: Network,
    /// The mini-Kubernetes cluster.
    pub cluster: ClusterState,
}

impl FabricTestbed {
    /// Build the testbed from a configuration.
    pub fn build(config: FabricConfig) -> Self {
        let topology = Self::build_topology(&config);
        let testbed = Testbed::assemble(
            Network::new(topology),
            config.cores_per_node,
            config.memory_gib_per_node,
        );
        FabricTestbed {
            config,
            network: testbed.network,
            cluster: testbed.cluster,
        }
    }

    /// Build the default paper testbed.
    pub fn paper() -> Self {
        Self::build(FabricConfig::default())
    }

    fn build_topology(config: &FabricConfig) -> Topology {
        let mut b = TopologyBuilder::new();
        let lan_delay = SimDuration::from_micros(150);
        let ucsd = b.add_site("UCSD", lan_delay, config.lan_bps);
        let fiu = b.add_site("FIU", lan_delay, config.lan_bps);
        let sri = b.add_site("SRI", lan_delay, config.lan_bps);
        let sites = [ucsd, fiu, sri];
        // node-1..node-6 assigned round-robin: UCSD {1,4}, FIU {2,5}, SRI {3,6}.
        for i in 0..(config.nodes_per_site * 3) {
            let site = sites[i % 3];
            b.add_node(
                format!("node-{}", i + 1),
                site,
                config.nic_bps,
                config.nic_bps,
            );
        }
        // One-way delay = RTT / 2.
        b.connect_sites(
            ucsd,
            fiu,
            SimDuration::from_millis_f64(config.rtt_ucsd_fiu_ms / 2.0),
            config.wan_ucsd_fiu_bps,
        );
        b.connect_sites(
            fiu,
            sri,
            SimDuration::from_millis_f64(config.rtt_fiu_sri_ms / 2.0),
            config.wan_fiu_sri_bps,
        );
        b.connect_sites(
            ucsd,
            sri,
            SimDuration::from_millis_f64(config.rtt_ucsd_sri_ms / 2.0),
            config.wan_ucsd_sri_bps,
        );
        b.build().expect("the paper topology is valid")
    }

    /// Node names in index order.
    pub fn node_names(&self) -> Vec<String> {
        self.cluster.node_names()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.cluster.nodes().len()
    }

    /// The network-substrate id for a node name.
    pub fn net_id(&self, name: &str) -> Option<SimNodeId> {
        self.cluster.node(name).map(|n| n.net_id)
    }

    /// The base (uncongested) RTT matrix in milliseconds, keyed by node name
    /// pairs — the data behind Figure 4.
    pub fn base_rtt_matrix_ms(&self) -> Vec<(String, String, f64)> {
        let topo = self.network.topology();
        let mut out = Vec::new();
        for a in topo.nodes() {
            for b in topo.nodes() {
                if a.id != b.id {
                    out.push((
                        a.name.clone(),
                        b.name.clone(),
                        topo.base_rtt(a.id, b.id).as_millis_f64(),
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_has_six_nodes_across_three_sites() {
        let tb = FabricTestbed::paper();
        assert_eq!(tb.node_count(), 6);
        assert_eq!(tb.network.topology().sites().len(), 3);
        assert_eq!(tb.network.topology().links().len(), 3);
        assert_eq!(
            tb.node_names(),
            vec!["node-1", "node-2", "node-3", "node-4", "node-5", "node-6"]
        );
        // Nodes have the paper's capacity.
        for node in tb.cluster.nodes() {
            assert_eq!(node.allocatable.cpu_cores(), 6.0);
            assert_eq!(node.allocatable.memory_gib(), 8.0);
        }
        // Two nodes per site.
        for site in SITE_NAMES {
            let count = tb
                .cluster
                .nodes()
                .iter()
                .filter(|n| {
                    n.labels
                        .get("topology.kubernetes.io/zone")
                        .map(String::as_str)
                        == Some(site)
                })
                .count();
            assert_eq!(count, 2, "{site}");
        }
    }

    #[test]
    fn inter_site_rtts_match_figure4() {
        let tb = FabricTestbed::paper();
        let rtt = |a: &str, b: &str| -> f64 {
            let ia = tb.net_id(a).unwrap();
            let ib = tb.net_id(b).unwrap();
            tb.network.topology().base_rtt(ia, ib).as_millis_f64()
        };
        // node-1 is UCSD, node-2 is FIU, node-3 is SRI (round-robin).
        assert!((rtt("node-1", "node-2") - 66.0).abs() < 1e-6);
        assert!((rtt("node-2", "node-3") - 10.0).abs() < 1e-6);
        assert!((rtt("node-1", "node-3") - 72.0).abs() < 1e-6);
        // Intra-site RTT is sub-millisecond.
        assert!(rtt("node-1", "node-4") < 1.0);
        assert!(rtt("node-2", "node-5") < 1.0);
    }

    #[test]
    fn routing_prefers_direct_links_under_figure4_delays() {
        // UCSD->SRI direct is 72 ms RTT; via FIU it would be 66 + 10 = 76 ms,
        // so the direct link must be used.
        let tb = FabricTestbed::paper();
        let a = tb.net_id("node-1").unwrap();
        let b = tb.net_id("node-3").unwrap();
        let route = tb.network.topology().route(a, b);
        assert_eq!(route.site_path.len(), 2, "single WAN hop");
    }

    #[test]
    fn rtt_matrix_covers_all_ordered_pairs() {
        let tb = FabricTestbed::paper();
        let matrix = tb.base_rtt_matrix_ms();
        assert_eq!(matrix.len(), 6 * 5);
        assert!(matrix.iter().all(|(_, _, ms)| *ms > 0.0));
        let max = matrix.iter().map(|(_, _, ms)| *ms).fold(0.0, f64::max);
        assert!((max - 72.0).abs() < 1e-6);
    }

    #[test]
    fn custom_config_scales_node_count() {
        let tb = FabricTestbed::build(FabricConfig {
            nodes_per_site: 3,
            ..Default::default()
        });
        assert_eq!(tb.node_count(), 9);
        assert!(tb.net_id("node-9").is_some());
        assert!(tb.net_id("node-10").is_none());
    }
}
