//! Tables 1, 2 and 3.
//!
//! * **Table 1** — the input feature schema (rendered from the Feature
//!   Constructor's live schema so code and documentation cannot drift apart).
//! * **Table 2** — workload characteristics: the paper gives a qualitative
//!   characterization (network/CPU/memory profile); here it is backed by
//!   measured quantities from single-job runs of each workload.
//! * **Table 3** — a representative training sample (subset of the feature
//!   set plus the measured duration).

use crate::fabric::FabricTestbed;
use crate::world::SimWorld;
use netsched_core::features::FeatureSchema;
use netsched_core::request::JobRequest;
use serde::{Deserialize, Serialize};
use simcore::SimDuration;
use simnet::BackgroundLoadConfig;
use sparksim::{WorkloadKind, WorkloadRequest};

/// Table 1: render the live feature schema as markdown.
pub fn table1_feature_schema() -> String {
    FeatureSchema::standard().to_markdown_table()
}

/// Measured characteristics of one workload (Table 2 backing data).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadCharacteristics {
    /// Application name.
    pub application: String,
    /// Bytes shuffled over the network per run.
    pub shuffle_mb: f64,
    /// Total CPU work in core-seconds per run.
    pub cpu_core_seconds: f64,
    /// Peak per-task memory in MB.
    pub peak_task_memory_mb: f64,
    /// Work-skew factor of the heaviest stage.
    pub skew: f64,
    /// Measured completion time on an idle cluster, seconds.
    pub completion_seconds: f64,
    /// The paper's qualitative rationale.
    pub rationale: String,
}

/// Table 2: characterize the paper's three workloads by actually running them
/// once each on an otherwise idle testbed.
pub fn table2_workload_characteristics(
    input_records: u64,
    seed: u64,
) -> Vec<WorkloadCharacteristics> {
    let rationale = |kind: WorkloadKind| -> &'static str {
        match kind {
            WorkloadKind::Sort => {
                "High network and CPU usage from large shuffles; moderate memory load"
            }
            WorkloadKind::PageRank => {
                "High network and CPU usage from iterative data exchange; moderate memory load"
            }
            WorkloadKind::Join => "Skewed network, CPU, and memory usage due to imbalanced joins",
            WorkloadKind::GroupBy => "Combiner-reduced shuffle; moderate CPU",
            WorkloadKind::WordCount => "Map-heavy CPU; minimal shuffle",
        }
    };
    WorkloadKind::PAPER_SET
        .iter()
        .map(|&kind| {
            let request = JobRequest::new(
                format!("{}-char", kind.as_str()),
                WorkloadRequest::new(kind, input_records).with_executors(2),
            );
            let dag = request.workload.build_dag();
            let mut world = SimWorld::new(FabricTestbed::paper(), seed);
            world.advance_by(SimDuration::from_secs(5));
            let completion = world
                .run_job(&request, "node-1")
                .map(|o| o.result.completion_seconds())
                .unwrap_or(0.0);
            let max_skew = dag.stages.iter().map(|s| s.skew).fold(0.0, f64::max);
            WorkloadCharacteristics {
                application: kind.as_str().to_string(),
                shuffle_mb: dag.total_shuffle_bytes() / 1e6,
                cpu_core_seconds: dag.total_cpu_seconds(),
                peak_task_memory_mb: dag.peak_memory_per_task() / 1e6,
                skew: max_skew,
                completion_seconds: completion,
                rationale: rationale(kind).to_string(),
            }
        })
        .collect()
}

/// Render Table 2 as markdown.
pub fn table2_markdown(rows: &[WorkloadCharacteristics]) -> String {
    let mut out = String::from(
        "| Application | Shuffle (MB) | CPU (core-s) | Peak task mem (MB) | Skew | Completion (s) | Rationale |\n|---|---|---|---|---|---|---|\n",
    );
    for row in rows {
        out.push_str(&format!(
            "| {} | {:.1} | {:.1} | {:.1} | {:.2} | {:.1} | {} |\n",
            row.application,
            row.shuffle_mb,
            row.cpu_core_seconds,
            row.peak_task_memory_mb,
            row.skew,
            row.completion_seconds,
            row.rationale
        ));
    }
    out
}

/// Table 3: a representative training row (the paper shows RTT, Rx, Tx, CPU,
/// memory, input size and the measured duration).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingSampleRow {
    /// Mean RTT to peers, seconds.
    pub rtt_s: f64,
    /// Receive rate, MB/s.
    pub rx_mb_s: f64,
    /// Transmit rate, MB/s.
    pub tx_mb_s: f64,
    /// CPU load average.
    pub cpu_load: f64,
    /// Memory utilization, percent.
    pub mem_used_percent: f64,
    /// Input size, records.
    pub input_records: u64,
    /// Measured completion time, seconds.
    pub duration_s: f64,
}

/// Produce one representative training sample by running a Sort job on a
/// lightly contended cluster (mirrors the example row in the paper's Table 3).
pub fn table3_sample(seed: u64) -> TrainingSampleRow {
    let mut world = SimWorld::new(FabricTestbed::paper(), seed);
    world.place_background_load(1, &BackgroundLoadConfig::default());
    world.advance_by(SimDuration::from_secs(12));
    let request = JobRequest::named("sort-sample", WorkloadKind::Sort, 100_000, 2);
    let target = "node-2";
    let outcome = world
        .run_job(&request, target)
        .expect("sample job is feasible");
    let snapshot = &outcome.pre_run_snapshot;
    let telemetry = snapshot.node(target).copied().unwrap_or_default();
    let (rtt_mean, _, _) = snapshot.rtt_stats_from(target);
    let capacity_bytes = 8.0 * 1024.0 * 1024.0 * 1024.0;
    TrainingSampleRow {
        rtt_s: rtt_mean,
        rx_mb_s: telemetry.rx_rate / 1e6,
        tx_mb_s: telemetry.tx_rate / 1e6,
        cpu_load: telemetry.cpu_load,
        mem_used_percent: (1.0 - telemetry.memory_available_bytes / capacity_bytes) * 100.0,
        input_records: request.workload.input_records,
        duration_s: outcome.result.completion_seconds(),
    }
}

/// Render Table 3 as markdown.
pub fn table3_markdown(row: &TrainingSampleRow) -> String {
    format!(
        "| RTT (s) | Rx (MB/s) | Tx (MB/s) | CPU (load) | Mem (%) | Input Size | Dur. (s) |\n|---|---|---|---|---|---|---|\n| {:.3} | {:.3} | {:.3} | {:.2} | {:.1} | {} | {:.2} |\n",
        row.rtt_s,
        row.rx_mb_s,
        row.tx_mb_s,
        row.cpu_load,
        row.mem_used_percent,
        row.input_records,
        row.duration_s
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_the_schema() {
        let md = table1_feature_schema();
        assert!(md.contains("rtt_mean_s"));
        assert!(md.contains("cpu_load"));
        assert!(md.contains("input_records"));
        assert!(md.contains("| Feature | Type |"));
    }

    #[test]
    fn table2_orders_match_the_paper_story() {
        let rows = table2_workload_characteristics(200_000, 31);
        assert_eq!(rows.len(), 3);
        let find = |name: &str| rows.iter().find(|r| r.application == name).unwrap();
        let sort = find("sort");
        let pagerank = find("pagerank");
        let join = find("join");
        // Sort and PageRank shuffle more than Join relative to their input;
        // Join is the most skewed and the most memory-hungry.
        assert!(sort.shuffle_mb > join.shuffle_mb * 0.9);
        assert!(join.skew > sort.skew);
        assert!(join.skew > pagerank.skew);
        assert!(join.peak_task_memory_mb > sort.peak_task_memory_mb);
        assert!(rows.iter().all(|r| r.completion_seconds > 0.0));
        assert!(rows.iter().all(|r| r.cpu_core_seconds > 0.0));
        let md = table2_markdown(&rows);
        assert!(md.contains("sort") && md.contains("pagerank") && md.contains("join"));
    }

    #[test]
    fn table3_sample_is_plausible() {
        let row = table3_sample(17);
        assert!(row.duration_s > 0.0);
        assert!(row.rtt_s > 0.0 && row.rtt_s < 1.0, "rtt {}", row.rtt_s);
        assert!(row.cpu_load >= 0.0);
        assert!(row.mem_used_percent > 0.0 && row.mem_used_percent < 100.0);
        assert_eq!(row.input_records, 100_000);
        let md = table3_markdown(&row);
        assert!(md.contains("Input Size"));
        assert!(md.contains("100000"));
    }
}
