//! The Section 5.2 job matrix.
//!
//! *"Our setup includes 60 distinct job configurations across three Spark
//! applications and covers a range of input sizes, executor counts, memory
//! allocations, and shuffle patterns."* The matrix below spans exactly that
//! space: 3 workloads × 5 input sizes × 2 executor counts × 2 memory
//! allocations = 60 configurations.

use netsched_core::request::JobRequest;
use serde::{Deserialize, Serialize};
use sparksim::{WorkloadKind, WorkloadRequest};

/// One job configuration from the experiment matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobConfig {
    /// Stable configuration id (0..59 for the paper matrix).
    pub id: usize,
    /// Workload type.
    pub kind: WorkloadKind,
    /// Input size in records.
    pub input_records: u64,
    /// Executor count.
    pub executor_count: u32,
    /// Executor memory in bytes.
    pub executor_memory_bytes: u64,
    /// Shuffle partition count.
    pub shuffle_partitions: u32,
    /// Arrival time of this job relative to the experiment epoch, seconds.
    /// The batch workflow advances each scenario's world by this much extra
    /// before snapshotting, so jobs from a bursty mix observe the contention
    /// process at their actual arrival phase (the paper's fixed matrix
    /// submits everything at the epoch: 0.0).
    pub arrival_offset_seconds: f64,
}

impl JobConfig {
    /// A descriptive name, e.g. `sort-250k-3x-2g`.
    pub fn name(&self) -> String {
        format!(
            "{}-{}k-{}x-{}g",
            self.kind.as_str(),
            self.input_records / 1000,
            self.executor_count,
            self.executor_memory_bytes / (1024 * 1024 * 1024)
        )
    }

    /// Convert into a submission request.
    pub fn to_request(&self) -> JobRequest {
        JobRequest::new(
            self.name(),
            WorkloadRequest::new(self.kind, self.input_records)
                .with_executors(self.executor_count)
                .with_executor_memory(self.executor_memory_bytes)
                .with_executor_cores(1)
                .with_shuffle_partitions(self.shuffle_partitions),
        )
    }
}

/// Input sizes (records) used by the matrix. At ~100 bytes/record these span
/// 5 MB to 100 MB of input data.
pub const INPUT_SIZES: [u64; 5] = [50_000, 100_000, 250_000, 500_000, 1_000_000];

/// Executor counts used by the matrix.
pub const EXECUTOR_COUNTS: [u32; 2] = [2, 3];

/// Executor memory allocations used by the matrix (bytes).
pub const EXECUTOR_MEMORY: [u64; 2] = [1 << 30, 2 << 30];

/// Build the full 60-configuration matrix over the paper's three workloads.
pub fn job_matrix() -> Vec<JobConfig> {
    let mut configs = Vec::with_capacity(60);
    let mut id = 0;
    for kind in WorkloadKind::PAPER_SET {
        for &input_records in &INPUT_SIZES {
            for &executor_count in &EXECUTOR_COUNTS {
                for &executor_memory_bytes in &EXECUTOR_MEMORY {
                    configs.push(JobConfig {
                        id,
                        kind,
                        input_records,
                        executor_count,
                        executor_memory_bytes,
                        shuffle_partitions: 4 * executor_count,
                        arrival_offset_seconds: 0.0,
                    });
                    id += 1;
                }
            }
        }
    }
    configs
}

/// A reduced matrix for quick runs and tests: `per_workload` configurations
/// per workload, sampled evenly across the full matrix.
pub fn small_job_matrix(per_workload: usize) -> Vec<JobConfig> {
    let full = job_matrix();
    let per_workload = per_workload.max(1);
    let mut out = Vec::new();
    for kind in WorkloadKind::PAPER_SET {
        let of_kind: Vec<&JobConfig> = full.iter().filter(|c| c.kind == kind).collect();
        let stride = (of_kind.len() / per_workload).max(1);
        for chunk in of_kind.chunks(stride) {
            if out.iter().filter(|c: &&JobConfig| c.kind == kind).count() < per_workload {
                out.push(chunk[0].clone());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_has_exactly_sixty_distinct_configs() {
        let matrix = job_matrix();
        assert_eq!(matrix.len(), 60);
        let names: std::collections::BTreeSet<String> = matrix.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), 60, "names must be unique");
        let ids: std::collections::BTreeSet<usize> = matrix.iter().map(|c| c.id).collect();
        assert_eq!(ids.len(), 60);
        // 20 per workload.
        for kind in WorkloadKind::PAPER_SET {
            assert_eq!(matrix.iter().filter(|c| c.kind == kind).count(), 20);
        }
    }

    #[test]
    fn configs_convert_to_requests() {
        let config = &job_matrix()[7];
        let request = config.to_request();
        assert_eq!(request.workload.kind, config.kind);
        assert_eq!(request.workload.input_records, config.input_records);
        assert_eq!(request.workload.executor_count, config.executor_count);
        assert_eq!(
            request.workload.executor_memory_bytes,
            config.executor_memory_bytes
        );
        assert_eq!(request.name, config.name());
    }

    #[test]
    fn names_are_descriptive() {
        let matrix = job_matrix();
        let sort_small = matrix
            .iter()
            .find(|c| {
                c.kind == WorkloadKind::Sort
                    && c.input_records == 50_000
                    && c.executor_count == 2
                    && c.executor_memory_bytes == 1 << 30
            })
            .unwrap();
        assert_eq!(sort_small.name(), "sort-50k-2x-1g");
    }

    #[test]
    fn small_matrix_samples_every_workload() {
        let small = small_job_matrix(2);
        assert_eq!(small.len(), 6);
        for kind in WorkloadKind::PAPER_SET {
            assert_eq!(small.iter().filter(|c| c.kind == kind).count(), 2);
        }
        let one = small_job_matrix(1);
        assert_eq!(one.len(), 3);
        // Requesting more than available clamps to the full per-workload count.
        let big = small_job_matrix(100);
        assert!(big.len() <= 60);
    }
}
