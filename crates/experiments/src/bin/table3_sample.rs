//! Regenerate **Table 3**: a representative training sample (input feature
//! subset plus the measured completion time).
//!
//! ```text
//! cargo run --release -p experiments --bin table3_sample [seed]
//! ```

use experiments::report::emit;
use experiments::tables::{table3_markdown, table3_sample};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2025);
    let row = table3_sample(seed);
    let md = table3_markdown(&row);
    emit(
        "Table 3 — Representative training sample",
        "table3_sample.md",
        &md,
    );
}
