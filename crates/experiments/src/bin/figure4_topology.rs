//! Regenerate **Figure 4**: the geographical layout of the cluster across the
//! three FABRIC sites with inter-site RTT measurements.
//!
//! ```text
//! cargo run -p experiments --bin figure4_topology
//! ```

use experiments::figures::figure4_topology;
use experiments::report::emit;

fn main() {
    let figure = figure4_topology(2025);
    emit(
        "Figure 4 — Cluster layout across FABRIC sites with RTT measurements",
        "figure4_topology.md",
        &figure.to_markdown(),
    );
}
