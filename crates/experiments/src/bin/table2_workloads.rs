//! Regenerate **Table 2**: characteristics of the selected workloads, backed
//! by measured single-run numbers on the simulated testbed.
//!
//! ```text
//! cargo run --release -p experiments --bin table2_workloads [input_records]
//! ```

use experiments::report::emit;
use experiments::tables::{table2_markdown, table2_workload_characteristics};

fn main() {
    let input_records: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(250_000);
    let rows = table2_workload_characteristics(input_records, 2025);
    let md = table2_markdown(&rows);
    emit(
        &format!("Table 2 — Workload characteristics ({input_records} input records)"),
        "table2_workloads.md",
        &md,
    );
}
