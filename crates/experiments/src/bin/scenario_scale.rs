//! Run the **scale sweep**: world size × candidate budget K × stage-one
//! pruning policy, measuring the accuracy cost of two-stage candidate
//! pruning on 1k/4k/10k-node clos worlds (see [`experiments::scale`]).
//!
//! ```text
//! cargo run --release -p experiments --bin scenario_scale            # 1k/4k/10k × 5 budgets × 3 policies
//! cargo run --release -p experiments --bin scenario_scale quick      # one 240-node world (CI cell, no JSON)
//! ```
//!
//! Emits `results/scenario_scale.json` (machine-readable, byte-stable for a
//! fixed seed) and `results/scenario_scale.md` (human summary). The
//! acceptance bar is Top-1 agreement ≥ 0.95 at the default policy/budget —
//! exact (1.0) for the model-aligned scoreboard by construction; the
//! model-blind policies' curves quantify what a cheaper stage one costs.
//! Decision *latency* at these node counts is the `decision_scale` bench.

use experiments::report::{emit, write_result_file};
use experiments::scale::{run_scale_sweep, standard_ks, standard_node_counts, standard_policies};
use netsched_core::context::PruningPolicy;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "quick" || a == "--quick");
    for arg in &args {
        if arg != "quick" && arg != "--quick" {
            eprintln!("ignoring unrecognized argument `{arg}` (expected `quick`)");
        }
    }
    let (node_counts, ks, jobs) = if quick {
        (vec![240usize], vec![4usize, 16, 64], 8)
    } else {
        (standard_node_counts(), standard_ks(), 24)
    };
    let policies = standard_policies();

    eprintln!(
        "scale sweep: {} worlds {node_counts:?} x {} budgets {ks:?} x {} policies, {jobs} jobs each ...",
        node_counts.len(),
        ks.len(),
        policies.len(),
    );
    let start = std::time::Instant::now();
    let report = run_scale_sweep(&node_counts, &policies, &ks, jobs, 11);
    eprintln!(
        "sweep finished in {:.1}s ({} worlds)",
        start.elapsed().as_secs_f64(),
        report.cells.len(),
    );

    // Acceptance: at the largest world and the default (model-aligned)
    // policy, every budget must keep Top-1 agreement >= 0.95.
    let mut acceptance = String::new();
    if let Some(cell) = report.cells.last() {
        let worst = cell
            .ks
            .iter()
            .filter(|a| a.policy == PruningPolicy::ModelAligned)
            .map(|a| a.top1_hit_rate())
            .fold(f64::INFINITY, f64::min);
        acceptance = format!(
            "\nAcceptance @ {} nodes, default ModelAligned policy: worst-budget top-1 agreement {:.3} (target >= 0.95) -> {}\n",
            cell.nodes,
            worst,
            if worst >= 0.95 { "MET" } else { "MISSED" },
        );
        eprint!("{acceptance}");
    }

    let mut md = report.to_markdown();
    md.push_str(&acceptance);
    if quick {
        println!("quick mode: skipping results/scenario_scale.json");
        println!("{md}");
        return;
    }
    if let Some(path) = write_result_file("scenario_scale.json", &report.to_json()) {
        println!("(JSON report written to {})", path.display());
    }
    emit(
        "Scale sweep — two-stage pruning accuracy per (world, policy, K)",
        "scenario_scale.md",
        &md,
    );
}
