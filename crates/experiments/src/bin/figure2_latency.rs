//! Regenerate **Figure 2**: average latency per node across five runs of Sort.
//!
//! ```text
//! cargo run --release -p experiments --bin figure2_latency [runs] [input_records]
//! ```

use experiments::figures::sort_telemetry_figures;
use experiments::report::{csv_table, emit, markdown_table, write_result_file};

fn main() {
    let runs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let records: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500_000);
    let figures = sort_telemetry_figures(runs, records, 2025);

    let rows: Vec<Vec<String>> = figures
        .figure2_latency()
        .into_iter()
        .map(|(node, latency)| vec![node, format!("{latency:.2}")])
        .collect();
    let md = markdown_table(&["Node", "Avg latency (ms)"], &rows);
    emit(
        &format!("Figure 2 — Average latency per node across {runs} runs of Sort"),
        "figure2_latency.md",
        &md,
    );
    write_result_file(
        "figure2_latency.csv",
        &csv_table(&["node", "latency_ms"], &rows),
    );
}
