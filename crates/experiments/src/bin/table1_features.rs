//! Regenerate **Table 1**: the input features used by the scheduling model.
//!
//! ```text
//! cargo run -p experiments --bin table1_features
//! ```

use experiments::report::emit;
use experiments::tables::table1_feature_schema;

fn main() {
    let table = table1_feature_schema();
    emit(
        "Table 1 — Input features used by the scheduling model",
        "table1_features.md",
        &table,
    );
}
