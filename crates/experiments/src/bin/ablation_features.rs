//! Ablation harness: feature groups, random-forest size and background-load
//! intensity (the design choices called out in DESIGN.md §5).
//!
//! ```text
//! cargo run --release -p experiments --bin ablation_features [quick|full]
//! ```

use experiments::ablation::{
    ablation_markdown, background_intensity_ablation, feature_group_ablation, forest_size_ablation,
};
use experiments::report::emit;
use experiments::workflow::{ExperimentConfig, Workflow};
use mlcore::{GradientBoostingConfig, ModelConfig, RandomForestConfig};

fn main() {
    let full = std::env::args()
        .nth(1)
        .map(|a| a == "full")
        .unwrap_or(false);
    let base = if full {
        ExperimentConfig {
            repeats_per_config: 5,
            ..ExperimentConfig::default()
        }
    } else {
        ExperimentConfig::quick(5, 5, 2025)
    };
    let model_config = ModelConfig {
        forest: RandomForestConfig {
            n_trees: 80,
            ..Default::default()
        },
        gbdt: GradientBoostingConfig {
            n_rounds: 200,
            ..Default::default()
        },
        ..Default::default()
    };

    eprintln!(
        "generating dataset ({} scenarios) ...",
        base.scenario_count()
    );
    let dataset = Workflow::new(base.clone()).run();

    let mut output = String::new();
    eprintln!("running feature-group ablation ...");
    output.push_str(&ablation_markdown(
        "Feature-group ablation (random forest)",
        &feature_group_ablation(&dataset, &model_config, 0.25, 13),
    ));
    output.push('\n');

    eprintln!("running forest-size ablation ...");
    output.push_str(&ablation_markdown(
        "Random-forest size ablation",
        &forest_size_ablation(&dataset, &[10, 50, 100, 200], 0.25, 17),
    ));
    output.push('\n');

    eprintln!("running background-intensity ablation ...");
    let intensity_base = ExperimentConfig {
        configs: base.configs.clone(),
        repeats_per_config: base.repeats_per_config.min(4),
        ..base
    };
    output.push_str(&ablation_markdown(
        "Background-load intensity ablation",
        &background_intensity_ablation(&intensity_base, &[0, 1, 3], &model_config, 0.25, 19),
    ));

    emit("Ablation studies", "ablation.md", &output);
}
