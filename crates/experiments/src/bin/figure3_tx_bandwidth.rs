//! Regenerate **Figure 3**: average transmit bandwidth per node across five
//! runs of Sort.
//!
//! ```text
//! cargo run --release -p experiments --bin figure3_tx_bandwidth [runs] [input_records]
//! ```

use experiments::figures::sort_telemetry_figures;
use experiments::report::{csv_table, emit, markdown_table, write_result_file};

fn main() {
    let runs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let records: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500_000);
    let figures = sort_telemetry_figures(runs, records, 2025);

    let rows: Vec<Vec<String>> = figures
        .figure3_tx_bandwidth()
        .into_iter()
        .map(|(node, mbps)| vec![node, format!("{mbps:.2}")])
        .collect();
    let md = markdown_table(&["Node", "Avg Tx bandwidth (MB/s)"], &rows);
    emit(
        &format!("Figure 3 — Average transmit bandwidth per node across {runs} runs of Sort"),
        "figure3_tx_bandwidth.md",
        &md,
    );
    write_result_file(
        "figure3_tx_bandwidth.csv",
        &csv_table(&["node", "tx_mb_per_s"], &rows),
    );
}
