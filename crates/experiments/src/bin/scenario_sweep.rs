//! Run the **scenario-matrix sweep**: topology × workload mix × background
//! load × seed, with the full Table-4 pipeline (dataset → models → Top-1/Top-2
//! accuracy → speedup vs. the Kubernetes default) in every cell.
//!
//! ```text
//! cargo run --release -p experiments --bin scenario_sweep            # 24-cell default matrix
//! cargo run --release -p experiments --bin scenario_sweep quick      # 8-cell smoke matrix
//! cargo run --release -p experiments --bin scenario_sweep quick 4    # ... on 4 workers
//! cargo run --release -p experiments --bin scenario_sweep 8          # default matrix, 8 workers
//! ```
//!
//! Emits `results/scenario_sweep.json` (machine-readable, byte-stable for a
//! fixed matrix) and `results/scenario_sweep.md` (human summary). The
//! paper-shape expectation is that every supervised model beats the default
//! scheduler's Top-1 accuracy in a majority of cells.

use experiments::report::{emit, write_result_file};
use experiments::scenarios::{run_sweep, ScenarioMatrix, SweepOptions};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut matrix = ScenarioMatrix::paper_default();
    let mut options = SweepOptions::default();
    for arg in &args {
        if arg == "quick" {
            matrix = ScenarioMatrix::smoke();
        } else if let Ok(workers) = arg.parse::<usize>() {
            options.workers = workers.max(1);
        } else {
            eprintln!(
                "ignoring unrecognized argument `{arg}` (expected `quick` or a worker count)"
            );
        }
    }

    eprintln!(
        "sweeping {} cells ({} topologies x {} mixes x {} load levels x {} seeds) on {} workers ...",
        matrix.cell_count(),
        matrix.testbeds.len(),
        matrix.mixes.len(),
        matrix.loads.len(),
        matrix.seeds.len(),
        options.workers,
    );
    let start = std::time::Instant::now();
    let report = run_sweep(&matrix, &options);
    eprintln!(
        "sweep finished in {:.1}s ({} cells, {} scenarios total)",
        start.elapsed().as_secs_f64(),
        report.cells.len(),
        report.cells.iter().map(|c| c.scenario_count).sum::<usize>(),
    );

    if let Some(path) = write_result_file("scenario_sweep.json", &report.to_json()) {
        println!("(JSON report written to {})", path.display());
    }
    let mut md = report.to_markdown();
    md.push_str(&format!(
        "\nPaper-shape expectation (every supervised model beats the Kubernetes default on Top-1 in a majority of cells): {}\n",
        if report.paper_shape_holds() { "HOLDS" } else { "VIOLATED" }
    ));
    emit(
        "Scenario-matrix sweep — per-cell Top-1/Top-2 accuracy and speedup vs. kube default",
        "scenario_sweep.md",
        &md,
    );
}
