//! Regenerate **Table 4**: Top-1 and Top-2 accuracy of the Kubernetes default
//! scheduler and the three supervised models in selecting the fastest node.
//!
//! The full paper-scale run (60 configurations × 10 repeats × 6 nodes = 3600
//! samples) takes a few minutes in release mode:
//!
//! ```text
//! cargo run --release -p experiments --bin table4_accuracy          # full scale
//! cargo run --release -p experiments --bin table4_accuracy quick    # reduced scale
//! cargo run --release -p experiments --bin table4_accuracy <configs_per_workload> <repeats>
//! ```

use experiments::evaluation::evaluate_table4;
use experiments::report::emit;
use experiments::workflow::{ExperimentConfig, Workflow};
use mlcore::{GradientBoostingConfig, ModelConfig, RandomForestConfig};

fn experiment_config() -> ExperimentConfig {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("quick") => ExperimentConfig::quick(4, 4, 2025),
        Some(first) => {
            let per_workload: usize = first.parse().unwrap_or(20);
            let repeats: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(10);
            if per_workload >= 20 {
                ExperimentConfig {
                    repeats_per_config: repeats,
                    ..ExperimentConfig::default()
                }
            } else {
                ExperimentConfig::quick(per_workload, repeats, 2025)
            }
        }
        None => ExperimentConfig::default(),
    }
}

fn main() {
    let config = experiment_config();
    let scenario_count = config.scenario_count();
    eprintln!(
        "generating dataset: {} configurations x {} repeats = {} scenarios ({} samples) ...",
        config.configs.len(),
        config.repeats_per_config,
        scenario_count,
        scenario_count * 6
    );
    let start = std::time::Instant::now();
    let dataset = Workflow::new(config).run();
    eprintln!(
        "dataset ready: {} samples in {:.1}s; training and evaluating models ...",
        dataset.sample_count(),
        start.elapsed().as_secs_f64()
    );

    let model_config = ModelConfig {
        forest: RandomForestConfig {
            n_trees: 200,
            ..Default::default()
        },
        gbdt: GradientBoostingConfig {
            n_rounds: 300,
            ..Default::default()
        },
        ..Default::default()
    };
    let report = evaluate_table4(&dataset, 0.25, &model_config, 7);

    let mut md = report.to_markdown();
    md.push_str(&format!(
        "\nTraining scenarios: {} ({} samples); held-out scenarios: {}.\n",
        report.train_scenarios, report.train_samples, report.test_scenarios
    ));
    md.push_str("\nHeld-out regression quality:\n\n| Model | MAE (s) | RMSE (s) | R² |\n|---|---|---|---|\n");
    for fit in &report.model_fits {
        md.push_str(&format!(
            "| {} | {:.2} | {:.2} | {:.3} |\n",
            fit.kind, fit.metrics.mae, fit.metrics.rmse, fit.metrics.r2
        ));
    }
    md.push_str("\nPaper reference (Table 4): Kubernetes Default 0.160/0.260, Linear Regression 0.500/0.600, XGBoost 0.560/0.720, Random Forest 0.700/0.880.\n");

    emit(
        "Table 4 — Top-1 and Top-2 accuracy of scheduling approaches",
        "table4_accuracy.md",
        &md,
    );
    eprintln!("total wall-clock: {:.1}s", start.elapsed().as_secs_f64());
}
