//! The scenario matrix: parameterized substrates × workload mixes ×
//! background-load levels × seeds, swept in parallel.
//!
//! The paper's evaluation lives on a single 6-node FABRIC slice. This module
//! turns that one world into a point in a matrix: a [`TestbedSpec`] names a
//! substrate declaratively (the FABRIC slice is one named spec; the `simnet`
//! topology generators provide star-LAN, leaf–spine, fat-tree-lite and WAN
//! meshes), a `sparksim` [`WorkloadMixSpec`] names a workload family, a
//! [`LoadLevel`] names a background-contention regime, and a seed pins the
//! randomness. [`run_sweep`] fans the full cross-product over threads via
//! `simcore::parallel`, re-runs the Table-3/Table-4 pipeline in every cell
//! (dataset generation → model training → Top-1/Top-2 accuracy → speedup vs.
//! the Kubernetes default scheduler) and emits one machine-readable
//! [`SweepReport`].
//!
//! **Determinism.** Every cell derives all of its randomness from its own
//! spec, so the sweep is reproducible run-to-run and invariant to the worker
//! count: parallel and sequential sweeps produce byte-identical JSON.
//!
//! **Paper shape.** Across cells the supervised models are expected to beat
//! the telemetry-blind default scheduler on Top-1 accuracy in a majority of
//! cells; [`SweepReport::majorities`] records those counts and
//! [`SweepReport::paper_shape_holds`] checks the majority. Each cell also
//! reports per-method completion-time speedup over the default's picks
//! (supporting evidence, not part of the majority check).

use crate::evaluation::{evaluate_cell, MethodSpeedup, SchedulerAccuracy};
use crate::fabric::FabricConfig;
use crate::workflow::{ExperimentConfig, Workflow};
use crate::world::Testbed;
use mlcore::{GradientBoostingConfig, ModelConfig, RandomForestConfig};
use netsched_core::features::FeatureSchema;
use serde::{Deserialize, Serialize};
use simcore::parallel::parallel_map;
use simnet::{
    BackgroundLoadConfig, LeafSpineSpec, Network, StarLanSpec, TopologySpec, WanMeshSpec,
};
use sparksim::{MixKind, WorkloadMixSpec};

/// Per-node allocatable resources of a generated testbed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeResources {
    /// CPU cores per node.
    pub cores: u64,
    /// Memory per node in GiB.
    pub memory_gib: u64,
}

impl Default for NodeResources {
    fn default() -> Self {
        // The paper's node shape (6 CPUs, 8 GB).
        NodeResources {
            cores: 6,
            memory_gib: 8,
        }
    }
}

/// Declarative description of a substrate. The FABRIC slice of Figure 4 is
/// one named spec; every other member comes from the `simnet` topology
/// generators.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TestbedSpec {
    /// The paper's FABRIC slice (UCSD/FIU/SRI).
    Fabric(FabricConfig),
    /// A generated topology with uniform node resources.
    Generated {
        /// The topology family member to build.
        topology: TopologySpec,
        /// Allocatable resources per node.
        resources: NodeResources,
        /// Seed for the topology generator's randomness.
        topology_seed: u64,
    },
}

impl TestbedSpec {
    /// The paper's default FABRIC slice.
    pub fn fabric() -> Self {
        TestbedSpec::Fabric(FabricConfig::default())
    }

    /// A generated substrate with the paper's node shape.
    pub fn generated(topology: TopologySpec, topology_seed: u64) -> Self {
        TestbedSpec::Generated {
            topology,
            resources: NodeResources::default(),
            topology_seed,
        }
    }

    /// Short name used in cell keys, e.g. `fabric-3x2` or `wan-mesh-4x2-s2`.
    /// Generated names carry the topology seed so two substrates drawn from
    /// the same randomized family remain distinguishable in reports.
    pub fn name(&self) -> String {
        match self {
            TestbedSpec::Fabric(config) => format!("fabric-3x{}", config.nodes_per_site),
            TestbedSpec::Generated {
                topology,
                topology_seed,
                ..
            } => format!("{}-s{}", topology.name(), topology_seed),
        }
    }

    /// Number of candidate nodes the built testbed will hold.
    pub fn node_count(&self) -> usize {
        match self {
            TestbedSpec::Fabric(config) => config.nodes_per_site * 3,
            TestbedSpec::Generated { topology, .. } => topology.node_count(),
        }
    }

    /// Build the substrate.
    pub fn build(&self) -> Testbed {
        match self {
            TestbedSpec::Fabric(config) => {
                crate::fabric::FabricTestbed::build(config.clone()).into()
            }
            TestbedSpec::Generated {
                topology,
                resources,
                topology_seed,
            } => {
                let topo = topology
                    .build(*topology_seed)
                    .expect("generated topologies are connected by construction");
                Testbed::assemble(Network::new(topo), resources.cores, resources.memory_gib)
            }
        }
    }
}

/// A named background-contention regime: how many curl-loop pods run and how
/// aggressively they download.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadLevel {
    /// Regime name (`light`, `moderate`, `heavy`).
    pub name: String,
    /// Minimum and maximum number of background pods per scenario.
    pub pods: (usize, usize),
    /// Background pod behaviour.
    pub background: BackgroundLoadConfig,
}

impl LoadLevel {
    /// One lazy pod: mild contention.
    pub fn light() -> Self {
        LoadLevel {
            name: "light".into(),
            pods: (1, 1),
            background: BackgroundLoadConfig {
                mean_gap: simcore::SimDuration::from_millis(400),
                ..Default::default()
            },
        }
    }

    /// The paper's Section 5.2 regime: 1–3 pods on the default curl loop.
    pub fn moderate() -> Self {
        LoadLevel {
            name: "moderate".into(),
            pods: (1, 3),
            background: BackgroundLoadConfig::default(),
        }
    }

    /// 3–5 eager pods fetching larger files: sustained contention.
    pub fn heavy() -> Self {
        LoadLevel {
            name: "heavy".into(),
            pods: (3, 5),
            background: BackgroundLoadConfig {
                transfer_bytes: simnet::megabytes(15.0),
                mean_gap: simcore::SimDuration::from_millis(100),
                cpu_load: 2.5,
                ..Default::default()
            },
        }
    }
}

/// One cell of the scenario matrix: a substrate, a workload mix, a load
/// regime and a seed, plus how many repeats each generated job gets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// The substrate.
    pub testbed: TestbedSpec,
    /// The workload mix.
    pub mix: WorkloadMixSpec,
    /// The background-load regime.
    pub load: LoadLevel,
    /// Master seed of the cell (drives job generation, placement, warm-up).
    pub seed: u64,
    /// Repeats per generated job configuration.
    pub repeats: usize,
}

impl ScenarioSpec {
    /// Cell name, e.g. `fabric-3x2/shuffle-heavy-5/moderate/seed-11`.
    pub fn cell_name(&self) -> String {
        format!(
            "{}/{}/{}/seed-{}",
            self.testbed.name(),
            self.mix.name(),
            self.load.name,
            self.seed
        )
    }

    /// Expand the cell into a concrete batch-workflow configuration: the mix
    /// generates the job list, the load level sets the contention process and
    /// the testbed replaces the FABRIC-only construction.
    pub fn to_experiment_config(&self) -> ExperimentConfig {
        let configs = self
            .mix
            .generate(self.seed)
            .iter()
            .map(|job| crate::config::JobConfig {
                id: job.index,
                kind: job.kind,
                input_records: job.input_records,
                executor_count: job.executor_count,
                executor_memory_bytes: job.executor_memory_bytes,
                shuffle_partitions: job.shuffle_partitions,
                arrival_offset_seconds: job.arrival_offset.as_secs_f64(),
            })
            .collect();
        ExperimentConfig {
            seed: self.seed,
            configs,
            repeats_per_config: self.repeats.max(1),
            background_pods: self.load.pods,
            background: self.load.background.clone(),
            warmup_seconds: self.mix.warmup_seconds(),
            testbed: self.testbed.clone(),
            schema: FeatureSchema::standard(),
            // Cells are the unit of sweep parallelism; inside a cell the
            // workflow runs sequentially so a sweep never oversubscribes.
            workers: 1,
        }
    }
}

/// The full matrix: the cross-product of substrates, mixes, load regimes and
/// seeds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioMatrix {
    /// Substrates to sweep.
    pub testbeds: Vec<TestbedSpec>,
    /// Workload mixes to sweep.
    pub mixes: Vec<WorkloadMixSpec>,
    /// Background-load regimes to sweep.
    pub loads: Vec<LoadLevel>,
    /// Seeds to sweep (each seed is an independent replication).
    pub seeds: Vec<u64>,
    /// Repeats per generated job configuration within each cell.
    pub repeats: usize,
}

impl ScenarioMatrix {
    /// Number of cells in the cross-product.
    pub fn cell_count(&self) -> usize {
        self.testbeds.len() * self.mixes.len() * self.loads.len() * self.seeds.len()
    }

    /// Expand the cross-product in deterministic order
    /// (testbed → mix → load → seed).
    pub fn cells(&self) -> Vec<ScenarioSpec> {
        let mut cells = Vec::with_capacity(self.cell_count());
        for testbed in &self.testbeds {
            for mix in &self.mixes {
                for load in &self.loads {
                    for &seed in &self.seeds {
                        cells.push(ScenarioSpec {
                            testbed: testbed.clone(),
                            mix: mix.clone(),
                            load: load.clone(),
                            seed,
                            repeats: self.repeats,
                        });
                    }
                }
            }
        }
        cells
    }

    /// The default 24-cell evaluation matrix: 3 substrates (the FABRIC slice,
    /// a leaf–spine fabric, a WAN mesh) × 2 mixes × 2 load regimes × 2 seeds.
    pub fn paper_default() -> Self {
        ScenarioMatrix {
            testbeds: vec![
                TestbedSpec::fabric(),
                TestbedSpec::generated(TopologySpec::LeafSpine(LeafSpineSpec::default()), 1),
                TestbedSpec::generated(TopologySpec::WanMesh(WanMeshSpec::default()), 2),
            ],
            mixes: vec![
                WorkloadMixSpec::new(MixKind::ShuffleHeavy, 5),
                WorkloadMixSpec::new(MixKind::MixedDagSizes, 5),
            ],
            loads: vec![LoadLevel::moderate(), LoadLevel::heavy()],
            seeds: vec![11, 12],
            repeats: 4,
        }
    }

    /// A small smoke matrix (8 cells) for CI and the integration tests:
    /// 2 substrates × 2 mixes × 1 load × 2 seeds with tiny mixes.
    pub fn smoke() -> Self {
        ScenarioMatrix {
            testbeds: vec![
                TestbedSpec::fabric(),
                TestbedSpec::generated(
                    TopologySpec::StarLan(StarLanSpec {
                        nodes: 5,
                        ..Default::default()
                    }),
                    3,
                ),
            ],
            mixes: vec![
                WorkloadMixSpec::new(MixKind::ShuffleHeavy, 3),
                WorkloadMixSpec::new(MixKind::BurstyArrivals, 3),
            ],
            loads: vec![LoadLevel::moderate()],
            seeds: vec![5, 6],
            repeats: 2,
        }
    }
}

/// Sweep-wide knobs: worker threads, held-out fraction and model sizes.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Worker threads the sweep fans cells across.
    pub workers: usize,
    /// Fraction of each cell's scenarios held out for evaluation.
    pub test_fraction: f64,
    /// Model configuration used in every cell.
    pub model: ModelConfig,
    /// Evaluation seed (train/test split + default-scheduler tie-breaking);
    /// combined with each cell's seed so cells stay independent.
    pub eval_seed: u64,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            workers: simcore::parallel::default_workers(),
            test_fraction: 0.3,
            // Lighter than the paper-scale Table 4 models: every cell trains
            // its own three models, so the sweep trades tree count for cells.
            model: ModelConfig {
                forest: RandomForestConfig {
                    n_trees: 80,
                    workers: 1,
                    ..Default::default()
                },
                gbdt: GradientBoostingConfig {
                    n_rounds: 120,
                    ..Default::default()
                },
                ..Default::default()
            },
            eval_seed: 7,
        }
    }
}

impl SweepOptions {
    /// A tiny configuration for tests: small models, sequential by default.
    pub fn quick() -> Self {
        SweepOptions {
            workers: 1,
            model: ModelConfig {
                forest: RandomForestConfig {
                    n_trees: 25,
                    workers: 1,
                    ..Default::default()
                },
                gbdt: GradientBoostingConfig {
                    n_rounds: 60,
                    ..Default::default()
                },
                ..Default::default()
            },
            ..Default::default()
        }
    }
}

/// Identity of one swept cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellKey {
    /// Substrate name.
    pub topology: String,
    /// Workload-mix name.
    pub mix: String,
    /// Load-regime name.
    pub load: String,
    /// Replication seed.
    pub seed: u64,
}

/// Everything measured in one cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellReport {
    /// Which cell this is.
    pub cell: CellKey,
    /// Candidate nodes in the cell's substrate.
    pub node_count: usize,
    /// Scenarios generated (jobs × repeats).
    pub scenario_count: usize,
    /// Training samples (scenarios × candidate nodes).
    pub sample_count: usize,
    /// Scenarios used for training.
    pub train_scenarios: usize,
    /// Scenarios held out for evaluation.
    pub test_scenarios: usize,
    /// Top-1/Top-2 accuracy per method (the per-cell Table 4).
    pub accuracy: Vec<SchedulerAccuracy>,
    /// Completion-time speedup of each method over the Kubernetes default.
    pub speedups: Vec<MethodSpeedup>,
}

impl CellReport {
    /// Accuracy row of one method.
    pub fn accuracy_of(&self, method: &str) -> Option<&SchedulerAccuracy> {
        self.accuracy.iter().find(|r| r.method == method)
    }

    /// Does `method` strictly beat the Kubernetes default on Top-1 here?
    pub fn beats_default_top1(&self, method: &str) -> bool {
        match (
            self.accuracy_of(method),
            self.accuracy_of(crate::evaluation::KUBE_DEFAULT_METHOD),
        ) {
            (Some(m), Some(d)) => m.top1 > d.top1,
            _ => false,
        }
    }
}

/// How often one method beat the default scheduler across the matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodMajority {
    /// Method name.
    pub method: String,
    /// Cells where the method's Top-1 strictly beat the default's.
    pub cells_beating_default_top1: usize,
    /// Total cells.
    pub cells: usize,
}

impl MethodMajority {
    /// True when the method wins in a strict majority of cells.
    pub fn is_majority(&self) -> bool {
        self.cells_beating_default_top1 * 2 > self.cells
    }
}

/// The machine-readable sweep result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// One report per cell, in matrix order.
    pub cells: Vec<CellReport>,
    /// Per-supervised-method majority counts (the paper-shape check).
    pub majorities: Vec<MethodMajority>,
}

impl SweepReport {
    /// Assemble a report and its majority summary from per-cell results.
    pub fn new(cells: Vec<CellReport>) -> Self {
        let mut methods: Vec<String> = Vec::new();
        for cell in &cells {
            for row in &cell.accuracy {
                if row.method != crate::evaluation::KUBE_DEFAULT_METHOD
                    && !methods.contains(&row.method)
                {
                    methods.push(row.method.clone());
                }
            }
        }
        let majorities = methods
            .into_iter()
            .map(|method| MethodMajority {
                cells_beating_default_top1: cells
                    .iter()
                    .filter(|c| c.beats_default_top1(&method))
                    .count(),
                cells: cells.len(),
                method,
            })
            .collect();
        SweepReport { cells, majorities }
    }

    /// True when *every* supervised method beats the default scheduler's
    /// Top-1 in a strict majority of cells — the sweep's paper-shape
    /// expectation.
    pub fn paper_shape_holds(&self) -> bool {
        !self.majorities.is_empty() && self.majorities.iter().all(MethodMajority::is_majority)
    }

    /// Serialize to JSON (the `results/scenario_sweep.json` artifact).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("sweep report serialization cannot fail")
    }

    /// Restore a report saved with [`SweepReport::to_json`].
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }

    /// Render a markdown summary: one row per cell plus the majority lines.
    pub fn to_markdown(&self) -> String {
        let mut out = String::from(
            "| Cell | Nodes | Scenarios | Default Top-1 | Best supervised (Top-1) | RF speedup (geomean) |\n|---|---|---|---|---|---|\n",
        );
        for cell in &self.cells {
            let default_top1 = cell
                .accuracy_of(crate::evaluation::KUBE_DEFAULT_METHOD)
                .map(|r| r.top1)
                .unwrap_or(0.0);
            let best = cell
                .accuracy
                .iter()
                .filter(|r| r.method != crate::evaluation::KUBE_DEFAULT_METHOD)
                .max_by(|a, b| {
                    a.top1
                        .partial_cmp(&b.top1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
            let rf_method = mlcore::ModelKind::RandomForest.display_name();
            let rf_speedup = cell
                .speedups
                .iter()
                .find(|s| s.method == rf_method)
                .map(|s| s.geomean_speedup)
                .unwrap_or(1.0);
            out.push_str(&format!(
                "| {}/{}/{}/seed-{} | {} | {} | {:.3} | {} ({:.3}) | {:.2}x |\n",
                cell.cell.topology,
                cell.cell.mix,
                cell.cell.load,
                cell.cell.seed,
                cell.node_count,
                cell.scenario_count,
                default_top1,
                best.map(|r| r.method.as_str()).unwrap_or("-"),
                best.map(|r| r.top1).unwrap_or(0.0),
                rf_speedup,
            ));
        }
        out.push('\n');
        for majority in &self.majorities {
            out.push_str(&format!(
                "- {} beats the Kubernetes default on Top-1 in {}/{} cells{}\n",
                majority.method,
                majority.cells_beating_default_top1,
                majority.cells,
                if majority.is_majority() {
                    " (majority ✓)"
                } else {
                    ""
                }
            ));
        }
        out
    }
}

/// Run one cell: generate its dataset with the batch workflow, then run the
/// Table-4 pipeline (train models, rank, score accuracy and speedup).
pub fn run_cell(spec: &ScenarioSpec, options: &SweepOptions) -> CellReport {
    let dataset = Workflow::new(spec.to_experiment_config()).run();
    let evaluation = evaluate_cell(
        &dataset,
        options.test_fraction,
        &options.model,
        options.eval_seed ^ spec.seed.rotate_left(17),
    );
    CellReport {
        cell: CellKey {
            topology: spec.testbed.name(),
            mix: spec.mix.name(),
            load: spec.load.name.clone(),
            seed: spec.seed,
        },
        node_count: spec.testbed.node_count(),
        scenario_count: dataset.scenario_count(),
        sample_count: dataset.sample_count(),
        train_scenarios: evaluation.table4.train_scenarios,
        test_scenarios: evaluation.table4.test_scenarios,
        accuracy: evaluation.table4.rows,
        speedups: evaluation.speedups,
    }
}

/// Fan the matrix across `options.workers` threads. Each cell is fully
/// self-contained and deterministic, and `parallel_map` writes results back
/// in index order, so the result is identical to a sequential sweep.
pub fn run_sweep(matrix: &ScenarioMatrix, options: &SweepOptions) -> SweepReport {
    let cells = matrix.cells();
    let reports = parallel_map(cells.len(), options.workers, |i| {
        run_cell(&cells[i], options)
    });
    SweepReport::new(reports)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_cross_product_order_and_count() {
        let matrix = ScenarioMatrix::paper_default();
        assert!(matrix.cell_count() >= 24);
        assert!(matrix.testbeds.len() >= 3);
        assert!(matrix.mixes.len() >= 2);
        assert!(matrix.loads.len() >= 2);
        assert_eq!(matrix.seeds.len(), 2);
        let cells = matrix.cells();
        assert_eq!(cells.len(), matrix.cell_count());
        // Seed varies fastest, testbed slowest.
        assert_eq!(cells[0].seed, matrix.seeds[0]);
        assert_eq!(cells[1].seed, matrix.seeds[1]);
        assert_eq!(cells[0].testbed, cells[1].testbed);
        let names: std::collections::BTreeSet<String> =
            cells.iter().map(ScenarioSpec::cell_name).collect();
        assert_eq!(names.len(), cells.len(), "cell names must be unique");
        let smoke = ScenarioMatrix::smoke();
        assert!(smoke.cell_count() <= 8);
    }

    #[test]
    fn testbed_specs_build_aligned_clusters() {
        for spec in [
            TestbedSpec::fabric(),
            TestbedSpec::generated(TopologySpec::LeafSpine(LeafSpineSpec::default()), 1),
            TestbedSpec::generated(TopologySpec::WanMesh(WanMeshSpec::default()), 2),
        ] {
            let testbed = spec.build();
            assert_eq!(
                testbed.cluster.nodes().len(),
                spec.node_count(),
                "{}",
                spec.name()
            );
            assert_eq!(
                testbed.network.topology().node_count(),
                spec.node_count(),
                "{}",
                spec.name()
            );
            for node in testbed.cluster.nodes() {
                let net = testbed.network.topology().node(node.net_id);
                assert_eq!(net.name, node.name);
            }
        }
    }

    #[test]
    fn scenario_spec_expands_to_workflow_config() {
        let spec = ScenarioSpec {
            testbed: TestbedSpec::generated(TopologySpec::StarLan(StarLanSpec::default()), 9),
            mix: WorkloadMixSpec::new(MixKind::ShuffleHeavy, 4),
            load: LoadLevel::heavy(),
            seed: 77,
            repeats: 3,
        };
        let config = spec.to_experiment_config();
        assert_eq!(config.configs.len(), 4);
        assert_eq!(config.repeats_per_config, 3);
        assert_eq!(config.scenario_count(), 12);
        assert_eq!(config.background_pods, (3, 5));
        assert_eq!(config.seed, 77);
        assert_eq!(config.workers, 1);
        assert!(spec.cell_name().contains("star-lan-6"));
        assert!(spec.cell_name().contains("shuffle-heavy-4"));
        assert!(spec.cell_name().contains("heavy"));
    }

    #[test]
    fn single_cell_runs_end_to_end() {
        let spec = ScenarioSpec {
            testbed: TestbedSpec::fabric(),
            mix: WorkloadMixSpec::new(MixKind::ShuffleHeavy, 3),
            load: LoadLevel::moderate(),
            seed: 21,
            repeats: 2,
        };
        let report = run_cell(&spec, &SweepOptions::quick());
        assert_eq!(report.node_count, 6);
        assert_eq!(report.scenario_count, 6);
        assert_eq!(report.sample_count, 36);
        assert_eq!(report.accuracy.len(), 4);
        assert_eq!(report.speedups.len(), 4);
        // Default's self-speedup is exactly 1.
        let default_speedup = report
            .speedups
            .iter()
            .find(|s| s.method == crate::evaluation::KUBE_DEFAULT_METHOD)
            .unwrap();
        assert!((default_speedup.geomean_speedup - 1.0).abs() < 1e-12);
        assert!(report.train_scenarios + report.test_scenarios == 6);
    }

    #[test]
    fn report_json_roundtrip_and_markdown() {
        let report = SweepReport::new(vec![]);
        assert!(!report.paper_shape_holds(), "empty sweep proves nothing");
        let restored = SweepReport::from_json(&report.to_json()).unwrap();
        assert_eq!(restored, report);
        assert!(SweepReport::from_json("{nope").is_err());
        let md = report.to_markdown();
        assert!(md.contains("| Cell |"));
    }
}
