//! Report rendering and result-file helpers shared by the harness binaries.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Render a generic markdown table.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("| {} |\n", headers.join(" | ")));
    out.push_str(&format!("|{}\n", "---|".repeat(headers.len())));
    for row in rows {
        out.push_str(&format!("| {} |\n", row.join(" | ")));
    }
    out
}

/// Render a CSV document.
pub fn csv_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&headers.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// The directory experiment outputs are written to (`results/` under the
/// workspace root, overridable with the `NETSCHED_RESULTS_DIR` environment
/// variable).
pub fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("NETSCHED_RESULTS_DIR") {
        return PathBuf::from(dir);
    }
    // Walk up from the crate manifest to the workspace root.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let workspace = manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest);
    workspace.join("results")
}

/// Write `content` to `results/<name>`, creating the directory if needed.
/// Returns the written path. Errors are reported but not fatal (the harness
/// binaries also print everything to stdout).
pub fn write_result_file(name: &str, content: &str) -> Option<PathBuf> {
    let dir = results_dir();
    if let Err(err) = fs::create_dir_all(&dir) {
        eprintln!("warning: could not create {}: {err}", dir.display());
        return None;
    }
    let path = dir.join(name);
    match fs::File::create(&path).and_then(|mut f| f.write_all(content.as_bytes())) {
        Ok(()) => Some(path),
        Err(err) => {
            eprintln!("warning: could not write {}: {err}", path.display());
            None
        }
    }
}

/// Print a titled section to stdout and persist it under `results/`.
pub fn emit(title: &str, file_name: &str, content: &str) {
    println!("\n== {title} ==\n");
    println!("{content}");
    if let Some(path) = write_result_file(file_name, content) {
        println!("(written to {})", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_table_shape() {
        let md = markdown_table(
            &["Method", "Top-1"],
            &[
                vec!["RF".into(), "0.7".into()],
                vec!["LR".into(), "0.5".into()],
            ],
        );
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "| Method | Top-1 |");
        assert_eq!(lines[1], "|---|---|");
        assert!(lines[2].contains("RF"));
    }

    #[test]
    fn csv_table_shape() {
        let csv = csv_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(csv, "a,b\n1,2\n");
    }

    #[test]
    fn results_dir_env_override_and_write() {
        let tmp =
            std::env::temp_dir().join(format!("netsched-results-test-{}", std::process::id()));
        std::env::set_var("NETSCHED_RESULTS_DIR", &tmp);
        assert_eq!(results_dir(), tmp);
        let path = write_result_file("unit_test.md", "hello").expect("writable temp dir");
        assert!(path.exists());
        let content = fs::read_to_string(&path).unwrap();
        assert_eq!(content, "hello");
        std::env::remove_var("NETSCHED_RESULTS_DIR");
        let _ = fs::remove_dir_all(&tmp);
        // Without the override the directory ends with `results`.
        assert!(results_dir().ends_with("results"));
    }
}
