//! A self-contained simulated world.
//!
//! [`SimWorld`] bundles everything one experiment run needs — the cluster, the
//! network, the metrics server, the background-load pods and the RNG — behind
//! a small API: advance time, place background load, snapshot telemetry, run a
//! job with its driver pinned to a chosen node. The whole world is `Clone`, so
//! the workflow can freeze a system state and replay the *same* job from the
//! *same* conditions once per candidate driver node, which is how the "actual
//! fastest node" ground truth for Table 4 is obtained.

use crate::fabric::FabricTestbed;
use cluster::scheduler::Scheduler as _;
use cluster::{ClusterState, DefaultScheduler, Node, PodId, Resources};
use netsched_core::fetcher::TelemetryFetcher;
use netsched_core::request::JobRequest;
use simcore::rng::Rng;
use simcore::{SimDuration, SimTime};
use simnet::{
    place_random_background_load, BackgroundLoadConfig, BackgroundLoadGenerator, Network, SimNodeId,
};
use sparksim::engine::{execute_job, ContentionDriver, ExecutionConfig};
use sparksim::{JobRunResult, Placement};
use telemetry::{ClusterSnapshot, ScrapeConfig, ScrapeManager};

/// A built substrate: the flow-level network plus the mini-Kubernetes view of
/// its nodes. This is what [`SimWorld`] runs on; the FABRIC slice
/// ([`FabricTestbed`]) is one way to produce it, the scenario-matrix
/// generators (`crate::scenarios::TestbedSpec`) are another.
#[derive(Debug, Clone)]
pub struct Testbed {
    /// The flow-level network.
    pub network: Network,
    /// The mini-Kubernetes cluster aligned with the network's nodes.
    pub cluster: ClusterState,
}

impl Testbed {
    /// Assemble a cluster over every node of `network`'s topology: uniform
    /// allocatable resources, the node's site as its zone label, and a
    /// distinct idle footprint per host (daemons, page cache) so no two nodes
    /// are byte-for-byte identical even when unloaded — real hosts never are,
    /// and the telemetry-blind baseline should not be able to exploit
    /// accidental symmetry.
    pub fn assemble(network: Network, cores_per_node: u64, memory_gib_per_node: u64) -> Self {
        let mut cluster = ClusterState::new();
        for node in network.topology().nodes() {
            let site = network.topology().site(node.site).name.clone();
            cluster.add_node(
                Node::new(
                    node.name.clone(),
                    node.id,
                    Resources::from_cores_and_gib(cores_per_node, memory_gib_per_node),
                    site,
                )
                .with_base_load(
                    0.08 + 0.05 * node.id.0 as f64,
                    (400.0 + 80.0 * node.id.0 as f64) * 1024.0 * 1024.0,
                ),
            );
        }
        Testbed { network, cluster }
    }
}

impl From<FabricTestbed> for Testbed {
    fn from(testbed: FabricTestbed) -> Self {
        Testbed {
            network: testbed.network,
            cluster: testbed.cluster,
        }
    }
}

/// Background-load pods plus their per-pod transfer state. Implements
/// [`ContentionDriver`] so the curl-loop keeps issuing 10 MB downloads while a
/// job executes.
///
/// Each pod behaves like the paper's `curl` loop: it downloads one file,
/// waits for the download to finish, sleeps for a short think time, then
/// starts the next one. Downloads are therefore *sequential per pod*, which
/// both matches the real pod and bounds the number of concurrent background
/// flows to the number of pods.
#[derive(Debug, Clone)]
struct BackgroundDriver {
    generators: Vec<BackgroundLoadGenerator>,
    /// Flow currently in flight for each pod (None = in think time).
    in_flight: Vec<Option<simnet::FlowId>>,
    /// Earliest time each idle pod may start its next download.
    next_start: Vec<SimTime>,
    rng: Rng,
}

impl BackgroundDriver {
    fn new(rng: Rng) -> Self {
        BackgroundDriver {
            generators: Vec::new(),
            in_flight: Vec::new(),
            next_start: Vec::new(),
            rng,
        }
    }

    fn set_generators(&mut self, generators: Vec<BackgroundLoadGenerator>, now: SimTime) {
        self.in_flight = generators.iter().map(|_| None).collect();
        self.next_start = generators.iter().map(|_| now).collect();
        self.generators = generators;
    }

    fn clear(&mut self) {
        self.generators.clear();
        self.in_flight.clear();
        self.next_start.clear();
    }

    fn is_empty(&self) -> bool {
        self.generators.is_empty()
    }
}

impl ContentionDriver for BackgroundDriver {
    fn poll(&mut self, network: &mut Network, now: SimTime) -> Option<SimTime> {
        let mut next: Option<SimTime> = None;
        for (i, generator) in self.generators.iter_mut().enumerate() {
            // Has the pod's current download finished?
            if let Some(flow_id) = self.in_flight[i] {
                let still_active = network
                    .flow(flow_id)
                    .map(|f| f.is_active())
                    .unwrap_or(false);
                if still_active {
                    // Completion is tracked by the network's own event horizon.
                    continue;
                }
                self.in_flight[i] = None;
                // Think time before the next request.
                let gap = SimDuration::from_secs_f64(
                    self.rng
                        .exponential(1.0 / generator.config.mean_gap.as_secs_f64().max(1e-3))
                        .min(generator.config.mean_gap.as_secs_f64() * 10.0),
                );
                self.next_start[i] = now + gap.max(SimDuration::from_millis(5));
            }
            if self.in_flight[i].is_none() {
                if self.next_start[i] <= now {
                    let transfer = generator.next_transfer(&mut self.rng);
                    let flow = network.start_flow(
                        transfer.src,
                        transfer.dst,
                        transfer.bytes,
                        transfer.kind,
                    );
                    self.in_flight[i] = Some(flow);
                } else {
                    next = Some(match next {
                        None => self.next_start[i],
                        Some(t) => t.min(self.next_start[i]),
                    });
                }
            }
        }
        next
    }
}

/// Outcome of running one job in the world.
#[derive(Debug, Clone)]
pub struct WorldRunOutcome {
    /// The node the driver ran on.
    pub driver_node: String,
    /// Node names that hosted the executors (one entry per executor).
    pub executor_nodes: Vec<String>,
    /// The execution result (completion time, per-stage breakdown).
    pub result: JobRunResult,
    /// The telemetry snapshot taken immediately before submission.
    pub pre_run_snapshot: ClusterSnapshot,
}

/// The simulated world.
#[derive(Debug, Clone)]
pub struct SimWorld {
    /// The mini-Kubernetes cluster.
    pub cluster: ClusterState,
    /// The flow-level network.
    pub network: Network,
    /// The Prometheus-like metrics server.
    pub metrics: ScrapeManager,
    background: BackgroundDriver,
    executor_scheduler: DefaultScheduler,
    fetcher: TelemetryFetcher,
    exec_config: ExecutionConfig,
    rng: Rng,
    now: SimTime,
}

impl SimWorld {
    /// Create a world from any testbed (the FABRIC slice or a generated
    /// scenario substrate) and a master seed.
    pub fn new(testbed: impl Into<Testbed>, seed: u64) -> Self {
        let testbed = testbed.into();
        let mut rng = Rng::seed_from_u64(seed);
        let background_rng = rng.split();
        // The executor scheduler keeps a seed of its own, *independent of the
        // world seed*: the default scheduler's tie-breaking behaviour is a
        // property of the control plane, not of the scenario, so executor
        // placement follows the same pattern across scenarios (as it does on a
        // long-lived real cluster) while the driver candidate under evaluation
        // still perturbs it through its own resource reservation.
        let scheduler_seed = 0x4558_4543; // "EXEC"
        let _ = rng.next_u64();
        SimWorld {
            cluster: testbed.cluster,
            network: testbed.network,
            metrics: ScrapeManager::new(ScrapeConfig {
                interval: SimDuration::from_secs(5),
                rate_window: SimDuration::from_secs(30),
                retention: Some(SimDuration::from_secs(7200)),
            }),
            background: BackgroundDriver::new(background_rng),
            executor_scheduler: DefaultScheduler::new(scheduler_seed),
            fetcher: TelemetryFetcher::new(SimDuration::from_secs(30)),
            exec_config: ExecutionConfig {
                control_rtts_per_wave: 8.0,
                ..Default::default()
            },
            rng,
            now: SimTime::ZERO,
        }
    }

    /// Override the execution-model constants (used by ablations).
    pub fn with_exec_config(mut self, config: ExecutionConfig) -> Self {
        self.exec_config = config;
        self
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Borrow the world's RNG (for experiment-level random choices that must
    /// share the world's deterministic stream).
    pub fn rng_mut(&mut self) -> &mut Rng {
        &mut self.rng
    }

    /// Advance the world to `target`, keeping background traffic flowing and
    /// scraping telemetry on the configured interval.
    pub fn advance_to(&mut self, target: SimTime) {
        // A scrape that is already due fires before time moves.
        self.metrics
            .scrape_if_due(&self.cluster, &self.network, self.now);
        while self.now < target {
            let next_scrape = self.metrics.next_scrape_due();
            let next_bg = self.background.poll(&mut self.network, self.now);
            let mut step = target;
            if next_scrape > self.now {
                step = step.min(next_scrape);
            }
            if let Some(t) = next_bg {
                if t > self.now {
                    step = step.min(t);
                }
            }
            // Stop at background-flow completions so sequential curl loops
            // restart promptly rather than waiting for the next scrape tick.
            if let Some(t) = self.network.next_completion() {
                if t > self.now {
                    step = step.min(t);
                }
            }
            // Never stall.
            if step <= self.now {
                step = target;
            }
            self.network.advance_to(step);
            self.now = step;
            self.metrics
                .scrape_if_due(&self.cluster, &self.network, self.now);
        }
    }

    /// Advance by a duration.
    pub fn advance_by(&mut self, duration: SimDuration) {
        self.advance_to(self.now + duration);
    }

    /// Place `count` background-load pods on random nodes (Section 5.2's
    /// contention process). Replaces any previous placement.
    pub fn place_background_load(&mut self, count: usize, config: &BackgroundLoadConfig) {
        self.clear_background_load();
        let node_ids: Vec<SimNodeId> = self.cluster.nodes().iter().map(|n| n.net_id).collect();
        let generators =
            place_random_background_load(&node_ids, &node_ids, count, config, &mut self.rng);
        for generator in &generators {
            if let Some(node) = self
                .cluster
                .nodes_mut()
                .iter_mut()
                .find(|n| n.net_id == generator.host)
            {
                node.background_cpu_load += generator.cpu_load();
                node.background_memory_used += generator.memory_bytes();
            }
        }
        self.background.set_generators(generators, self.now);
    }

    /// Remove all background load (pods and their CPU/memory contribution).
    pub fn clear_background_load(&mut self) {
        for node in self.cluster.nodes_mut() {
            node.background_cpu_load = 0.0;
            node.background_memory_used = 0.0;
        }
        self.background.clear();
    }

    /// Hosts currently running a background pod.
    pub fn background_hosts(&self) -> Vec<String> {
        self.background
            .generators
            .iter()
            .filter_map(|g| {
                self.cluster
                    .nodes()
                    .iter()
                    .find(|n| n.net_id == g.host)
                    .map(|n| n.name.clone())
            })
            .collect()
    }

    /// Whether any background pod is active.
    pub fn has_background_load(&self) -> bool {
        !self.background.is_empty()
    }

    /// Take a fresh scrape right now and return the scheduler-facing snapshot.
    pub fn snapshot(&mut self) -> ClusterSnapshot {
        self.metrics.scrape(&self.cluster, &self.network, self.now);
        self.fetcher.fetch(&self.metrics, self.now)
    }

    /// Run `request` with its driver pinned to `driver_node`. Executors are
    /// placed by the default scheduler (as in the paper). Returns the
    /// completion result and the pre-run snapshot used for features.
    ///
    /// Returns `None` when the driver or an executor cannot be bound (no
    /// feasible capacity), which the workflow treats as an infeasible sample.
    pub fn run_job(&mut self, request: &JobRequest, driver_node: &str) -> Option<WorldRunOutcome> {
        let pre_run_snapshot = self.snapshot();
        let spec = request.to_job_spec();

        // Bind the driver pod to the chosen node.
        let driver_pod_spec = spec.driver_pod(Some(driver_node));
        let driver_pod = self.cluster.create_pod(driver_pod_spec, self.now);
        if self
            .cluster
            .bind_pod(driver_pod, driver_node, self.now)
            .is_err()
        {
            let _ = self.cluster.delete_pod(driver_pod, self.now);
            return None;
        }

        // Executors go wherever the default scheduler puts them.
        let mut executor_pods: Vec<(PodId, String)> = Vec::new();
        for exec_spec in spec.executor_pods() {
            let outcome = self
                .executor_scheduler
                .schedule(&exec_spec, self.cluster.nodes());
            let Some(node_name) = outcome.node().map(str::to_string) else {
                // Roll back everything we bound so far.
                self.rollback(driver_pod, &executor_pods);
                return None;
            };
            let pod = self.cluster.create_pod(exec_spec, self.now);
            if self.cluster.bind_pod(pod, &node_name, self.now).is_err() {
                let _ = self.cluster.delete_pod(pod, self.now);
                self.rollback(driver_pod, &executor_pods);
                return None;
            }
            executor_pods.push((pod, node_name));
        }

        // Competing CPU load per network node id, after binding all pods.
        let mut loads = vec![0.0; self.network.topology().node_count()];
        for node in self.cluster.nodes() {
            loads[node.net_id.0] = node.cpu_load();
        }

        let driver_net = self
            .cluster
            .node(driver_node)
            .expect("bound driver node exists")
            .net_id;
        let executor_nets: Vec<SimNodeId> = executor_pods
            .iter()
            .map(|(_, name)| self.cluster.node(name).expect("bound executor node").net_id)
            .collect();
        let placement = Placement::new(driver_net, executor_nets);
        let dag = request.workload.build_dag();

        let result = execute_job(
            &dag,
            &request.workload,
            &placement,
            &mut self.network,
            &|node: SimNodeId| loads[node.0],
            &mut self.background,
            self.now,
            &self.exec_config,
        );
        self.now = result.finished_at;

        // Tear the application down and record telemetry after completion.
        let _ = self.cluster.complete_pod(driver_pod, true, self.now);
        for (pod, _) in &executor_pods {
            let _ = self.cluster.complete_pod(*pod, true, self.now);
        }
        self.metrics.scrape(&self.cluster, &self.network, self.now);

        Some(WorldRunOutcome {
            driver_node: driver_node.to_string(),
            executor_nodes: executor_pods.into_iter().map(|(_, n)| n).collect(),
            result,
            pre_run_snapshot,
        })
    }

    fn rollback(&mut self, driver_pod: PodId, executor_pods: &[(PodId, String)]) {
        let _ = self.cluster.delete_pod(driver_pod, self.now);
        for (pod, _) in executor_pods {
            let _ = self.cluster.delete_pod(*pod, self.now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::FabricTestbed;
    use sparksim::WorkloadKind;

    fn world(seed: u64) -> SimWorld {
        SimWorld::new(FabricTestbed::paper(), seed)
    }

    fn request(records: u64) -> JobRequest {
        JobRequest::named("sort-w", WorkloadKind::Sort, records, 2)
    }

    #[test]
    fn advance_scrapes_on_interval() {
        let mut w = world(1);
        w.advance_to(SimTime::from_secs(30));
        assert_eq!(w.now(), SimTime::from_secs(30));
        // 5 s interval -> scrape at 0,5,...,30.
        assert!(w.metrics.scrape_count() >= 6);
        assert!(!w.has_background_load());
    }

    #[test]
    fn background_load_creates_traffic_and_cpu_pressure() {
        let mut w = world(2);
        w.place_background_load(2, &BackgroundLoadConfig::default());
        assert!(w.has_background_load());
        assert_eq!(w.background_hosts().len(), 2);
        let loaded: Vec<f64> = w
            .cluster
            .nodes()
            .iter()
            .map(|n| n.background_cpu_load)
            .collect();
        assert_eq!(loaded.iter().filter(|&&l| l > 0.0).count(), 2);
        w.advance_by(SimDuration::from_secs(20));
        // The downloads moved bytes somewhere.
        let total_rx: f64 = (0..6)
            .map(|i| w.network.counters(SimNodeId(i)).rx_bytes)
            .sum();
        assert!(total_rx > 10_000_000.0, "rx {total_rx}");
        // Snapshot reflects nonzero rates for at least one node.
        let snap = w.snapshot();
        assert!(snap.iter_nodes().any(|(_, t)| t.rx_rate > 0.0));
        w.clear_background_load();
        assert!(!w.has_background_load());
        assert!(w
            .cluster
            .nodes()
            .iter()
            .all(|n| n.background_cpu_load == 0.0));
    }

    #[test]
    fn run_job_returns_outcome_and_cleans_up() {
        let mut w = world(3);
        w.advance_by(SimDuration::from_secs(5));
        let outcome = w.run_job(&request(100_000), "node-1").expect("feasible");
        assert_eq!(outcome.driver_node, "node-1");
        assert_eq!(outcome.executor_nodes.len(), 2);
        assert!(outcome.result.completion_seconds() > 0.0);
        assert!(!outcome.pre_run_snapshot.is_empty());
        // All pods released.
        for node in w.cluster.nodes() {
            assert_eq!(node.pod_count(), 0, "{}", node.name);
        }
        assert!(w.now() > SimTime::from_secs(5));
    }

    #[test]
    fn infeasible_driver_returns_none_and_rolls_back() {
        let mut w = world(4);
        let huge = JobRequest::named("huge", WorkloadKind::Sort, 1000, 1)
            .with_driver_resources(64_000, 64 * 1024 * 1024 * 1024);
        assert!(w.run_job(&huge, "node-1").is_none());
        for node in w.cluster.nodes() {
            assert_eq!(node.pod_count(), 0);
        }
    }

    #[test]
    fn cloned_worlds_replay_identically() {
        let mut base = world(5);
        base.place_background_load(2, &BackgroundLoadConfig::default());
        base.advance_by(SimDuration::from_secs(10));
        let mut a = base.clone();
        let mut b = base.clone();
        let ra = a.run_job(&request(150_000), "node-2").unwrap();
        let rb = b.run_job(&request(150_000), "node-2").unwrap();
        assert_eq!(
            ra.result.completion_seconds(),
            rb.result.completion_seconds()
        );
        assert_eq!(ra.executor_nodes, rb.executor_nodes);
    }

    #[test]
    fn driver_placement_changes_completion_time() {
        let mut base = world(6);
        base.place_background_load(2, &BackgroundLoadConfig::default());
        base.advance_by(SimDuration::from_secs(10));
        let completions: Vec<f64> = ["node-1", "node-3", "node-5"]
            .iter()
            .map(|node| {
                let mut w = base.clone();
                w.run_job(&request(200_000), node)
                    .unwrap()
                    .result
                    .completion_seconds()
            })
            .collect();
        let min = completions.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = completions.iter().cloned().fold(0.0, f64::max);
        assert!(
            max > min * 1.02,
            "placement should matter: completions {completions:?}"
        );
    }

    #[test]
    fn background_traffic_continues_during_job_execution() {
        let mut w = world(7);
        w.place_background_load(3, &BackgroundLoadConfig::default());
        w.advance_by(SimDuration::from_secs(5));
        let before: f64 = (0..6)
            .map(|i| w.network.counters(SimNodeId(i)).rx_bytes)
            .sum();
        let outcome = w.run_job(&request(300_000), "node-4").unwrap();
        let after: f64 = (0..6)
            .map(|i| w.network.counters(SimNodeId(i)).rx_bytes)
            .sum();
        // Background downloads plus shuffle moved far more than the shuffle alone.
        assert!(after - before > outcome.result.shuffle_bytes);
    }
}
