//! Scale worlds: 1k–10k-node clusters for the two-stage decision path.
//!
//! The scenario matrix exercises the full simulation pipeline on worlds of at
//! most a few dozen nodes — a full-mesh RTT scrape and per-job network
//! simulation are quadratic and cannot reach 10k nodes. Scale worlds take the
//! opposite trade: a [`simnet::TieredClosSpec`] substrate (racks → pods →
//! spine) provides real network structure, but telemetry is synthesized
//! directly — per-node load drawn around the cluster's actual allocations and
//! a *sampled* RTT mesh (a few probes per node: rack neighbor, same-pod,
//! cross-pod) exactly like a production ping exporter that cannot afford n²
//! probes either.
//!
//! What is measured at this scale is the **accuracy cost of candidate
//! pruning**: for each decision the supervised model ranks the full feasible
//! set (the reference), then [`run_scale_cell`] replays the decision at every
//! (pruning policy × budget K) cell and records (a) how often the two-stage
//! top-1 equals the unpruned top-1 and (b) how often the unpruned winner
//! survives stage one at all. Under [`PruningPolicy::ModelAligned`] both are
//! exact by construction — pinned here as a measurement so a regression in
//! the scoreboard path shows up as a number, not just a failing test — while
//! the model-blind policies pay a measurable accuracy cost. Everything
//! derives from `(spec, seed)`, so reports are byte-stable — decision
//! *latency* at these node counts is measured by the `decision_scale` bench,
//! not here.

use cluster::{ClusterState, Node, PodSpec, Resources};
use netsched_core::context::{PruningPolicy, SchedulingContext};
use netsched_core::predictor::CompletionTimePredictor;
use netsched_core::request::JobRequest;
use serde::{Deserialize, Serialize};
use simcore::rng::Rng;
use simcore::SimTime;
use simnet::{TieredClosSpec, TopologySpec};
use sparksim::WorkloadKind;
use telemetry::{ClusterSnapshot, NodeTelemetry};

/// Declarative description of one scale world.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleWorldSpec {
    /// Total node count (rounded up to whole 40-node racks).
    pub nodes: usize,
    /// Seed for background load, telemetry noise and probe sampling.
    pub seed: u64,
    /// RTT probes per node (the sampled mesh's out-degree).
    pub rtt_probes_per_node: usize,
    /// Fraction of nodes carrying a background pod (drives feasibility and
    /// load variation; a slice of these are filled completely).
    pub busy_fraction: f64,
}

impl ScaleWorldSpec {
    /// The standard world at `nodes` total nodes.
    pub fn with_nodes(nodes: usize, seed: u64) -> Self {
        ScaleWorldSpec {
            nodes,
            seed,
            rtt_probes_per_node: 6,
            busy_fraction: 0.6,
        }
    }

    /// World name used in reports, e.g. `scale-clos-10000`.
    pub fn name(&self) -> String {
        format!("scale-clos-{}", self.nodes)
    }
}

/// A built scale world: cluster state plus a synthesized telemetry snapshot.
#[derive(Debug)]
pub struct ScaleWorld {
    /// The spec this world was built from.
    pub spec: ScaleWorldSpec,
    /// Cluster with background pods bound (real allocations, real
    /// feasibility variation).
    pub cluster: ClusterState,
    /// Synthesized snapshot: per-node telemetry consistent with the
    /// cluster's allocations, sampled RTT mesh over the Clos substrate.
    pub snapshot: ClusterSnapshot,
}

impl ScaleWorld {
    /// Build the world. Deterministic in the spec.
    pub fn build(spec: ScaleWorldSpec) -> Self {
        let clos = TieredClosSpec::with_total_nodes(spec.nodes);
        let nodes_per_rack = clos.nodes_per_rack;
        let racks_per_pod = clos.racks_per_pod;
        let topo = TopologySpec::TieredClos(clos)
            .build(spec.seed)
            .expect("tiered clos topologies are connected by construction");
        let n = topo.node_count();
        let mut rng = Rng::seed_from_u64(spec.seed ^ 0x5CA1E0_u64);

        let mut cluster = ClusterState::new();
        for net in topo.nodes() {
            let site = topo.site(net.site).name.clone();
            cluster.add_node(Node::new(
                net.name.clone(),
                net.id,
                Resources::from_cores_and_gib(6, 8),
                site,
            ));
        }

        // Background pods: most busy nodes keep headroom, a slice are filled
        // to the brim so the feasible set is a strict subset of the table.
        for i in 0..n {
            if !rng.gen_bool(spec.busy_fraction) {
                continue;
            }
            let full = rng.gen_bool(0.08);
            let (cpu, gib) = if full {
                (6, 8)
            } else {
                (1 + rng.gen_range(4), 1 + rng.gen_range(5))
            };
            let pod = cluster.create_pod(
                PodSpec::new(format!("bg-{i}"), Resources::from_cores_and_gib(cpu, gib)),
                SimTime::ZERO,
            );
            cluster
                .bind_pod(pod, &format!("node-{}", i + 1), SimTime::ZERO)
                .expect("background pod fits an empty node");
        }

        // Telemetry consistent with the allocations plus measurement noise.
        let mut snapshot = ClusterSnapshot::at(SimTime::from_secs(60));
        for node in cluster.nodes() {
            snapshot.insert_node(
                node.name.as_str(),
                NodeTelemetry {
                    cpu_load: node.cpu_load() + rng.uniform(0.0, 0.5),
                    memory_available_bytes: node.memory_available(),
                    tx_rate: rng.uniform(0.0, 2.0e7),
                    rx_rate: rng.uniform(0.0, 2.0e7),
                },
            );
        }
        // Sampled RTT mesh: every node probes its rack neighbor, one same-pod
        // rack and a few cross-pod nodes — the structure a network-aware
        // prefilter needs, at out-degree `rtt_probes_per_node` instead of n.
        let nodes_per_pod = nodes_per_rack * racks_per_pod;
        for i in 0..n {
            let mut peers = Vec::with_capacity(spec.rtt_probes_per_node);
            peers.push((i / nodes_per_rack) * nodes_per_rack + (i + 1) % nodes_per_rack);
            if n > nodes_per_pod {
                let pod_base = (i / nodes_per_pod) * nodes_per_pod;
                peers.push(pod_base + (i + nodes_per_rack) % nodes_per_pod.min(n - pod_base));
            }
            while peers.len() < spec.rtt_probes_per_node {
                peers.push(rng.gen_range(n as u64) as usize);
            }
            for peer in peers {
                if peer == i || peer >= n {
                    continue;
                }
                let base = topo
                    .base_rtt(simnet::NodeId(i), simnet::NodeId(peer))
                    .as_secs_f64();
                let congestion = 1.0 + rng.uniform(0.0, 0.35);
                snapshot.insert_rtt(
                    &format!("node-{}", i + 1),
                    &format!("node-{}", peer + 1),
                    base * congestion,
                );
            }
        }

        ScaleWorld {
            spec,
            cluster,
            snapshot,
        }
    }

    /// A deterministic batch of varied job requests against this world.
    pub fn requests(&self, jobs: usize) -> Vec<JobRequest> {
        let mut rng = Rng::seed_from_u64(self.spec.seed ^ 0x10B5_u64);
        let kinds = [
            WorkloadKind::Sort,
            WorkloadKind::PageRank,
            WorkloadKind::Join,
            WorkloadKind::GroupBy,
            WorkloadKind::WordCount,
        ];
        (0..jobs)
            .map(|i| {
                let kind = kinds[i % kinds.len()];
                let records = 50_000 + rng.gen_range(400_000);
                let executors = 2 + rng.gen_range(4) as u32;
                JobRequest::named(format!("scale-job-{i}"), kind, records, executors)
                    .with_driver_resources(
                        500 + 250 * rng.gen_range(5),
                        (1 + rng.gen_range(3)) * 1024 * 1024 * 1024,
                    )
            })
            .collect()
    }
}

/// Pruning accuracy at one (policy, budget `K`) cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PruneAccuracy {
    /// The stage-one pruning policy this cell ran with.
    pub policy: PruningPolicy,
    /// The candidate budget.
    pub k: usize,
    /// Decisions evaluated.
    pub decisions: usize,
    /// Decisions where the two-stage top-1 (stage-one prune under `policy`
    /// plus exact model re-rank of the K survivors) equals the unpruned
    /// top-1. Under [`PruningPolicy::ModelAligned`] this is exact by
    /// construction — the scoreboard is keyed by the job's cell in the
    /// model's split-threshold partition, and equal cells walk identical
    /// tree paths — but recorded as a measurement so a regression in the
    /// scoreboard path shows up as a number, not just a failing test.
    pub top1_hits: usize,
    /// Decisions where the unpruned winner survived stage one at all (it
    /// appears somewhere in the two-stage ranking): the ceiling on any
    /// re-rank's accuracy, and the curve that shows what a model-blind
    /// candidate budget costs at scale.
    pub winner_in_pruned: usize,
}

impl PruneAccuracy {
    /// Top-1 agreement rate between the two-stage decision and the unpruned
    /// rank.
    pub fn top1_hit_rate(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.top1_hits as f64 / self.decisions as f64
        }
    }

    /// How often the unpruned winner survives stage one.
    pub fn winner_survival_rate(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.winner_in_pruned as f64 / self.decisions as f64
        }
    }
}

/// Everything measured on one scale world.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleCellReport {
    /// World name (`scale-clos-<nodes>`).
    pub world: String,
    /// Total node count.
    pub nodes: usize,
    /// Mean feasible-set size across the evaluated decisions.
    pub mean_feasible: f64,
    /// Accuracy at each swept (policy, budget) cell, policy-major with
    /// ascending K inside each policy.
    pub ks: Vec<PruneAccuracy>,
}

/// The machine-readable scale sweep result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleSweepReport {
    /// One report per world, in ascending node count.
    pub cells: Vec<ScaleCellReport>,
}

impl ScaleSweepReport {
    /// Serialize to JSON (the `results/scenario_scale.json` artifact).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("scale report serialization cannot fail")
    }

    /// Restore a report saved with [`ScaleSweepReport::to_json`].
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }

    /// Render a markdown summary: one row per (world, policy, K).
    pub fn to_markdown(&self) -> String {
        let mut out = String::from(
            "| World | Nodes | Mean feasible | Policy | K | Two-stage top-1 vs unpruned | Winner survives stage one |\n|---|---|---|---|---|---|---|\n",
        );
        for cell in &self.cells {
            for acc in &cell.ks {
                out.push_str(&format!(
                    "| {} | {} | {:.0} | {:?} | {} | {:.3} | {:.3} |\n",
                    cell.world,
                    cell.nodes,
                    cell.mean_feasible,
                    acc.policy,
                    acc.k,
                    acc.top1_hit_rate(),
                    acc.winner_survival_rate(),
                ));
            }
        }
        out
    }
}

/// Measure pruning accuracy on one world: rank every request unpruned (the
/// reference decision), then at each (policy, budget) cell, and count
/// agreements. Both measurements come from the real two-stage path
/// ([`SchedulingContext::rank_feasible_batch`] with a budget and policy set):
/// `top1_hits` compares winners, `winner_in_pruned` checks the reference
/// winner's membership among the stage-one survivors the re-rank saw.
pub fn run_scale_cell(
    world: &ScaleWorld,
    predictor: &CompletionTimePredictor,
    policies: &[PruningPolicy],
    ks: &[usize],
    jobs: usize,
) -> ScaleCellReport {
    let requests = world.requests(jobs);
    let mut ctx = SchedulingContext::new(&world.snapshot, &world.cluster);
    let mut accs: Vec<PruneAccuracy> = policies
        .iter()
        .flat_map(|&policy| {
            ks.iter().map(move |&k| PruneAccuracy {
                policy,
                k,
                decisions: 0,
                top1_hits: 0,
                winner_in_pruned: 0,
            })
        })
        .collect();
    let mut feasible_total = 0usize;
    for request in &requests {
        ctx.set_top_k(None);
        feasible_total += ctx.feasible_candidates(request).len();
        let full = ctx.rank_feasible_batch(request, predictor);
        let Some(winner) = full.ranked.first().map(|r| r.node) else {
            continue;
        };
        for acc in accs.iter_mut() {
            ctx.set_top_k(Some(acc.k));
            ctx.set_pruning_policy(acc.policy);
            let pruned = ctx.rank_feasible_batch(request, predictor);
            acc.decisions += 1;
            if pruned.ranked.iter().any(|r| r.node == winner) {
                acc.winner_in_pruned += 1;
            }
            if pruned.ranked.first().map(|r| r.node) == Some(winner) {
                acc.top1_hits += 1;
            }
        }
    }
    ScaleCellReport {
        world: world.spec.name(),
        nodes: world.cluster.node_count(),
        mean_feasible: if requests.is_empty() {
            0.0
        } else {
            feasible_total as f64 / requests.len() as f64
        },
        ks: accs,
    }
}

/// Train the supervised predictor the scale sweep ranks with: a random
/// forest fitted on a quick FABRIC-slice dataset (the scale worlds share the
/// feature schema, so the model transfers; what is measured here is pruning
/// agreement against the *same* model, not absolute accuracy).
pub fn train_scale_predictor(seed: u64) -> CompletionTimePredictor {
    use crate::workflow::{ExperimentConfig, Workflow};
    let dataset = Workflow::new(ExperimentConfig::quick(3, 2, seed)).run();
    let data = dataset.full_logger().to_dataset();
    let mut rng = Rng::seed_from_u64(seed ^ 0x5CA1E);
    let config = mlcore::ModelConfig {
        forest: mlcore::RandomForestConfig {
            n_trees: 40,
            workers: 1,
            ..Default::default()
        },
        ..Default::default()
    };
    let model =
        mlcore::TrainedModel::train(mlcore::ModelKind::RandomForest, &config, &data, &mut rng);
    CompletionTimePredictor::new(dataset.schema.clone(), model)
        .expect("experiment datasets are built from their own schema")
}

/// Run the full scale sweep: one cell per node count, shared predictor.
pub fn run_scale_sweep(
    node_counts: &[usize],
    policies: &[PruningPolicy],
    ks: &[usize],
    jobs: usize,
    seed: u64,
) -> ScaleSweepReport {
    let predictor = train_scale_predictor(seed);
    let cells = node_counts
        .iter()
        .map(|&nodes| {
            let world = ScaleWorld::build(ScaleWorldSpec::with_nodes(nodes, seed ^ nodes as u64));
            run_scale_cell(&world, &predictor, policies, ks, jobs)
        })
        .collect();
    ScaleSweepReport { cells }
}

/// The standard scale-cell family: 1k, 4k and 10k nodes.
pub fn standard_node_counts() -> Vec<usize> {
    vec![1000, 4000, 10_000]
}

/// The standard budget sweep.
pub fn standard_ks() -> Vec<usize> {
    vec![8, 16, 32, 64, 128]
}

/// Every stage-one pruning policy, model-aligned default first.
pub fn standard_policies() -> Vec<PruningPolicy> {
    vec![
        PruningPolicy::ModelAligned,
        PruningPolicy::LinearBlend,
        PruningPolicy::LeastAllocated,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_world_builds_deterministically() {
        let a = ScaleWorld::build(ScaleWorldSpec::with_nodes(200, 9));
        let b = ScaleWorld::build(ScaleWorldSpec::with_nodes(200, 9));
        assert_eq!(a.cluster.node_count(), 200);
        assert_eq!(a.snapshot, b.snapshot);
        assert!(!a.snapshot.is_empty());
        // Busy fraction leaves a non-trivial mix of loaded and idle nodes.
        let loaded = a
            .cluster
            .nodes()
            .iter()
            .filter(|n| n.available().cpu_millis < 6000)
            .count();
        assert!(loaded > 40 && loaded < 200, "{loaded}");
        // The sampled mesh probes only a few peers per node.
        let rtts = a.snapshot.rtt().len();
        assert!((200..=200 * 6).contains(&rtts), "{rtts}");
    }

    #[test]
    fn requests_are_varied_and_deterministic() {
        let world = ScaleWorld::build(ScaleWorldSpec::with_nodes(80, 3));
        let a = world.requests(10);
        let b = world.requests(10);
        assert_eq!(a.len(), 10);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.driver_cpu_millis, y.driver_cpu_millis);
            assert_eq!(x.name, y.name);
        }
        let sizings: std::collections::BTreeSet<u64> =
            a.iter().map(|r| r.driver_cpu_millis).collect();
        assert!(sizings.len() > 1, "driver sizings must vary");
    }
}
