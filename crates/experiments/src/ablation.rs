//! Ablation studies over the design choices called out in DESIGN.md.
//!
//! 1. **Feature groups** — drop the Network / Node / Job feature groups from
//!    Table 1 and measure how Top-1/Top-2 accuracy degrades (this is the
//!    quantitative version of the paper's "network-awareness matters" claim).
//! 2. **Model capacity** — sweep the random-forest size.
//! 3. **Background-load intensity** — vary the number of contention pods,
//!    regenerate the dataset and re-evaluate, probing how much learnable
//!    signal the contention process creates.

use crate::evaluation::ranking_hits;
use crate::workflow::{ExperimentConfig, ExperimentDataset, Workflow};
use mlcore::{ModelConfig, ModelKind, RandomForestConfig, TrainedModel};
use netsched_core::features::{FeatureGroup, FeatureSchema};
use serde::{Deserialize, Serialize};
use simcore::rng::Rng;

/// Accuracy of one ablation variant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationRow {
    /// Variant label (e.g. `full`, `no-network`, `trees=10`).
    pub variant: String,
    /// Top-1 accuracy.
    pub top1: f64,
    /// Top-2 accuracy.
    pub top2: f64,
    /// Held-out scenarios evaluated.
    pub evaluated: usize,
}

/// Render ablation rows as a markdown table.
pub fn ablation_markdown(title: &str, rows: &[AblationRow]) -> String {
    let mut out =
        format!("### {title}\n\n| Variant | Top-1 | Top-2 | Scenarios |\n|---|---|---|---|\n");
    for row in rows {
        out.push_str(&format!(
            "| {} | {:.3} | {:.3} | {} |\n",
            row.variant, row.top1, row.top2, row.evaluated
        ));
    }
    out
}

/// Evaluate Top-1/Top-2 of one model trained with a specific schema over the
/// dataset's scenarios (scenario-level train/test split).
fn evaluate_with_schema(
    dataset: &ExperimentDataset,
    schema: &FeatureSchema,
    kind: ModelKind,
    model_config: &ModelConfig,
    test_fraction: f64,
    seed: u64,
) -> AblationRow {
    let mut rng = Rng::seed_from_u64(seed);
    let (train_idx, test_idx) = dataset.split_scenarios(test_fraction, &mut rng);

    // Build the training matrix under the restricted schema.
    let mut train = mlcore::Dataset::new(schema.names().to_vec());
    for &idx in &train_idx {
        let scenario = &dataset.scenarios[idx];
        let request = scenario.request();
        for outcome in &scenario.outcomes {
            let features = schema.construct(&scenario.snapshot, &outcome.node, &request);
            train
                .push(features, outcome.completion_seconds)
                .expect("schema width");
        }
    }
    let model = TrainedModel::train(kind, model_config, &train, &mut rng);

    let mut top1 = 0usize;
    let mut top2 = 0usize;
    let mut evaluated = 0usize;
    for &idx in &test_idx {
        let scenario = &dataset.scenarios[idx];
        if scenario.outcomes.is_empty() {
            continue;
        }
        let request = scenario.request();
        let predictions: Vec<f64> = scenario
            .outcomes
            .iter()
            .map(|o| {
                let features = schema.construct(&scenario.snapshot, &o.node, &request);
                mlcore::Regressor::predict_row(&model, &features).max(0.0)
            })
            .collect();
        let actuals = scenario.completions();
        let (hit1, hit2) = ranking_hits(&predictions, &actuals);
        evaluated += 1;
        top1 += usize::from(hit1);
        top2 += usize::from(hit2);
    }
    let denom = evaluated.max(1) as f64;
    AblationRow {
        variant: String::new(),
        top1: top1 as f64 / denom,
        top2: top2 as f64 / denom,
        evaluated,
    }
}

/// Ablation 1: drop feature groups and re-evaluate a random forest.
pub fn feature_group_ablation(
    dataset: &ExperimentDataset,
    model_config: &ModelConfig,
    test_fraction: f64,
    seed: u64,
) -> Vec<AblationRow> {
    let variants: Vec<(&str, Vec<FeatureGroup>)> = vec![
        (
            "full (network + node + job)",
            vec![FeatureGroup::Network, FeatureGroup::Node, FeatureGroup::Job],
        ),
        (
            "no network telemetry",
            vec![FeatureGroup::Node, FeatureGroup::Job],
        ),
        (
            "no node telemetry",
            vec![FeatureGroup::Network, FeatureGroup::Job],
        ),
        (
            "no job configuration",
            vec![FeatureGroup::Network, FeatureGroup::Node],
        ),
        ("network telemetry only", vec![FeatureGroup::Network]),
        ("job configuration only", vec![FeatureGroup::Job]),
    ];
    variants
        .into_iter()
        .map(|(label, groups)| {
            let schema = FeatureSchema::with_groups(&groups);
            let mut row = evaluate_with_schema(
                dataset,
                &schema,
                ModelKind::RandomForest,
                model_config,
                test_fraction,
                seed,
            );
            row.variant = label.to_string();
            row
        })
        .collect()
}

/// Ablation 2: sweep the random-forest size.
pub fn forest_size_ablation(
    dataset: &ExperimentDataset,
    sizes: &[usize],
    test_fraction: f64,
    seed: u64,
) -> Vec<AblationRow> {
    let schema = dataset.schema.clone();
    sizes
        .iter()
        .map(|&n_trees| {
            let config = ModelConfig {
                forest: RandomForestConfig {
                    n_trees,
                    workers: simcore::parallel::default_workers(),
                    ..Default::default()
                },
                ..Default::default()
            };
            let mut row = evaluate_with_schema(
                dataset,
                &schema,
                ModelKind::RandomForest,
                &config,
                test_fraction,
                seed,
            );
            row.variant = format!("trees={n_trees}");
            row
        })
        .collect()
}

/// Ablation 3: regenerate the dataset with different numbers of background
/// pods and measure the random forest's Top-1/Top-2 on each.
pub fn background_intensity_ablation(
    base: &ExperimentConfig,
    pod_counts: &[usize],
    model_config: &ModelConfig,
    test_fraction: f64,
    seed: u64,
) -> Vec<AblationRow> {
    pod_counts
        .iter()
        .map(|&pods| {
            let config = ExperimentConfig {
                background_pods: (pods, pods),
                seed: base.seed.wrapping_add(pods as u64),
                ..base.clone()
            };
            let dataset = Workflow::new(config).run();
            let mut row = evaluate_with_schema(
                &dataset,
                &dataset.schema.clone(),
                ModelKind::RandomForest,
                model_config,
                test_fraction,
                seed,
            );
            row.variant = format!("background pods = {pods}");
            row
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcore::GradientBoostingConfig;

    fn fast_model_config() -> ModelConfig {
        ModelConfig {
            forest: RandomForestConfig {
                n_trees: 25,
                workers: 2,
                ..Default::default()
            },
            gbdt: GradientBoostingConfig {
                n_rounds: 50,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    fn dataset() -> ExperimentDataset {
        Workflow::new(ExperimentConfig {
            workers: simcore::parallel::default_workers(),
            ..ExperimentConfig::quick(2, 3, 19)
        })
        .run()
    }

    #[test]
    fn feature_group_ablation_produces_all_variants() {
        let data = dataset();
        let rows = feature_group_ablation(&data, &fast_model_config(), 0.3, 3);
        assert_eq!(rows.len(), 6);
        for row in &rows {
            assert!(!row.variant.is_empty());
            assert!(row.top1 >= 0.0 && row.top1 <= 1.0);
            assert!(row.top2 + 1e-9 >= row.top1);
            assert!(row.evaluated > 0);
        }
        // The full feature set should not be worse than job-configuration-only
        // features (which carry no placement signal at all).
        let full = rows.iter().find(|r| r.variant.starts_with("full")).unwrap();
        let job_only = rows
            .iter()
            .find(|r| r.variant.contains("job configuration only"))
            .unwrap();
        assert!(
            full.top2 + 1e-9 >= job_only.top2,
            "full {full:?} vs job-only {job_only:?}"
        );
        let md = ablation_markdown("Feature groups", &rows);
        assert!(md.contains("Feature groups") && md.contains("no network telemetry"));
    }

    #[test]
    fn forest_size_ablation_runs_each_size() {
        let data = dataset();
        let rows = forest_size_ablation(&data, &[5, 40], 0.3, 5);
        assert_eq!(rows.len(), 2);
        assert!(rows[0].variant.contains("trees=5"));
        assert!(rows[1].variant.contains("trees=40"));
    }

    #[test]
    fn background_intensity_ablation_regenerates_datasets() {
        let base = ExperimentConfig {
            workers: simcore::parallel::default_workers(),
            ..ExperimentConfig::quick(1, 2, 23)
        };
        let rows = background_intensity_ablation(&base, &[0, 2], &fast_model_config(), 0.34, 7);
        assert_eq!(rows.len(), 2);
        assert!(rows[0].variant.contains("0"));
        assert!(rows[1].variant.contains("2"));
        assert!(rows.iter().all(|r| r.evaluated > 0));
    }
}
