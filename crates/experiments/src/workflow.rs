//! The batch experiment workflow (Section 5.2).
//!
//! For every job configuration and repeat, the workflow:
//!
//! 1. builds a fresh simulated world and places background-load pods on
//!    randomly selected nodes,
//! 2. lets the system settle for a randomized warm-up so telemetry reflects
//!    the contention,
//! 3. snapshots telemetry (the features the scheduler would see), and
//! 4. replays the *same* job once per candidate driver node from the *same*
//!    frozen state, recording the completion time of every candidate.
//!
//! Each (configuration, repeat, candidate node) triple yields one training
//! sample — the full paper matrix is 60 × 10 × 6 = 3600 samples — and every
//! (configuration, repeat) pair yields one evaluation *scenario* whose ground
//! truth is the actually fastest node.

use crate::config::{job_matrix, JobConfig};
use crate::scenarios::TestbedSpec;
use crate::world::SimWorld;
use netsched_core::features::FeatureSchema;
use netsched_core::logger::ExecutionLogger;
use netsched_core::request::JobRequest;
use serde::{Deserialize, Serialize};
use simcore::parallel::parallel_map;
use simcore::rng::Rng;
use simcore::SimDuration;
use simnet::BackgroundLoadConfig;
use telemetry::ClusterSnapshot;

/// Completion time of one candidate driver node within a scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeOutcome {
    /// Candidate node name.
    pub node: String,
    /// Measured completion time in seconds.
    pub completion_seconds: f64,
    /// Nodes that hosted the executors during this run.
    pub executor_nodes: Vec<String>,
    /// Number of stages that spilled.
    pub spill_count: u32,
}

/// One evaluation scenario: a frozen system state plus the completion time of
/// the job on every candidate driver node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioRecord {
    /// Dense scenario index.
    pub scenario_id: usize,
    /// The job configuration.
    pub config: JobConfig,
    /// Repeat index within the configuration.
    pub repeat: usize,
    /// Nodes hosting background-load pods during the scenario.
    pub background_hosts: Vec<String>,
    /// Telemetry snapshot taken immediately before submission.
    pub snapshot: ClusterSnapshot,
    /// Per-candidate outcomes (one entry per cluster node).
    pub outcomes: Vec<NodeOutcome>,
}

impl ScenarioRecord {
    /// The actually fastest node (ground truth for Top-1/Top-2 accuracy).
    pub fn fastest_node(&self) -> &str {
        self.outcomes
            .iter()
            .min_by(|a, b| {
                a.completion_seconds
                    .partial_cmp(&b.completion_seconds)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|o| o.node.as_str())
            .unwrap_or("")
    }

    /// Candidate node names in recorded order.
    pub fn candidate_nodes(&self) -> Vec<String> {
        self.outcomes.iter().map(|o| o.node.clone()).collect()
    }

    /// Completion times aligned with [`ScenarioRecord::candidate_nodes`].
    pub fn completions(&self) -> Vec<f64> {
        self.outcomes.iter().map(|o| o.completion_seconds).collect()
    }

    /// The submission request for this scenario.
    pub fn request(&self) -> JobRequest {
        self.config.to_request()
    }
}

/// The full experiment dataset: every scenario plus the schema used to
/// construct feature vectors from its snapshots.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentDataset {
    /// All scenarios, in generation order.
    pub scenarios: Vec<ScenarioRecord>,
    /// Feature schema used for model training/evaluation.
    pub schema: FeatureSchema,
    /// The substrate every scenario ran on (used to rebuild the candidate
    /// cluster at evaluation time).
    pub testbed: TestbedSpec,
}

impl ExperimentDataset {
    /// Total number of training samples (scenarios × candidate nodes).
    pub fn sample_count(&self) -> usize {
        self.scenarios.iter().map(|s| s.outcomes.len()).sum()
    }

    /// Number of scenarios.
    pub fn scenario_count(&self) -> usize {
        self.scenarios.len()
    }

    /// Build an execution log (feature vector + label per sample) over the
    /// given scenario indices, using this dataset's schema.
    pub fn logger_for(&self, scenario_indices: &[usize]) -> ExecutionLogger {
        let mut logger = ExecutionLogger::new(self.schema.clone());
        for &idx in scenario_indices {
            let scenario = &self.scenarios[idx];
            let request = scenario.request();
            for outcome in &scenario.outcomes {
                logger.log_execution(
                    &scenario.snapshot,
                    &request,
                    &outcome.node,
                    outcome.completion_seconds,
                );
            }
        }
        logger
    }

    /// Build the execution log over every scenario.
    pub fn full_logger(&self) -> ExecutionLogger {
        self.logger_for(&(0..self.scenarios.len()).collect::<Vec<usize>>())
    }

    /// Split scenario indices into (train, test) with `test_fraction` of
    /// scenarios held out, shuffled by `rng`.
    pub fn split_scenarios(&self, test_fraction: f64, rng: &mut Rng) -> (Vec<usize>, Vec<usize>) {
        let split = mlcore::SplitIndices::train_test(self.scenarios.len(), test_fraction, rng);
        (split.train, split.test)
    }

    /// Serialize the whole dataset to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("dataset serialization cannot fail")
    }

    /// Restore a dataset saved with [`ExperimentDataset::to_json`].
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

/// Workflow parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Master seed; every scenario derives its own stream from it.
    pub seed: u64,
    /// Job configurations to run (default: the full 60-entry matrix).
    pub configs: Vec<JobConfig>,
    /// Repeats per configuration (paper: 10).
    pub repeats_per_config: usize,
    /// Minimum and maximum number of background pods per scenario.
    pub background_pods: (usize, usize),
    /// Background pod behaviour (10 MB curl loop by default).
    pub background: BackgroundLoadConfig,
    /// Warm-up range before the snapshot, seconds.
    pub warmup_seconds: (f64, f64),
    /// The substrate to run on (the FABRIC slice by default; any generated
    /// scenario substrate otherwise).
    pub testbed: TestbedSpec,
    /// Feature schema for downstream training.
    pub schema: FeatureSchema,
    /// Worker threads for scenario-level parallelism.
    pub workers: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            seed: 2025,
            configs: job_matrix(),
            repeats_per_config: 10,
            background_pods: (1, 3),
            background: BackgroundLoadConfig::default(),
            warmup_seconds: (8.0, 20.0),
            testbed: TestbedSpec::fabric(),
            schema: FeatureSchema::standard(),
            workers: simcore::parallel::default_workers(),
        }
    }
}

impl ExperimentConfig {
    /// A scaled-down configuration for tests and quick demos:
    /// `per_workload` configs per workload and `repeats` repeats.
    pub fn quick(per_workload: usize, repeats: usize, seed: u64) -> Self {
        ExperimentConfig {
            seed,
            configs: crate::config::small_job_matrix(per_workload),
            repeats_per_config: repeats,
            ..Default::default()
        }
    }

    /// Total number of scenarios this configuration will generate.
    pub fn scenario_count(&self) -> usize {
        self.configs.len() * self.repeats_per_config
    }
}

/// Runs the batch workflow.
#[derive(Debug, Clone)]
pub struct Workflow {
    /// Workflow parameters.
    pub config: ExperimentConfig,
}

impl Workflow {
    /// Create a workflow.
    pub fn new(config: ExperimentConfig) -> Self {
        Workflow { config }
    }

    /// Run every scenario and assemble the dataset. Scenarios run in parallel
    /// (each on its own deterministic world), so the result is independent of
    /// the worker count.
    pub fn run(&self) -> ExperimentDataset {
        let scenario_specs: Vec<(usize, JobConfig, usize)> = self
            .config
            .configs
            .iter()
            .flat_map(|config| {
                (0..self.config.repeats_per_config)
                    .map(move |repeat| (config.id, config.clone(), repeat))
            })
            .enumerate()
            .map(|(scenario_id, (_cfg_id, config, repeat))| (scenario_id, config, repeat))
            .collect();

        let scenarios = parallel_map(scenario_specs.len(), self.config.workers, |i| {
            let (scenario_id, config, repeat) = &scenario_specs[i];
            self.run_scenario(*scenario_id, config, *repeat)
        });

        ExperimentDataset {
            scenarios,
            schema: self.config.schema.clone(),
            testbed: self.config.testbed.clone(),
        }
    }

    /// Run a single scenario: freeze a contended system state and measure the
    /// job's completion time for every candidate driver node.
    pub fn run_scenario(
        &self,
        scenario_id: usize,
        config: &JobConfig,
        repeat: usize,
    ) -> ScenarioRecord {
        // Independent deterministic stream per scenario.
        let scenario_seed = self
            .config
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(scenario_id as u64);
        let mut world = SimWorld::new(self.config.testbed.build(), scenario_seed);

        // Background contention: a random number of pods on random nodes.
        let (lo, hi) = self.config.background_pods;
        let pods = if hi > lo {
            lo + world.rng_mut().gen_range((hi - lo + 1) as u64) as usize
        } else {
            lo
        };
        if pods > 0 {
            world.place_background_load(pods, &self.config.background);
        }

        // Warm-up so telemetry (rates, RTT inflation) reflects the contention,
        // then advance to the job's arrival phase: a job from a bursty mix
        // observes the contention process at its actual arrival offset (early
        // burst members see barely-settled telemetry, later bursts a steady
        // state), which is what makes the bursty axis of the scenario matrix
        // measure something arrival-related.
        let (w_lo, w_hi) = self.config.warmup_seconds;
        let warmup = world
            .rng_mut()
            .uniform(w_lo.min(w_hi), w_hi.max(w_lo + 1e-9));
        let arrival = config.arrival_offset_seconds.max(0.0);
        world.advance_by(SimDuration::from_secs_f64(warmup.max(1.0) + arrival));

        let background_hosts = world.background_hosts();
        let request = config.to_request();
        let candidates = world.cluster.node_names();

        // Run the identical job once per candidate from the frozen state.
        let mut snapshot: Option<ClusterSnapshot> = None;
        let mut outcomes = Vec::with_capacity(candidates.len());
        for node in &candidates {
            let mut replay = world.clone();
            if let Some(outcome) = replay.run_job(&request, node) {
                if snapshot.is_none() {
                    snapshot = Some(outcome.pre_run_snapshot.clone());
                }
                outcomes.push(NodeOutcome {
                    node: node.clone(),
                    completion_seconds: outcome.result.completion_seconds(),
                    executor_nodes: outcome.executor_nodes,
                    spill_count: outcome.result.spill_count,
                });
            }
        }

        ScenarioRecord {
            scenario_id,
            config: config.clone(),
            repeat,
            background_hosts,
            snapshot: snapshot.unwrap_or_default(),
            outcomes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_dataset() -> ExperimentDataset {
        let config = ExperimentConfig {
            workers: 2,
            ..ExperimentConfig::quick(1, 2, 7)
        };
        Workflow::new(config).run()
    }

    #[test]
    fn quick_workflow_produces_expected_counts() {
        let dataset = quick_dataset();
        // 3 configs (1 per workload) x 2 repeats = 6 scenarios x 6 nodes = 36 samples.
        assert_eq!(dataset.scenario_count(), 6);
        assert_eq!(dataset.sample_count(), 36);
        for scenario in &dataset.scenarios {
            assert_eq!(scenario.outcomes.len(), 6);
            assert!(!scenario.snapshot.is_empty());
            assert!(!scenario.background_hosts.is_empty());
            assert!(scenario.outcomes.iter().all(|o| o.completion_seconds > 0.0));
            assert!(!scenario.fastest_node().is_empty());
            assert_eq!(scenario.candidate_nodes().len(), 6);
            assert_eq!(scenario.completions().len(), 6);
        }
    }

    #[test]
    fn scenarios_have_varying_fastest_nodes() {
        let dataset = quick_dataset();
        // Completion times differ across candidates within a scenario.
        for scenario in &dataset.scenarios {
            let completions = scenario.completions();
            let min = completions.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = completions.iter().cloned().fold(0.0, f64::max);
            assert!(
                max > min,
                "placement must matter in scenario {}",
                scenario.scenario_id
            );
        }
    }

    #[test]
    fn logger_conversion_yields_one_row_per_sample() {
        let dataset = quick_dataset();
        let logger = dataset.full_logger();
        assert_eq!(logger.len(), dataset.sample_count());
        let data = logger.to_dataset();
        assert_eq!(data.len(), dataset.sample_count());
        assert_eq!(data.n_features(), dataset.schema.len());
        // Labels are the recorded completion times.
        assert!(data.targets().iter().all(|&t| t > 0.0));
        // Partial logger selects a subset.
        let partial = dataset.logger_for(&[0, 1]);
        assert_eq!(partial.len(), 12);
    }

    #[test]
    fn split_scenarios_partitions_indices() {
        let dataset = quick_dataset();
        let mut rng = Rng::seed_from_u64(1);
        let (train, test) = dataset.split_scenarios(0.34, &mut rng);
        assert_eq!(train.len() + test.len(), dataset.scenario_count());
        assert_eq!(test.len(), 2);
    }

    #[test]
    fn workflow_is_deterministic_and_parallel_invariant() {
        let base = ExperimentConfig {
            workers: 1,
            ..ExperimentConfig::quick(1, 1, 99)
        };
        let sequential = Workflow::new(base.clone()).run();
        let parallel = Workflow::new(ExperimentConfig { workers: 4, ..base }).run();
        assert_eq!(sequential.scenarios.len(), parallel.scenarios.len());
        for (a, b) in sequential.scenarios.iter().zip(&parallel.scenarios) {
            assert_eq!(a.completions(), b.completions());
            assert_eq!(a.background_hosts, b.background_hosts);
        }
    }

    #[test]
    fn json_roundtrip() {
        let dataset = ExperimentDataset {
            scenarios: vec![],
            schema: FeatureSchema::standard(),
            testbed: TestbedSpec::fabric(),
        };
        let restored = ExperimentDataset::from_json(&dataset.to_json()).unwrap();
        assert_eq!(restored.scenario_count(), 0);
        assert!(ExperimentDataset::from_json("{bad").is_err());
    }

    #[test]
    fn experiment_config_quick_and_counts() {
        let config = ExperimentConfig::quick(2, 3, 1);
        assert_eq!(config.configs.len(), 6);
        assert_eq!(config.scenario_count(), 18);
        let full = ExperimentConfig::default();
        assert_eq!(full.scenario_count(), 600);
    }
}
