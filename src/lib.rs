//! # netsched — network-aware, supervised-learning job scheduling
//!
//! `netsched` is a full reproduction, in Rust, of *"Learning to Schedule: A
//! Supervised Learning Framework for Network-Aware Scheduling of
//! Data-Intensive Workloads"* (SC 2025): a user-space scheduler that predicts
//! the completion time of a submitted data-intensive job on every candidate
//! node from live telemetry, ranks the nodes, and pins the job's driver to the
//! predicted-fastest one — together with every substrate the evaluation needs
//! (a mini-Kubernetes control plane, a Spark-like workload model, a
//! Prometheus-like telemetry pipeline, a geo-distributed flow-level network
//! simulator and from-scratch ML models).
//!
//! This facade crate re-exports the workspace crates under stable module
//! names and hosts the runnable examples and workspace-level integration
//! tests.
//!
//! ## Crate map
//!
//! | Module | Crate | What it provides |
//! |---|---|---|
//! | [`core`] | `netsched-core` | the scheduler: telemetry fetcher, feature constructor, predictor, decision module, job builder, logger, baselines |
//! | [`simcore`] | `simcore` | discrete-event engine, deterministic RNG, statistics, parallel helpers |
//! | [`simnet`] | `simnet` | sites/links/flows, max-min fair sharing, RTT model, background load |
//! | [`cluster`] | `cluster` | pods, nodes, resources, the default kube-scheduler, manifests |
//! | [`sparksim`] | `sparksim` | stage DAGs, Sort/PageRank/Join workloads, the execution engine |
//! | [`telemetry`] | `telemetry` | metric store, node/ping-mesh exporters, scrape loop, epoch-published snapshots |
//! | [`mlcore`] | `mlcore` | linear regression, CART, random forest, gradient boosting, metrics |
//! | [`experiments`] | `experiments` | the FABRIC testbed, the 60-config workflow, every table/figure harness |
//!
//! ## Quickstart
//!
//! ```
//! use netsched::experiments::{FabricTestbed, SimWorld};
//! use netsched::core::request::JobRequest;
//! use netsched::sparksim::WorkloadKind;
//!
//! // A 6-node, 3-site cluster with the paper's RTTs.
//! let mut world = SimWorld::new(FabricTestbed::paper(), 42);
//! world.advance_by(netsched::simcore::SimDuration::from_secs(10));
//!
//! // Run one Sort job with its driver pinned to node-2.
//! let request = JobRequest::named("sort-demo", WorkloadKind::Sort, 100_000, 2);
//! let outcome = world.run_job(&request, "node-2").expect("feasible placement");
//! assert!(outcome.result.completion_seconds() > 0.0);
//! ```
//!
//! See `examples/` for end-to-end scenarios (training the scheduler, comparing
//! it against the default scheduler, reproducing the paper's tables).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cluster;
pub use experiments;
pub use mlcore;
pub use simcore;
pub use simnet;
pub use sparksim;
pub use telemetry;

/// Distinct alias for the *cluster* node-id space (`cluster::NodeId`).
///
/// The workspace has two node-id spaces: the orchestration layer's interned
/// `cluster::NodeId` and the network substrate's `simnet::NodeId`. Both crates
/// export the same short name, which historically forced downstream code into
/// fully-qualified paths; import these aliases instead.
pub use cluster::NodeId as ClusterNodeId;

/// Distinct alias for the *network-substrate* node-id space (`simnet::NodeId`).
pub use simnet::NodeId as SimNodeId;

/// The paper's core contribution (`netsched-core`): the supervised,
/// network-aware scheduler and its components.
pub use netsched_core as core;

/// Workspace version string.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_set() {
        assert!(!super::VERSION.is_empty());
    }
}
